//! Offline stand-in for the subset of the `criterion` benchmark harness
//! this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a miniature wall-clock harness with criterion's API shape:
//! [`Criterion`], [`criterion_group!`]/[`criterion_main!`],
//! `benchmark_group`, `bench_function`, `Bencher::iter` /
//! `Bencher::iter_batched`, [`Throughput`], [`BatchSize`], and
//! [`black_box`]. It warms up, then runs timed samples for the
//! configured measurement window and reports median/mean per-iteration
//! time (plus derived throughput) on stdout. No statistics beyond that,
//! no HTML reports, no saved baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier; re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for [`Bencher::iter_batched`]; advisory only here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The harness: configuration plus an optional name filter taken from
/// the command line (first non-flag argument, substring match).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the total measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), throughput: None }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, None, f);
        self
    }

    fn run_one<F>(&self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        // Quick mode for CI smoke runs: `STARDUST_BENCH_QUICK=1` clamps
        // every budget so a full bench suite finishes in seconds. The
        // numbers are not for comparison — they only prove the
        // benchmarks still compile and run.
        let quick = std::env::var_os("STARDUST_BENCH_QUICK").is_some_and(|v| v != "0");
        let (warm_up, measure, samples) = if quick {
            (
                self.warm_up_time.min(Duration::from_millis(20)),
                self.measurement_time.min(Duration::from_millis(100)),
                self.sample_size.min(5),
            )
        } else {
            (self.warm_up_time, self.measurement_time, self.sample_size)
        };
        let mut b = Bencher {
            mode: Mode::WarmUp,
            budget: warm_up,
            samples: Vec::new(),
            target_samples: samples,
        };
        f(&mut b);
        b.mode = Mode::Measure;
        b.budget = measure;
        b.samples.clear();
        f(&mut b);
        report(id, &mut b.samples, throughput);
    }
}

/// A named group sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with per-iteration work volume.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.c.run_one(&full, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

enum Mode {
    WarmUp,
    Measure,
}

/// Timing callback handed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    budget: Duration,
    samples: Vec<f64>,
    target_samples: usize,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Times `routine` over inputs produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        match self.mode {
            Mode::WarmUp => {
                // At least one pass even if the budget is tiny.
                loop {
                    let input = setup();
                    black_box(routine(input));
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
            Mode::Measure => {
                // One timed sample = one routine call; run until both the
                // sample target and the time budget are exhausted (or the
                // budget is exceeded fourfold — slow routines still finish).
                let hard_stop = Instant::now() + self.budget * 4;
                loop {
                    let input = setup();
                    let t0 = Instant::now();
                    black_box(routine(input));
                    let dt = t0.elapsed();
                    self.samples.push(dt.as_secs_f64());
                    let now = Instant::now();
                    let enough = self.samples.len() >= self.target_samples;
                    if (enough && now >= deadline) || now >= hard_stop {
                        break;
                    }
                }
            }
        }
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn human_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} /s")
    }
}

fn report(id: &str, samples: &mut [f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<40} no samples");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let extra = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  thrpt: {} elem", human_rate(n as f64 / median))
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  thrpt: {} bytes", human_rate(n as f64 / median))
        }
        _ => String::new(),
    };
    println!(
        "{id:<40} time: [median {} mean {}] ({} samples){extra}",
        human_time(median),
        human_time(mean),
        samples.len()
    );
}

/// Declares a group of benchmark functions, criterion-style. Both the
/// `name/config/targets` form and the positional form are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
