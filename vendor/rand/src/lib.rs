//! Offline stand-in for the subset of the `rand` 0.9/0.10 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it actually calls: `StdRng`
//! (deterministically seedable), `Rng::random`, `Rng::random_range`, and
//! the `SeedableRng::seed_from_u64` constructor. The generator is
//! xoshiro256++ seeded through splitmix64 — high-quality, fast, and
//! reproducible across runs and platforms, which is all the workload
//! generators and tests require. Sequences differ from upstream
//! `StdRng` (ChaCha12); nothing in this workspace depends on the exact
//! upstream streams, only on determinism per seed.

/// Low-level uniform `u64` source, mirror of `rand::RngCore`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from an [`RngCore`] (upstream's
/// `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits => uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::random_range`] (upstream's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough bounded sampling: widening multiply keeps the
/// modulo bias below 2^-64, far beneath anything observable here.
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling methods, mirror of `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample of `T` (`f64`/`f32` in `[0, 1)`, full range for
    /// integers, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from integer seeds, mirror of
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// A generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Mirror of `rand::prelude`: the traits plus [`rngs::StdRng`].
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_hit_bounds_only_in_range() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.random_range(3..=16usize);
            assert!((3..=16).contains(&v));
            let w = r.random_range(10..20u64);
            assert!((10..20).contains(&w));
            let f = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
        // Inclusive upper bound is actually reachable.
        let mut hit_hi = false;
        for _ in 0..2000 {
            hit_hi |= r.random_range(0..=3usize) == 3;
        }
        assert!(hit_hi);
    }

    #[test]
    fn negative_integer_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(-5..5i32);
            assert!((-5..5).contains(&v));
        }
    }
}
