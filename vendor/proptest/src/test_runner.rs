//! The deterministic random source behind the vendored harness.

use rand::prelude::*;

/// Per-test random source. The stream is a pure function of the test's
/// name, so failures reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator seeded from the test function's name (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}
