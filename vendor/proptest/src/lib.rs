//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a miniature property-testing harness with the same surface
//! as the upstream code it replaces: the [`proptest!`] macro,
//! range/tuple/`Just`/`prop_oneof!`/`prop_map` strategies,
//! `collection::vec`, `any::<bool>()`, [`ProptestConfig`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//! * no shrinking — a failing case reports its generated inputs (via
//!   the assertion message) but is not minimized;
//! * generation is derandomized: each test function derives its RNG
//!   seed from its own name, so runs are reproducible without a
//!   persistence file.

use std::fmt;

pub mod strategy;

pub mod test_runner;

/// Harness configuration; only the fields this workspace touches.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// A non-passing case: a genuine failure, or an input rejected by
/// `prop_assume!` (upstream's `TestCaseError::{Fail, Reject}`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reason: String,
    rejected: bool,
}

impl TestCaseError {
    /// Wraps a failure reason.
    pub fn fail<S: fmt::Display>(reason: S) -> Self {
        TestCaseError { reason: reason.to_string(), rejected: false }
    }

    /// Wraps an unmet `prop_assume!` condition; the runner skips the
    /// case instead of failing the test.
    pub fn reject<S: fmt::Display>(reason: S) -> Self {
        TestCaseError { reason: reason.to_string(), rejected: true }
    }

    /// Whether this case was rejected rather than failed.
    pub fn is_rejection(&self) -> bool {
        self.rejected
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for TestCaseError {}

/// `vec(element, size)` collection strategy, mirror of
/// `proptest::collection`.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// `any::<T>()` support, mirror of `proptest::arbitrary`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng().random()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng().random()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng().random()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng().random()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng().random()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary + std::fmt::Debug>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public
/// surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    if e.is_rejection() {
                        continue;
                    }
                    panic!("property '{}' falsified at case {}: {}", stringify!($name), __case, e);
                }
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Skips the current case when its generated inputs do not satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption not met: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// A weighted union of strategies with a common value type:
/// `prop_oneof![3 => a, 1 => b]` (weights optional).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
