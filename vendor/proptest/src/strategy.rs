//! Value-generation strategies: the `Strategy` trait and the concrete
//! combinators the workspace's property tests use.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Blanket impl so `&S` is usable where a strategy is expected.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// The [`Strategy::prop_map`] adaptor.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A weighted union of same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union over `arms`; weights must not all be zero.
    ///
    /// # Panics
    /// Panics on an empty or all-zero-weight arm list.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positively weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.rng().random_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum covered above")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}
impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Length specification for [`crate::collection::vec`]: a fixed size or
/// a half-open range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// The strategy behind [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.rng().random_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
