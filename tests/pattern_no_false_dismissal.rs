//! Property tests of the pattern-query pipeline: for random workloads and
//! random queries, neither search algorithm may ever dismiss a true match,
//! and verified answers equal the linear scan.

use proptest::prelude::*;
use stardust::baselines::GeneralMatch;
use stardust::core::config::{Config, UpdatePolicy};
use stardust::core::engine::Stardust;
use stardust::core::query::pattern::{self, PatternQuery};

const W: usize = 8;
const LEVELS: usize = 4;
const HISTORY: usize = 256;
const M: usize = 3;

fn engines(values: &[Vec<f64>]) -> (Stardust, Stardust, GeneralMatch) {
    let r_max = 120.0;
    let mut online_cfg = Config::batch(W, LEVELS, 4, r_max).with_history(HISTORY);
    online_cfg.update = UpdatePolicy::Online;
    online_cfg.box_capacity = 4;
    let mut online = Stardust::new(online_cfg, M);
    let batch_cfg = Config::batch(W, LEVELS, 4, r_max).with_history(HISTORY);
    let mut batch = Stardust::new(batch_cfg, M);
    let mut gm = GeneralMatch::new(W, 4, r_max, HISTORY, M);
    for i in 0..values[0].len() {
        for s in 0..M {
            online.append(s as u32, values[s][i]);
            batch.append(s as u32, values[s][i]);
            gm.append(s as u32, values[s][i]);
        }
    }
    (online, batch, gm)
}

/// Bounded random-walk streams (values stay within [0, 120]).
fn streams_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec((10.0f64..110.0, proptest::collection::vec(-0.9f64..0.9, 400)), M)
        .prop_map(|walks| {
            walks
                .into_iter()
                .map(|(start, steps)| {
                    let mut x = start;
                    steps
                        .into_iter()
                        .map(|d| {
                            x = (x + d).clamp(0.0, 120.0);
                            x
                        })
                        .collect()
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Online answers exactly match ground truth; batch and GeneralMatch
    /// cover it (no false dismissals) and report only true matches.
    #[test]
    fn all_techniques_cover_ground_truth(
        streams in streams_strategy(),
        k in 2usize..6,
        src in 0usize..M,
        radius in 0.005f64..0.05,
    ) {
        let (online, batch, gm) = engines(&streams);
        let len = k * W;
        let n = streams[0].len();
        let q = PatternQuery {
            sequence: streams[src][n - len..].to_vec(),
            radius,
        };
        let truth: std::collections::BTreeSet<(u32, u64)> =
            pattern::linear_scan_matches(&batch, &q)
                .iter()
                .map(|m| (m.stream, m.end_time))
                .collect();

        let on = pattern::query_online(&online, &q).expect("valid query");
        let on_set: std::collections::BTreeSet<(u32, u64)> =
            on.matches.iter().map(|m| (m.stream, m.end_time)).collect();
        prop_assert_eq!(&on_set, &truth, "online != linear scan");

        if len >= 2 * W - 1 {
            let ba = pattern::query_batch(&batch, &q).expect("valid query");
            let ba_set: std::collections::BTreeSet<(u32, u64)> =
                ba.matches.iter().map(|m| (m.stream, m.end_time)).collect();
            prop_assert_eq!(&ba_set, &truth, "batch != linear scan");

            let gm_ans = gm.query(&q);
            let gm_set: std::collections::BTreeSet<(u32, u64)> =
                gm_ans.matches.iter().map(|m| (m.stream, m.end_time)).collect();
            prop_assert_eq!(&gm_set, &truth, "generalmatch != linear scan");
        }
    }

    /// Reported distances are within the radius and consistent with raw
    /// recomputation.
    #[test]
    fn reported_distances_are_valid(
        streams in streams_strategy(),
        k in 2usize..5,
        radius in 0.01f64..0.06,
    ) {
        let (online, _, _) = engines(&streams);
        let len = k * W;
        let n = streams[0].len();
        let q = PatternQuery { sequence: streams[0][n - len..].to_vec(), radius };
        let ans = pattern::query_online(&online, &q).expect("valid query");
        for m in &ans.matches {
            prop_assert!(m.distance <= radius + 1e-9);
            let hist = online.summary(m.stream).history();
            let win = hist.window(m.end_time, len).expect("match within history");
            let raw: f64 = win
                .iter()
                .zip(&q.sequence)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            let normalized = raw / ((len as f64).sqrt() * online.config().r_max);
            prop_assert!((normalized - m.distance).abs() < 1e-9);
        }
    }
}
