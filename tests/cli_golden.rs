//! Golden-output integration tests for the operational CLI commands:
//! `serve-bench`, `chaos`, and `metrics` are run in-process on generated
//! workloads and their emitted documents are parsed back and checked
//! for schema stability and cross-field invariants.
//!
//! "Golden" here means schema and invariants, not byte-exact output —
//! every run carries machine-dependent timings. What must never drift
//! without a deliberate schema bump: the `stardust-bench/v1` document
//! shape, the metric names exported by the registry, and conservation
//! laws between counters (values in = values appended, candidates never
//! exceed checks, confirmed never exceeds candidates).

use stardust::cli::{run, Args};
use stardust_telemetry::json::{self, Value};

/// Parses CLI argv into (cmd, args), panicking on malformed flags.
fn argv(parts: &[&str]) -> (String, Args) {
    let owned: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    Args::parse(&owned).expect("argv parses")
}

fn counter(doc: &Value, name: &str) -> u64 {
    doc.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing counter {name}"))
}

#[test]
fn serve_bench_emits_schema_stable_report() {
    let dir = std::env::temp_dir().join(format!("stardust-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("BENCH_3.json");
    let path_str = path.to_str().expect("utf-8 temp path");

    let (cmd, args) = argv(&[
        "serve-bench",
        "--streams",
        "8",
        "--values",
        "512",
        "--shards",
        "2",
        "--query-iters",
        "16",
        "--micro-items",
        "400",
        "--server-clients",
        "8",
        "--server-values",
        "256",
        "--emit-bench",
        path_str,
    ]);
    let out = run(&cmd, &args, "").expect("serve-bench runs");
    assert!(out.contains("values/s"), "throughput line missing:\n{out}");
    assert!(out.contains("query latency over 16"), "query phase missing:\n{out}");

    let text = std::fs::read_to_string(&path).expect("report written");
    let doc = json::parse(&text).expect("report is valid JSON");
    std::fs::remove_file(&path).ok();

    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("stardust-bench/v1"));
    let config = doc.get("config").expect("config section");
    assert_eq!(config.get("streams").and_then(Value::as_u64), Some(8));
    assert_eq!(config.get("values").and_then(Value::as_u64), Some(512));
    assert_eq!(config.get("shards").and_then(Value::as_u64), Some(2));

    let ingest = doc.get("ingest").expect("ingest section");
    assert_eq!(ingest.get("values").and_then(Value::as_u64), Some(8 * 512));
    assert!(ingest.get("elapsed_s").and_then(Value::as_f64).expect("elapsed") > 0.0);
    assert!(ingest.get("throughput_values_per_s").and_then(Value::as_f64).expect("rate") > 0.0);

    let query = doc.get("query").expect("query section");
    assert_eq!(query.get("iterations").and_then(Value::as_u64), Some(16));
    let p50 = query.get("p50_ns").and_then(Value::as_u64).expect("p50");
    let p95 = query.get("p95_ns").and_then(Value::as_u64).expect("p95");
    assert!(p50 > 0 && p50 <= p95, "quantiles out of order: p50 {p50}, p95 {p95}");

    // Index / maintenance micro-timings consumed by bench_gate: present,
    // positive, and the STR bulk rebuild must not be slower than the
    // incremental replay it replaced on the recovery path.
    let index = doc.get("index").expect("index section");
    assert_eq!(index.get("items").and_then(Value::as_u64), Some(400));
    assert!(index.get("insert_ns").and_then(Value::as_u64).expect("insert_ns") > 0);
    assert!(index.get("query_ns").and_then(Value::as_u64).expect("query_ns") > 0);
    let maint = doc.get("maintenance").expect("maintenance section");
    let bulk = maint.get("rebuild_bulk_ns").and_then(Value::as_u64).expect("bulk ns");
    let replay = maint.get("rebuild_replay_ns").and_then(Value::as_u64).expect("replay ns");
    let speedup = maint.get("rebuild_speedup").and_then(Value::as_f64).expect("speedup");
    assert!(bulk > 0 && bulk <= replay, "bulk rebuild slower than replay: {bulk} vs {replay}");
    assert!(speedup >= 1.0, "rebuild speedup below 1: {speedup}");

    // Persistence micro-timings consumed by bench_gate: the durable
    // WAL path must have recovered the full workload it journaled.
    let persist = doc.get("persistence").expect("persistence section");
    assert_eq!(
        persist.get("recovered_appends").and_then(Value::as_u64),
        Some(8 * 512),
        "disk recovery must surface every journaled append"
    );
    assert!(persist.get("wal_append_ns").and_then(Value::as_u64).expect("wal ns") > 0);
    assert!(persist.get("recovery_ns").and_then(Value::as_u64).expect("recovery ns") > 0);

    // Server-load section consumed by bench_gate: the fleet ran, the
    // event-set audit passed (an audit failure errors the whole
    // command), and the tail quantiles are ordered.
    let server = doc.get("server").expect("server section");
    assert_eq!(server.get("clients").and_then(Value::as_u64), Some(8));
    assert_eq!(server.get("values").and_then(Value::as_u64), Some(8 * 256));
    assert!(server.get("throughput_values_per_s").and_then(Value::as_f64).expect("rate") > 0.0);
    assert!(server.get("audit_events").and_then(Value::as_u64).expect("events") > 0);
    let sp50 = server.get("append_p50_ns").and_then(Value::as_u64).expect("p50");
    let sp99 = server.get("append_p99_ns").and_then(Value::as_u64).expect("p99");
    assert!(sp50 > 0 && sp50 <= sp99, "append quantiles out of order: {sp50} vs {sp99}");

    // Cross-shard correlation audit consumed by bench_gate: the prune
    // funnel conserves (considered = candidates + pruned), recall is
    // exactly 1 with zero false dismissals (a dismissal errors the
    // whole command), and precision is a valid fraction.
    let cc = doc.get("cross_corr").expect("cross_corr section");
    let considered = cc.get("considered").and_then(Value::as_u64).expect("considered");
    let candidates = cc.get("candidates").and_then(Value::as_u64).expect("candidates");
    let pruned = cc.get("pruned").and_then(Value::as_u64).expect("pruned");
    let confirmed = cc.get("confirmed").and_then(Value::as_u64).expect("confirmed");
    assert_eq!(candidates + pruned, considered, "prune funnel leaks pairs");
    assert!(confirmed <= candidates, "confirmed {confirmed} > candidates {candidates}");
    assert!(pruned > 0, "the audit workload must exercise the prune path");
    assert_eq!(cc.get("false_dismissals").and_then(Value::as_u64), Some(0));
    assert_eq!(cc.get("prune_recall").and_then(Value::as_f64), Some(1.0));
    let precision = cc.get("prune_precision").and_then(Value::as_f64).expect("precision");
    assert!((0.0..=1.0).contains(&precision), "precision out of range: {precision}");
    assert!(cc.get("exchanges").and_then(Value::as_u64).expect("exchanges") > 0);
    assert!(cc.get("pairs").and_then(Value::as_u64).expect("pairs") > 0);

    // The embedded registry document: every value ingested is an append
    // seen by the summarizers of the enabled classes (aggregate plus
    // correlation in the default generated workload), and the class
    // funnel is monotone.
    let metrics = doc.get("metrics").expect("metrics section");
    assert_eq!(metrics.get("schema").and_then(Value::as_str), Some("stardust-metrics/v1"));
    let appends = counter(metrics, "stardust_summarizer_appends_total");
    assert_eq!(appends % (8 * 512), 0, "appends {appends} not a multiple of values ingested");
    assert!(appends >= 8 * 512);
    for class in ["aggregate", "correlation"] {
        let checks = counter(metrics, &format!("stardust_{class}_checks_total"));
        let candidates = counter(metrics, &format!("stardust_{class}_candidates_total"));
        let confirmed = counter(metrics, &format!("stardust_{class}_confirmed_total"));
        assert!(candidates <= checks, "{class}: candidates {candidates} > checks {checks}");
        assert!(
            confirmed <= candidates,
            "{class}: confirmed {confirmed} > candidates {candidates}"
        );
    }

    // Per-shard gauges exported from runtime stats conserve the ingest
    // volume.
    let gauges = metrics.get("gauges").and_then(Value::as_object).expect("gauges");
    let shard_appends: f64 = gauges
        .iter()
        .filter(|(k, _)| k.starts_with("stardust_shard_appends{"))
        .filter_map(|(_, v)| v.as_f64())
        .sum();
    assert_eq!(shard_appends as u64, 8 * 512, "shard appends must sum to values ingested");
}

#[test]
fn metrics_command_emits_model_gauges() {
    let (cmd, args) = argv(&["metrics", "--format", "json", "--streams", "4", "--values", "512"]);
    let out = run(&cmd, &args, "").expect("metrics runs");
    let doc = json::parse(&out).expect("metrics output is valid JSON");
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("stardust-metrics/v1"));

    let gauges = doc.get("gauges").expect("gauges section");
    let observed = gauges
        .get("stardust_aggregate_false_alarm_rate_observed")
        .and_then(Value::as_f64)
        .expect("observed false-alarm gauge");
    let predicted = gauges
        .get("stardust_aggregate_false_alarm_rate_predicted")
        .and_then(Value::as_f64)
        .expect("predicted false-alarm gauge");
    let ratio = gauges
        .get("stardust_aggregate_monitoring_ratio")
        .and_then(Value::as_f64)
        .expect("monitoring-ratio gauge");
    assert!((0.0..=1.0).contains(&observed), "observed rate out of range: {observed}");
    assert!((0.0..=1.0).contains(&predicted), "predicted rate out of range: {predicted}");
    assert!(ratio >= 1.0, "Eq. 7 ratio below 1: {ratio}");

    // Prometheus rendering of the same run: spot-check the format.
    let (cmd, args) = argv(&["metrics", "--format", "prom", "--streams", "4", "--values", "512"]);
    let prom = run(&cmd, &args, "").expect("metrics --format prom runs");
    assert!(prom.contains("# TYPE stardust_summarizer_appends_total counter"));
    assert!(prom.contains("# TYPE stardust_aggregate_latency_ns histogram"));
    assert!(prom.contains("stardust_aggregate_latency_ns_bucket{le=\"+Inf\"}"));

    // Elastic-rebalancing telemetry is registered even when no migration
    // ran: the counter, the latency histogram, and the per-epoch gauges
    // exported from the final runtime stats.
    assert!(prom.contains("# TYPE stardust_runtime_migrations_total counter"));
    assert!(prom.contains("# TYPE stardust_runtime_migration_ms histogram"));
    assert!(prom.contains("stardust_runtime_migration_ms_bucket{le=\"+Inf\"}"));
    assert!(prom.contains("stardust_runtime_epoch 0"));
    assert!(prom.contains("stardust_runtime_live_shards 1"));

    let (cmd, args) = argv(&["metrics", "--format", "bogus"]);
    assert!(run(&cmd, &args, "").is_err(), "unknown format must be rejected");
}

/// End-to-end `stardust serve`: bind an ephemeral port, scrape it via
/// `--addr-file`, speak the wire protocol with the real client, and
/// check the drain summary accounts for exactly the appends sent.
#[test]
fn serve_subcommand_accepts_clients_end_to_end() {
    use std::time::{Duration, Instant};

    let dir = std::env::temp_dir().join(format!("stardust-golden-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let addr_file = dir.join("addr.txt");
    let addr_file_str = addr_file.to_str().expect("utf-8 temp path").to_string();

    let handle = std::thread::spawn(move || {
        let (cmd, args) = argv(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            &addr_file_str,
            "--max-seconds",
            "2.5",
            "--streams",
            "4",
            "--values",
            "512",
            "--shards",
            "2",
        ]);
        run(&cmd, &args, "")
    });

    // The bound address appears in the file once the listener is up.
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr: std::net::SocketAddr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(a) = text.trim().parse() {
                break a;
            }
        }
        assert!(Instant::now() < deadline, "serve never wrote --addr-file");
        std::thread::sleep(Duration::from_millis(20));
    };

    let (mut client, hello) =
        stardust_server::Client::connect(addr, "stardust-dev").expect("connect");
    assert_eq!(hello.streams, 4, "default tenant must own all serve streams");
    let items: Vec<(u32, f64)> = (0..8).map(|i| (i % 4, 0.25 * i as f64)).collect();
    client.append_all(&items).expect("append over the wire");
    client.ping().expect("ping");
    client.goodbye().expect("goodbye");

    let out = handle.join().expect("serve thread").expect("serve runs");
    assert!(
        out.contains("drained: 8 append(s) admitted"),
        "drain summary must account for the 8 appends:\n{out}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_drill_still_audits_after_telemetry_wiring() {
    let (cmd, args) = argv(&["chaos", "--streams", "8", "--values", "256", "--shards", "2"]);
    let out = run(&cmd, &args, "").expect("chaos runs");
    assert!(out.contains("AUDIT OK"), "chaos audit failed:\n{out}");
}

/// The `stardust rebalance` drill: live split/merge, deterministic
/// migration kills, and a whole-process crash mid-migration must all
/// audit bit-identical against the never-resized baseline.
#[test]
fn rebalance_drill_audits_live_chaos_and_crash_phases() {
    let (cmd, args) =
        argv(&["rebalance", "--streams", "8", "--values", "512", "--shards", "2", "--groups", "4"]);
    let out = run(&cmd, &args, "").expect("rebalance runs");
    assert!(out.contains("baseline: never resized"), "baseline phase missing:\n{out}");
    assert!(out.contains("epoch 4, 4 migration(s)"), "live resize summary missing:\n{out}");
    assert!(
        out.contains("faults fired: 2/2, worker restarts: 2"),
        "migration kills must both fire and both heal:\n{out}"
    );
    assert!(out.contains("reopened at epoch 0"), "crash phase must reopen fresh:\n{out}");
    assert_eq!(out.matches("AUDIT OK").count(), 3, "every phase must audit clean:\n{out}");
}

#[test]
fn chaos_disk_drill_audits_every_fault_kind() {
    let dir = std::env::temp_dir().join(format!("stardust-golden-disk-{}", std::process::id()));
    let (cmd, args) = argv(&[
        "chaos-disk",
        "--streams",
        "8",
        "--values",
        "1000",
        "--shards",
        "2",
        "--dir",
        dir.to_str().expect("utf-8 temp path"),
    ]);
    let out = run(&cmd, &args, "").expect("chaos-disk runs");
    std::fs::remove_dir_all(&dir).ok();
    for kind in ["torn-write", "failed-fsync", "bit-flip-snap", "truncate-wal"] {
        assert!(out.contains(kind), "drill for {kind} missing:\n{out}");
    }
    assert_eq!(out.matches("fired 1/1").count(), 4, "every fault must fire exactly once:\n{out}");
    assert!(out.contains("fallback true"), "snapshot fallback must engage:\n{out}");
    assert!(out.contains("AUDIT OK: all 4 disk-fault drills"), "chaos-disk audit failed:\n{out}");
}
