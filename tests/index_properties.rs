//! Property tests of the R\*-tree against a naive shadow structure under
//! interleaved inserts, deletes, bulk rebuilds, and queries.

use proptest::prelude::*;
use stardust::index::{bulk_load, Params, RStarTree, Rect};

#[derive(Debug, Clone)]
enum Op {
    Insert {
        lo: Vec<f64>,
        extent: Vec<f64>,
    },
    RemoveOldest,
    /// Move the oldest item by a small or large offset (exercises both
    /// the in-place and the reinsert path of `update`).
    UpdateOldest {
        shift: f64,
    },
    /// Replace the tree with an STR bulk build over the live items (the
    /// crash-recovery path), then keep mutating it.
    BulkRebuild,
    Query {
        lo: Vec<f64>,
        extent: Vec<f64>,
    },
    Within {
        point: Vec<f64>,
        radius: f64,
    },
}

fn coord() -> impl Strategy<Value = f64> {
    -50.0f64..50.0
}

fn op_strategy(dims: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (
            proptest::collection::vec(coord(), dims),
            proptest::collection::vec(0.0f64..8.0, dims)
        )
            .prop_map(|(lo, extent)| Op::Insert { lo, extent }),
        1 => Just(Op::RemoveOldest),
        2 => (-60.0f64..60.0).prop_map(|shift| Op::UpdateOldest { shift }),
        1 => Just(Op::BulkRebuild),
        2 => (
            proptest::collection::vec(coord(), dims),
            proptest::collection::vec(0.0f64..30.0, dims)
        )
            .prop_map(|(lo, extent)| Op::Query { lo, extent }),
        2 => (proptest::collection::vec(coord(), dims), 0.0f64..25.0)
            .prop_map(|(point, radius)| Op::Within { point, radius }),
    ]
}

fn rect(lo: &[f64], extent: &[f64]) -> Rect {
    Rect::new(lo.to_vec(), lo.iter().zip(extent).map(|(l, e)| l + e).collect())
}

/// Applies `ops` to the tree and the linear-scan shadow in lockstep,
/// checking search-result equivalence on every query and the full set of
/// structural invariants ([`RStarTree::validate`]: fill factors, MBR
/// containment, level uniformity, flat-mirror sync, arena accounting)
/// after every op.
fn apply_ops(
    tree: &mut RStarTree<u32>,
    shadow: &mut Vec<(Rect, u32)>,
    next_id: &mut u32,
    cap: usize,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    for op in ops {
        match op {
            Op::Insert { lo, extent } => {
                let r = rect(lo, extent);
                tree.insert(r.clone(), *next_id);
                shadow.push((r, *next_id));
                *next_id += 1;
            }
            Op::RemoveOldest => {
                if let Some((r, v)) = shadow.first().cloned() {
                    prop_assert!(tree.remove(&r, &v));
                    shadow.remove(0);
                }
            }
            Op::UpdateOldest { shift } => {
                if let Some((r, v)) = shadow.first().cloned() {
                    let moved = Rect::new(
                        r.lo().iter().map(|x| x + shift).collect(),
                        r.hi().iter().map(|x| x + shift).collect(),
                    );
                    prop_assert!(tree.update(&r, &v, moved.clone()));
                    shadow[0] = (moved, v);
                }
            }
            Op::BulkRebuild => {
                *tree = bulk_load(tree.dims(), Params::new(cap), shadow.clone());
            }
            Op::Query { lo, extent } => {
                let q = rect(lo, extent);
                let mut got: Vec<u32> =
                    tree.collect_intersecting(&q).iter().map(|&(_, v)| *v).collect();
                got.sort_unstable();
                let mut want: Vec<u32> =
                    shadow.iter().filter(|(r, _)| r.intersects(&q)).map(|&(_, v)| v).collect();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
            Op::Within { point, radius } => {
                let mut got: Vec<u32> =
                    tree.collect_within(point, *radius).iter().map(|&(_, v)| *v).collect();
                got.sort_unstable();
                let mut want: Vec<u32> = shadow
                    .iter()
                    .filter(|(r, _)| r.min_dist_point(point) <= *radius)
                    .map(|&(_, v)| v)
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
        }
        tree.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), shadow.len());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn tree_agrees_with_shadow(
        ops in proptest::collection::vec(op_strategy(3), 1..250),
        cap in 4usize..12,
    ) {
        let mut tree = RStarTree::with_params(3, Params::new(cap));
        let mut shadow: Vec<(Rect, u32)> = Vec::new();
        let mut next_id = 0u32;
        apply_ops(&mut tree, &mut shadow, &mut next_id, cap, &ops)?;
    }

    /// The recovery shape: start from an STR bulk build over a seed
    /// population, then keep mutating and querying it.
    #[test]
    fn bulk_seeded_tree_agrees_with_shadow(
        seeds in proptest::collection::vec(
            (proptest::collection::vec(coord(), 3), proptest::collection::vec(0.0f64..8.0, 3)),
            0..400
        ),
        ops in proptest::collection::vec(op_strategy(3), 1..120),
        cap in 4usize..12,
    ) {
        let mut shadow: Vec<(Rect, u32)> = seeds
            .iter()
            .enumerate()
            .map(|(i, (lo, extent))| (rect(lo, extent), i as u32))
            .collect();
        let mut next_id = shadow.len() as u32;
        let mut tree = bulk_load(3, Params::new(cap), shadow.clone());
        tree.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), shadow.len());
        apply_ops(&mut tree, &mut shadow, &mut next_id, cap, &ops)?;
    }

    #[test]
    fn bulk_load_equivalent_to_inserts(
        items in proptest::collection::vec(
            (proptest::collection::vec(coord(), 2), proptest::collection::vec(0.0f64..5.0, 2)),
            0..300
        ),
    ) {
        let rects: Vec<(Rect, usize)> = items
            .iter()
            .enumerate()
            .map(|(i, (lo, extent))| (rect(lo, extent), i))
            .collect();
        let bulk = bulk_load(2, Params::default(), rects.clone());
        bulk.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(bulk.len(), rects.len());
        let q = Rect::new(vec![-20.0, -20.0], vec![20.0, 20.0]);
        let mut got: Vec<usize> = bulk.collect_intersecting(&q).iter().map(|&(_, v)| *v).collect();
        got.sort_unstable();
        let mut want: Vec<usize> =
            rects.iter().filter(|(r, _)| r.intersects(&q)).map(|&(_, v)| v).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
