//! Property tests of the multi-resolution summarizer: the exactness /
//! conservativeness guarantees of Lemmas 4.1–4.2 and the space bound of
//! Theorem 4.3, end to end over random streams.

use proptest::prelude::*;
use stardust::core::config::{ComputeMode, Config, UpdatePolicy};
use stardust::core::transform::TransformKind;
use stardust::core::StreamSummary;

fn stream_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    (0.0f64..100.0, proptest::collection::vec(-1.0f64..1.0, n)).prop_map(|(start, steps)| {
        let mut x = start;
        steps
            .into_iter()
            .map(|d| {
                x = (x + d).clamp(0.0, 100.0);
                x
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// c = 1 online summaries reproduce the direct transform exactly at
    /// every level and time, for every transform kind.
    #[test]
    fn unit_capacity_is_exact(data in stream_strategy(200), kind_idx in 0usize..5) {
        let kind = [
            TransformKind::Sum,
            TransformKind::Max,
            TransformKind::Min,
            TransformKind::Spread,
            TransformKind::Dwt,
        ][kind_idx];
        let base = 8usize;
        let mut cfg = Config::online(kind, base, 3, 1);
        cfg.dwt_coeffs = 4;
        cfg.history = cfg.max_window() * 2;
        let mut s = StreamSummary::new(cfg.clone());
        for (i, &x) in data.iter().enumerate() {
            s.push_quiet(x);
            for j in 0..3 {
                let w = base << j;
                if i + 1 < w {
                    continue;
                }
                let mbr = s.mbr_at(j, i as u64).expect("feature exists");
                let direct = kind.compute(&data[i + 1 - w..=i], 4);
                for (d, (lo, hi)) in direct.iter().zip(mbr.bounds.lo().iter().zip(mbr.bounds.hi())) {
                    prop_assert!((d - lo).abs() < 1e-6 && (d - hi).abs() < 1e-6);
                }
            }
        }
    }

    /// Boxed summaries are conservative: the MBR always contains the true
    /// feature, for any capacity and update policy.
    #[test]
    fn boxes_always_contain_truth(
        data in stream_strategy(250),
        c in 1usize..12,
        policy_idx in 0usize..3,
    ) {
        let policy = [UpdatePolicy::Online, UpdatePolicy::Batch, UpdatePolicy::Swat][policy_idx];
        let base = 8usize;
        let mut cfg = Config::online(TransformKind::Dwt, base, 3, c);
        cfg.update = policy;
        cfg.dwt_coeffs = 4;
        cfg.history = cfg.max_window() * 2;
        let mut s = StreamSummary::new(cfg.clone());
        for (i, &x) in data.iter().enumerate() {
            s.push_quiet(x);
            for j in 0..3 {
                let w = base << j;
                if let Some(mbr) = s.mbr_at(j, i as u64) {
                    let direct = TransformKind::Dwt.compute(&data[i + 1 - w..=i], 4);
                    prop_assert!(mbr.bounds.contains(&direct, 1e-6));
                    let sum: f64 = data[i + 1 - w..=i].iter().sum();
                    prop_assert!(mbr.sum.0 - 1e-6 <= sum && sum <= mbr.sum.1 + 1e-6);
                }
            }
        }
    }

    /// Theorem 4.3 space bound: retained MBRs at level j−1 stay within a
    /// small constant of 2^{j-1}·W/(c·T_{j-1}) plus the history term.
    #[test]
    fn space_stays_within_theorem_bound(
        data in stream_strategy(600),
        c in 1usize..10,
    ) {
        let base = 8usize;
        let levels = 3usize;
        let history = 128usize;
        let cfg = Config::online(TransformKind::Sum, base, levels, c).with_history(history);
        let mut s = StreamSummary::new(cfg);
        for &x in &data {
            s.push_quiet(x);
        }
        // Per level: at most history/(c·T) sealed boxes (+1 open, +1 edge).
        let per_level_bound = history / c + 2;
        prop_assert!(
            s.retained_mbrs() <= levels * per_level_bound,
            "retained {} > bound {}",
            s.retained_mbrs(),
            levels * per_level_bound
        );
    }

    /// Direct (MR-Index) computation and incremental computation agree
    /// exactly whenever boxes are degenerate.
    #[test]
    fn direct_equals_incremental_for_unit_boxes(data in stream_strategy(150)) {
        let mut cfg = Config::batch(8, 3, 4, 1.0).with_history(64);
        let mut inc = StreamSummary::new(cfg.clone());
        cfg.compute = ComputeMode::Direct;
        let mut dir = StreamSummary::new(cfg);
        for (i, &x) in data.iter().enumerate() {
            inc.push_quiet(x);
            dir.push_quiet(x);
            for j in 0..3 {
                let (a, b) = (inc.mbr_at(j, i as u64), dir.mbr_at(j, i as u64));
                prop_assert_eq!(a.is_some(), b.is_some());
                if let (Some(a), Some(b)) = (a, b) {
                    for (x1, x2) in a.bounds.lo().iter().zip(b.bounds.lo()) {
                        prop_assert!((x1 - x2).abs() < 1e-6);
                    }
                }
            }
        }
    }
}
