//! Observed vs predicted false-alarm rate — the Eq. 4–7 model of §5.1
//! checked against measurement.
//!
//! The model: monitoring a window `w` through a covering window `T·w`
//! inflates the aggregate, so a threshold trained for tail probability
//! `p` fires a candidate with probability
//! `1 − Φ((1 + Φ⁻¹(1−p))/T − 1)` (Eq. 6), under the normalized-deviation
//! assumption of Eq. 5 (window aggregate deviation measured in units of
//! its mean). SWT's covering window realizes exactly this `T`
//! (`swt_t`, the `T ∈ [1, 2)` of Eq. 6), which makes it the clean test
//! vehicle: every full-window check either crosses the covering bound
//! or not, and the candidate fraction is the modeled rate.
//!
//! The test drives iid data shaped so the Eq. 5 assumption holds
//! exactly — per-value σ chosen so the window aggregate's σ equals its
//! mean — and asserts the measured candidate rate stays within the
//! modeled bound (plus sampling slack). The same numbers surface as
//! `stardust_aggregate_false_alarm_rate_{observed,predicted}` gauges in
//! `stardust metrics`.

use rand::prelude::*;
use rand::rngs::StdRng;
use stardust_baselines::SwtMonitor;
use stardust_core::query::aggregate::{analysis, WindowSpec};
use stardust_core::transform::TransformKind;
use stardust_datagen::sampler::normal_with;

/// Monitored window: strictly between the dyadic covers 32 and 64 so
/// the covering-window inflation is material (T = 40/33 ≈ 1.21).
const W_MON: usize = 33;
/// SWT base unit.
const W_BASE: usize = 10;
/// Design tail probability the threshold is trained for.
const P: f64 = 0.05;
/// Per-value mean of the iid input.
const MEAN: f64 = 4.0;
/// Stream length.
const N: usize = 60_000;

#[test]
fn observed_false_alarm_rate_within_eq6_bound() {
    // Shape the data so Eq. 5 holds exactly for the monitored window:
    // the SUM over w iid values has mean w·m and sigma sqrt(w)·sigma_v;
    // picking sigma_v = sqrt(w)·m makes the window sigma equal the
    // window mean, which is the unit Eq. 5 normalizes by.
    let sigma_v = (W_MON as f64).sqrt() * MEAN;
    let mu_w = W_MON as f64 * MEAN;
    let tau = analysis::tail_threshold(mu_w, P);

    let t = analysis::swt_t(W_MON, W_BASE);
    assert!((1.0..2.0).contains(&t), "covering ratio out of Eq. 6 range: {t}");
    let predicted = analysis::false_alarm_rate(t, P);

    let mut rng = StdRng::seed_from_u64(20260805);
    let spec = WindowSpec { window: W_MON, threshold: tau };
    let mut swt = SwtMonitor::new(TransformKind::Sum, W_BASE, &[spec]);
    for _ in 0..N {
        swt.push(normal_with(&mut rng, MEAN, sigma_v));
    }
    let stats = swt.stats();
    assert!(stats.checks > 50_000, "not enough full-window checks: {}", stats.checks);

    let observed = stats.candidate_rate();
    // The model is an upper bound for the covering monitor (the level
    // threshold is exactly tau here, and the covering aggregate
    // stochastically dominates the monitored one); 0.02 absorbs
    // sampling noise at N = 60k.
    assert!(
        observed <= predicted + 0.02,
        "observed candidate rate {observed:.4} exceeds Eq. 6 prediction {predicted:.4}"
    );
    // And the inflation is real: the covering monitor must alarm more
    // often than the design tail probability of an exact monitor.
    assert!(
        observed > P,
        "covering-window monitor should exceed the exact-monitor rate {P}: {observed:.4}"
    );
}

#[test]
fn stardust_ratio_beats_swt_ratio() {
    // Eq. 7: Stardust's binary decomposition yields a strictly smaller
    // effective monitoring ratio than SWT's covering window whenever
    // the window is not itself dyadic, hence a lower predicted
    // false-alarm rate at the same design tail probability.
    for (b, c, base) in [(2u64, 4usize, 16usize), (12, 64, 64), (8, 16, 32)] {
        let w = b as usize * base;
        let t_stardust = analysis::stardust_t_prime(b, c, base);
        let t_swt = analysis::swt_t(w + 1, base); // just past dyadic => worst cover
        assert!(t_stardust < t_swt, "T'={t_stardust} vs T={t_swt} (b={b}, c={c}, W={base})");
        assert!(
            analysis::false_alarm_rate(t_stardust, P) <= analysis::false_alarm_rate(t_swt, P),
            "model must be monotone in the monitoring ratio"
        );
    }
}
