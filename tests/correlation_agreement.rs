//! Cross-technique correlation monitoring: Stardust and StatStream must
//! both cover the brute-force ground truth at every detection round, and
//! their verified answers must agree with each other.

use std::collections::BTreeSet;

use stardust::baselines::StatStream;
use stardust::core::normalize;
use stardust::core::query::correlation::CorrelationMonitor;

const W: usize = 8;
const LEVELS: usize = 3; // N = 32
const N: usize = 32;
const M: usize = 5;

fn splitmix(seed: &mut u64) -> f64 {
    *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z = z ^ (z >> 31);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Five streams: 0/1 near-identical, 2/3 anti-correlated versions of a
/// second walk, 4 independent.
fn make_streams(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut s1 = seed;
    let mut s2 = seed ^ 0xABCDEF;
    let mut s3 = seed ^ 0x123456;
    let (mut a, mut b, mut c) = (60.0f64, 40.0f64, 50.0f64);
    let mut out: Vec<Vec<f64>> = (0..M).map(|_| Vec::with_capacity(n)).collect();
    for i in 0..n {
        a += splitmix(&mut s1) - 0.5;
        b += splitmix(&mut s2) - 0.5;
        c += splitmix(&mut s3) - 0.5;
        out[0].push(a);
        out[1].push(a + 0.02 * ((i % 5) as f64 - 2.0));
        out[2].push(b);
        out[3].push(100.0 - b); // perfectly anti-correlated with 2
        out[4].push(c);
    }
    out
}

#[test]
fn both_monitors_cover_ground_truth_each_round() {
    let n = 320;
    let radius = 0.6;
    let streams = make_streams(n, 77);
    let mut sd = CorrelationMonitor::new(W, LEVELS, 4, radius, M);
    let mut ss = StatStream::new(W, N / W, 4, 0.15, radius, M);
    for i in 0..n {
        let mut sd_batch = Vec::new();
        let mut ss_batch = Vec::new();
        for s in 0..M {
            sd_batch.extend(sd.append(s as u32, streams[s][i]));
            ss_batch.extend(ss.append(s as u32, streams[s][i]));
        }
        let t = i as u64;
        if !(t + 1).is_multiple_of(W as u64) || (t + 1) < N as u64 {
            continue;
        }
        let truth: BTreeSet<(u32, u32)> =
            sd.linear_scan_pairs(t).iter().map(|&(a, b, _)| (a, b)).collect();
        let sd_verified: BTreeSet<(u32, u32)> = sd_batch
            .iter()
            .filter(|p| {
                p.correlation.is_some_and(|c| normalize::correlation_to_distance(c) <= radius)
            })
            .map(|p| (p.a.min(p.b), p.a.max(p.b)))
            .collect();
        let ss_verified: BTreeSet<(u32, u32)> = ss_batch
            .iter()
            .filter(|p| {
                p.correlation.is_some_and(|c| normalize::correlation_to_distance(c) <= radius)
            })
            .map(|p| (p.a.min(p.b), p.a.max(p.b)))
            .collect();
        // Verified sets equal ground truth (reports cover it, verification
        // removes the rest).
        assert_eq!(sd_verified, truth, "stardust at t={t}");
        assert_eq!(ss_verified, truth, "statstream at t={t}");
    }
    // The planted pair (0,1) must have been confirmed at least once.
    assert!(sd.stats().true_pairs > 0);
    assert!(ss.stats().true_pairs > 0);
}

#[test]
fn anticorrelation_is_not_reported_as_correlation() {
    // Streams 2 and 3 have corr ≈ −1 ⇒ z-norm distance ≈ 2, far outside
    // any reasonable radius.
    let n = 320;
    let streams = make_streams(n, 13);
    let mut sd = CorrelationMonitor::new(W, LEVELS, 4, 0.5, M);
    let mut confirmed = BTreeSet::new();
    for i in 0..n {
        for s in 0..M {
            for p in sd.append(s as u32, streams[s][i]) {
                if p.correlation.is_some_and(|c| normalize::correlation_to_distance(c) <= 0.5) {
                    confirmed.insert((p.a.min(p.b), p.a.max(p.b)));
                }
            }
        }
    }
    assert!(!confirmed.contains(&(2, 3)), "anti-correlated pair reported: {confirmed:?}");
}

#[test]
fn correlation_coefficients_match_direct_computation() {
    let n = 160;
    let streams = make_streams(n, 999);
    let mut sd = CorrelationMonitor::new(W, LEVELS, 2, 1.0, M);
    for i in 0..n {
        for s in 0..M {
            for p in sd.append(s as u32, streams[s][i]) {
                let t = p.time as usize;
                let wa = &streams[p.a as usize][t + 1 - N..=t];
                let wb = &streams[p.b as usize][t + 1 - N..=t];
                let direct = normalize::correlation(wa, wb).expect("nonconstant");
                let reported = p.correlation.expect("verification on");
                assert!((direct - reported).abs() < 1e-9);
            }
        }
    }
}
