//! End-to-end burst monitoring: Stardust, SWT and the linear scan must
//! agree on the ground truth while differing in approximation quality
//! exactly as §5.1 predicts.

use stardust::baselines::linear_scan::true_alarm_times;
use stardust::baselines::SwtMonitor;
use stardust::core::config::Config;
use stardust::core::query::aggregate::{AggregateMonitor, WindowSpec};
use stardust::core::stats::train_threshold;
use stardust::core::transform::TransformKind;
use stardust::datagen::{burst_series, BurstParams};

fn workload() -> (Vec<f64>, Vec<WindowSpec>) {
    let (data, _) = burst_series(5, 12_000, &BurstParams::default());
    let train = &data[..1500];
    let specs: Vec<WindowSpec> = (1..=20)
        .map(|k| {
            let w = 10 * k;
            let threshold = train_threshold(train, w, 8.0, |win| win.iter().sum()).expect("train");
            WindowSpec { window: w, threshold }
        })
        .collect();
    (data, specs)
}

/// Every technique catches exactly the linear-scan true alarms (recall is
/// always perfect; only precision varies).
#[test]
fn recall_is_perfect_for_all_techniques() {
    let (data, specs) = workload();
    let live = &data[1500..];

    let mut expected = 0usize;
    for spec in &specs {
        expected += true_alarm_times(live, spec, TransformKind::Sum).len();
    }

    for c in [1usize, 10, 50] {
        let cfg = Config::online(TransformKind::Sum, 10, 5, c).with_history(200);
        let mut mon = AggregateMonitor::new(cfg, &specs);
        for &x in live {
            mon.push(x);
        }
        assert_eq!(mon.stats().true_alarms as usize, expected, "stardust c={c} true alarms");
    }

    let mut swt = SwtMonitor::new(TransformKind::Sum, 10, &specs);
    for &x in live {
        swt.push(x);
    }
    assert_eq!(swt.stats().true_alarms as usize, expected, "swt true alarms");
}

/// Precision ordering: exact (c=1) ≥ small boxes ≥ large boxes, and small
/// boxes beat SWT on this workload (the Fig. 4 shape).
#[test]
fn precision_ordering_matches_paper() {
    let (data, specs) = workload();
    let live = &data[1500..];
    let mut precisions = Vec::new();
    for c in [1usize, 10, 50] {
        let cfg = Config::online(TransformKind::Sum, 10, 5, c).with_history(200);
        let mut mon = AggregateMonitor::new(cfg, &specs);
        for &x in live {
            mon.push(x);
        }
        precisions.push(mon.stats().precision());
    }
    assert_eq!(precisions[0], 1.0, "c = 1 is exact");
    assert!(precisions[0] >= precisions[1] && precisions[1] >= precisions[2], "{precisions:?}");

    let mut swt = SwtMonitor::new(TransformKind::Sum, 10, &specs);
    for &x in live {
        swt.push(x);
    }
    assert!(
        precisions[1] >= swt.stats().precision(),
        "stardust c=10 ({}) should beat SWT ({})",
        precisions[1],
        swt.stats().precision()
    );
}

/// Volatility (SPREAD) end to end: interval bounds are sound, recall
/// perfect.
#[test]
fn spread_monitoring_end_to_end() {
    let data =
        stardust::datagen::packet_series(3, 20_000, &stardust::datagen::PacketParams::default());
    let train = &data[..4000];
    let spread = |w: &[f64]| {
        w.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - w.iter().copied().fold(f64::INFINITY, f64::min)
    };
    let specs: Vec<WindowSpec> = (1..=10)
        .map(|k| {
            let w = 50 * k;
            WindowSpec { window: w, threshold: train_threshold(train, w, 2.0, spread).unwrap() }
        })
        .collect();
    let live = &data[4000..];
    let cfg = Config::online(TransformKind::Spread, 50, 5, 20).with_history(800);
    let mut mon = AggregateMonitor::new(cfg, &specs);
    for &x in live {
        mon.push(x);
    }
    let mut expected = 0usize;
    for spec in &specs {
        expected += true_alarm_times(live, spec, TransformKind::Spread).len();
    }
    assert_eq!(mon.stats().true_alarms as usize, expected);
    assert!(mon.stats().candidates >= mon.stats().true_alarms);
}
