//! Property tests of the unified monitor's crash checkpointing: a
//! monitor snapshotted at an arbitrary point and restored must be
//! indistinguishable — event for event, bit for bit — from one that
//! never stopped. This is the invariant the sharded runtime's shard
//! recovery is built on.

use proptest::prelude::*;
use stardust::core::query::aggregate::WindowSpec;
use stardust::core::transform::TransformKind;
use stardust::core::unified::UnifiedMonitor;

const N_VALUES: usize = 320;
const BASE: usize = 8;

fn stream_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    (0.0f64..100.0, proptest::collection::vec(-1.0f64..1.0, n)).prop_map(|(start, steps)| {
        let mut x = start;
        steps
            .into_iter()
            .map(|d| {
                x = (x + d).clamp(0.0, 100.0);
                x
            })
            .collect()
    })
}

/// A SUM threshold most cases cross somewhere, so the comparison covers
/// real alarm events rather than empty vectors.
fn crossing_threshold(streams: &[Vec<f64>], window: usize) -> f64 {
    streams
        .iter()
        .flat_map(|s| s.windows(window).map(|w| w.iter().sum::<f64>()))
        .fold(f64::MIN, f64::max)
        * 0.9
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// snapshot → restore → continue ≡ never snapshotted, across all
    /// three query classes, for any split point, pattern radius, and
    /// pattern origin.
    #[test]
    fn snapshot_restore_continue_is_bit_identical(
        a in stream_strategy(N_VALUES),
        b in stream_strategy(N_VALUES),
        split in 40usize..N_VALUES - 40,
        pattern_at in 0usize..N_VALUES - 2 * BASE,
        radius in 0.02f64..0.5,
        corr_radius in 0.1f64..2.0,
    ) {
        let streams = [a, b];
        let r_max = streams.iter().flatten().fold(1.0f64, |m, &x| m.max(x.abs()));
        let threshold = crossing_threshold(&streams, 2 * BASE);

        let mut live = UnifiedMonitor::builder(BASE, 3, 2, r_max)
            .aggregates(TransformKind::Sum, vec![WindowSpec { window: 2 * BASE, threshold }], 4)
            .trends(4, 4)
            .correlations(4, corr_radius)
            .build();
        // A pattern cut from the data itself, so trend hits occur.
        live.register_trend(
            streams[0][pattern_at..pattern_at + 2 * BASE].to_vec(),
            radius,
        ).unwrap();

        for t in 0..split {
            for (s, stream) in streams.iter().enumerate() {
                live.append(s as u32, stream[t]);
            }
        }

        let mut revived = UnifiedMonitor::restore(&live.snapshot()).expect("snapshot round-trips");
        for t in split..N_VALUES {
            for (s, stream) in streams.iter().enumerate() {
                let expected = live.append(s as u32, stream[t]);
                let got = revived.append(s as u32, stream[t]);
                prop_assert_eq!(&got, &expected, "diverged at t={} stream={}", t, s);
            }
        }
        // After identical continuations the two monitors are the same
        // state again — their next checkpoints must agree byte for byte.
        prop_assert_eq!(live.snapshot(), revived.snapshot());
    }
}
