//! Facade-level tests of the unified monitor and the checkpoint/restore
//! pipeline across crates.

use stardust::core::engine::Stardust;
use stardust::core::query::aggregate::WindowSpec;
use stardust::core::query::pattern::{self, PatternQuery};
use stardust::core::transform::TransformKind;
use stardust::core::unified::{Event, UnifiedMonitor};
use stardust::core::{Config, StreamSummary};
use stardust::datagen::random_walk_streams;

/// The unified monitor's per-class reports agree with dedicated monitors
/// fed the same stream.
#[test]
fn unified_agrees_with_dedicated_monitors() {
    let data = random_walk_streams(21, 2, 600);
    let specs = vec![
        WindowSpec { window: 16, threshold: 900.0 },
        WindowSpec { window: 32, threshold: 1800.0 },
    ];
    let mut unified = UnifiedMonitor::builder(8, 3, 2, 200.0)
        .aggregates(TransformKind::Sum, specs.clone(), 4)
        .correlations(4, 0.4)
        .build();
    let mut dedicated_corr =
        stardust::core::query::correlation::CorrelationMonitor::new(8, 3, 4, 0.4, 2);

    let mut unified_aggr = 0usize;
    let mut unified_pairs = Vec::new();
    let mut dedicated_pairs = Vec::new();
    for i in 0..600 {
        for s in 0..2u32 {
            for ev in unified.append(s, data[s as usize][i]) {
                match ev {
                    Event::Aggregate { alarm, .. } => {
                        unified_aggr += usize::from(alarm.is_true_alarm)
                    }
                    Event::Correlation(p) => {
                        unified_pairs.push((p.a.min(p.b), p.a.max(p.b), p.time))
                    }
                    Event::Trend(_) => unreachable!("trends not enabled"),
                }
            }
            dedicated_pairs.extend(
                dedicated_corr
                    .append(s, data[s as usize][i])
                    .into_iter()
                    .map(|p| (p.a.min(p.b), p.a.max(p.b), p.time)),
            );
        }
    }
    assert_eq!(unified_pairs, dedicated_pairs, "correlation streams diverge");
    // Dedicated aggregate monitor on stream 0.
    let cfg = Config::online(TransformKind::Sum, 8, 3, 4).with_history(32);
    let mut dedicated_aggr = stardust::core::query::aggregate::AggregateMonitor::new(cfg, &specs);
    let mut count0 = 0usize;
    for i in 0..600 {
        count0 += dedicated_aggr.push(data[0][i]).iter().filter(|a| a.is_true_alarm).count();
    }
    // The unified count covers both streams; stream 0's share must match.
    assert!(unified_aggr >= count0);
}

/// Snapshot a summary to disk, restore it in a "new process" (fresh
/// objects), and keep going — the full operational cycle.
#[test]
fn checkpoint_cycle_through_disk() {
    let data = random_walk_streams(5, 1, 400);
    let cfg = Config::batch(8, 3, 4, 200.0).with_history(64);
    let mut live = StreamSummary::new(cfg);
    for &x in &data[0][..250] {
        live.push_quiet(x);
    }
    let dir = std::env::temp_dir().join("stardust_ckpt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("summary.snap");
    std::fs::write(&path, live.snapshot()).unwrap();

    let bytes = std::fs::read(&path).unwrap();
    let mut revived = StreamSummary::restore(&bytes).expect("restores from disk");
    for &x in &data[0][250..] {
        live.push_quiet(x);
        revived.push_quiet(x);
    }
    let t = live.now().unwrap();
    for j in 0..3 {
        assert_eq!(live.mbr_at(j, t), revived.mbr_at(j, t), "level {j}");
    }
    let _ = std::fs::remove_file(&path);
}

/// Engine checkpointing preserves pattern-query answers exactly.
#[test]
fn engine_checkpoint_preserves_answers() {
    let data = random_walk_streams(9, 4, 500);
    let r_max = data.iter().flatten().fold(1.0f64, |a, &b| a.max(b.abs()));
    let cfg = Config::batch(8, 4, 4, r_max).with_history(256);
    let mut engine = Stardust::new(cfg, 4);
    for i in 0..500 {
        for s in 0..4u32 {
            engine.append(s, data[s as usize][i]);
        }
    }
    let restored = Stardust::restore(&engine.snapshot()).expect("restores");
    for len in [24usize, 40] {
        let q = PatternQuery { sequence: data[1][500 - len..].to_vec(), radius: 0.03 };
        let a = pattern::query_batch(&engine, &q).expect("valid");
        let b = pattern::query_batch(&restored, &q).expect("valid");
        let mut ma: Vec<_> = a.matches.iter().map(|m| (m.stream, m.end_time)).collect();
        let mut mb: Vec<_> = b.matches.iter().map(|m| (m.stream, m.end_time)).collect();
        ma.sort_unstable();
        mb.sort_unstable();
        assert_eq!(ma, mb, "len={len}");
        assert_eq!(a.candidates.len(), b.candidates.len(), "len={len}");
    }
}
