//! Recovery-path equivalence: a monitor restored from a snapshot (whose
//! R\*-trees are rebuilt with one STR bulk load) must answer every query
//! class bit-identically to one rebuilt the expensive way — a fresh
//! monitor incrementally replaying the entire append history.

use stardust::core::config::Config;
use stardust::core::engine::Stardust;
use stardust::core::query::aggregate::WindowSpec;
use stardust::core::query::pattern::{query_batch, PatternQuery};
use stardust::core::transform::TransformKind;
use stardust::core::unified::{Event, UnifiedMonitor};

const BASE: usize = 8;
const N_STREAMS: usize = 3;
const N_VALUES: usize = 400;
const SPLIT: usize = 250;

fn value(t: usize, s: usize) -> f64 {
    // Correlated waves with per-stream phase so all three classes fire:
    // aggregates cross the threshold, the registered trend recurs, and
    // streams stay pairwise close in feature space.
    ((t as f64 * 0.23) + s as f64 * 0.05).sin() * 20.0 + 50.0 + (s as f64) * 0.1
}

fn build_monitor() -> UnifiedMonitor {
    let mut m = UnifiedMonitor::builder(BASE, 3, N_STREAMS, 100.0)
        .aggregates(
            TransformKind::Sum,
            vec![WindowSpec { window: 2 * BASE, threshold: 2.0 * BASE as f64 * 55.0 }],
            4,
        )
        .trends(4, 4)
        .correlations(4, 1.5)
        .build();
    // A pattern cut from the data itself, so trend matches occur.
    let pattern: Vec<f64> = (16..16 + 2 * BASE).map(|t| value(t, 0)).collect();
    m.register_trend(pattern, 0.4).expect("trends enabled");
    m
}

/// The restored monitor (STR bulk-loaded trees) and an incremental-replay
/// rebuild emit bit-identical events for every subsequent append, across
/// aggregates, trends, and correlations.
#[test]
fn restored_monitor_matches_incremental_replay() {
    let mut live = build_monitor();
    for t in 0..SPLIT {
        for s in 0..N_STREAMS {
            live.append(s as u32, value(t, s));
        }
    }

    // Path A: snapshot → restore (trees rebuilt via STR bulk load).
    let mut restored = UnifiedMonitor::restore(&live.snapshot()).expect("snapshot round-trips");
    // Path B: fresh monitor, incremental replay of the whole history.
    let mut replayed = build_monitor();
    for t in 0..SPLIT {
        for s in 0..N_STREAMS {
            replayed.append(s as u32, value(t, s));
        }
    }

    let mut classes_seen = [false; 3];
    for t in SPLIT..N_VALUES {
        for s in 0..N_STREAMS {
            let expected = live.append(s as u32, value(t, s));
            let via_bulk = restored.append(s as u32, value(t, s));
            let via_replay = replayed.append(s as u32, value(t, s));
            assert_eq!(via_bulk, expected, "restore diverged at t={t} stream={s}");
            assert_eq!(via_replay, expected, "replay diverged at t={t} stream={s}");
            for ev in &expected {
                match ev {
                    Event::Aggregate { .. } => classes_seen[0] = true,
                    Event::Trend(_) => classes_seen[1] = true,
                    Event::Correlation(_) => classes_seen[2] = true,
                }
            }
        }
    }
    assert!(
        classes_seen.iter().all(|&c| c),
        "test data must exercise all three classes, saw {classes_seen:?}"
    );
    // Identical states again: next checkpoints agree byte for byte.
    assert_eq!(live.snapshot(), restored.snapshot());
    assert_eq!(live.snapshot(), replayed.snapshot());
}

/// Engine level: per-level trees rebuilt by `Stardust::restore`'s bulk
/// load hold the same entries as an incremental replay and answer pattern
/// queries identically.
#[test]
fn restored_engine_matches_incremental_replay() {
    let cfg = Config::batch(8, 3, 4, 100.0).with_history(128);
    let mut live = Stardust::new(cfg.clone(), N_STREAMS);
    for t in 0..300 {
        for s in 0..N_STREAMS {
            live.append(s as u32, value(t, s));
        }
    }

    let mut restored = Stardust::restore(&live.snapshot()).expect("restores");
    let mut replayed = Stardust::new(cfg, N_STREAMS);
    for t in 0..300 {
        for s in 0..N_STREAMS {
            replayed.append(s as u32, value(t, s));
        }
    }

    for level in 0..3 {
        restored.tree(level).validate().expect("bulk-loaded tree valid");
        let mut a: Vec<_> =
            restored.tree(level).iter().map(|(r, e)| (r.clone(), e.clone())).collect();
        let mut b: Vec<_> =
            replayed.tree(level).iter().map(|(r, e)| (r.clone(), e.clone())).collect();
        a.sort_by(|(ra, ea), (rb, eb)| {
            ra.lo()
                .partial_cmp(rb.lo())
                .unwrap()
                .then(ra.hi().partial_cmp(rb.hi()).unwrap())
                .then(ea.stream.cmp(&eb.stream).then(ea.first.cmp(&eb.first)))
        });
        b.sort_by(|(ra, ea), (rb, eb)| {
            ra.lo()
                .partial_cmp(rb.lo())
                .unwrap()
                .then(ra.hi().partial_cmp(rb.hi()).unwrap())
                .then(ea.stream.cmp(&eb.stream).then(ea.first.cmp(&eb.first)))
        });
        assert_eq!(a.len(), b.len(), "level {level} entry count");
        for ((ra, ea), (rb, eb)) in a.iter().zip(&b) {
            assert_eq!(ra, rb, "level {level} rect");
            assert_eq!(
                (ea.stream, ea.first, ea.count, ea.period),
                (eb.stream, eb.first, eb.count, eb.period),
                "level {level} entry"
            );
        }
    }

    // Both engines answer pattern queries identically after continuing.
    for t in 300..360 {
        for s in 0..N_STREAMS {
            restored.append(s as u32, value(t, s));
            replayed.append(s as u32, value(t, s));
        }
    }
    let q = PatternQuery { sequence: (320..352).map(|t| value(t, 1)).collect(), radius: 0.05 };
    let a = query_batch(&restored, &q).expect("valid query");
    let b = query_batch(&replayed, &q).expect("valid query");
    let mut ma: Vec<_> = a.matches.iter().map(|m| (m.stream, m.end_time)).collect();
    let mut mb: Vec<_> = b.matches.iter().map(|m| (m.stream, m.end_time)).collect();
    ma.sort_unstable();
    mb.sort_unstable();
    assert_eq!(ma, mb);
}

/// The batched-append fast path is event-for-event equivalent to the
/// per-item loop.
#[test]
fn append_batch_matches_per_item_appends() {
    let mut one_by_one = build_monitor();
    let mut batched = build_monitor();
    for chunk_start in (0..N_VALUES).step_by(13) {
        let chunk_end = (chunk_start + 13).min(N_VALUES);
        let mut items: Vec<(u32, f64)> = Vec::new();
        for t in chunk_start..chunk_end {
            for s in 0..N_STREAMS {
                items.push((s as u32, value(t, s)));
            }
        }
        let mut expected = Vec::new();
        for &(s, v) in &items {
            expected.extend(one_by_one.append(s, v));
        }
        let got = batched.append_batch(&items);
        assert_eq!(got, expected, "batch starting at t={chunk_start}");
    }
    assert_eq!(one_by_one.snapshot(), batched.snapshot());
}
