//! Intra-query parallelism is invisible in query results.
//!
//! The determinism contract of the fan-out machinery (`stardust::runtime`'s
//! pool and the R\*-tree's parallel range queries): at **every** worker
//! count the result is bit-for-bit the serial result — same values, same
//! float bits, same order. Parallelism may only change wall-clock time.
//! The chaos variant kills a shard worker mid-run and requires the same
//! identity from the restored runtime.

use stardust::core::stream::StreamId;
use stardust::index::{RStarTree, Rect};
use stardust::runtime::{
    Batch, CorrelationSpec, FaultPlan, MonitorSpec, RuntimeConfig, ShardedRuntime,
};
use std::sync::Arc;

const BASE_WINDOW: usize = 8;
const LEVELS: usize = 3;
const WINDOW: usize = BASE_WINDOW << (LEVELS - 1);
const N_VALUES: usize = 160;
const RADIUS: f64 = 0.5;

/// Pair lists compared through `to_bits` so a single reassociated float
/// operation anywhere in the fan-out shows up as a failure, not as a
/// tolerance pass.
fn bits(pairs: &[(StreamId, StreamId, f64)]) -> Vec<(StreamId, StreamId, u64)> {
    pairs.iter().map(|&(a, b, c)| (a, b, c.to_bits())).collect()
}

/// Correlated workload with planted cross-shard pairs (phases 0/1 and 2/3
/// agree), identical to the cross-shard correlation suite's shape.
fn workload() -> Vec<Vec<f64>> {
    let phases = [0.0, 0.0, 2.1, 2.1, 4.2, 5.3];
    let mut seed = 0x5EEDu64;
    let mut rng = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    phases
        .iter()
        .enumerate()
        .map(|(i, &phase)| {
            let mean = 40.0 + 5.0 * i as f64;
            (0..N_VALUES)
                .map(|t| {
                    let cycle = 2.0 * std::f64::consts::PI * t as f64 / WINDOW as f64;
                    mean * (1.0 + 0.2 * (cycle + phase).sin() + 0.004 * rng())
                })
                .collect()
        })
        .collect()
}

fn spec(streams: &[Vec<f64>]) -> MonitorSpec {
    let r_max = streams.iter().flatten().fold(1.0f64, |m, &x| m.max(x.abs()));
    MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_correlations(CorrelationSpec { coeffs: 4, radius: RADIUS })
}

fn run(
    spec: &MonitorSpec,
    streams: &[Vec<f64>],
    shards: usize,
    intra_query_threads: usize,
    fault_plan: Option<Arc<FaultPlan>>,
) -> Vec<(StreamId, StreamId, f64)> {
    let rt = ShardedRuntime::launch(
        spec,
        streams.len(),
        RuntimeConfig {
            shards,
            queue_capacity: 32,
            intra_query_threads,
            fault_plan,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    for t in 0..N_VALUES {
        let batch: Batch = streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
        rt.submit_blocking(&batch).unwrap();
    }
    let pairs = rt.correlated_pairs().unwrap();
    rt.shutdown();
    pairs
}

#[test]
fn correlated_pairs_bit_identical_at_every_thread_count() {
    let streams = workload();
    let spec = spec(&streams);
    for shards in [2usize, 3, 4] {
        let serial = run(&spec, &streams, shards, 1, None);
        assert!(!serial.is_empty(), "vacuous: no pairs at {shards} shard(s)");
        for threads in [2usize, 3, 8, 0] {
            let parallel = run(&spec, &streams, shards, threads, None);
            assert_eq!(
                bits(&parallel),
                bits(&serial),
                "intra_query_threads={threads} diverged from serial at {shards} shard(s)"
            );
        }
    }
}

/// Chaos variant: every shard worker is killed somewhere mid-ingest and
/// restored by the supervisor; the parallel query over the recovered
/// runtime must still be bit-identical to the undisturbed serial run.
#[test]
fn parallel_query_survives_worker_kills_bit_identically() {
    let streams = workload();
    let spec = spec(&streams);
    for shards in [2usize, 3] {
        let serial = run(&spec, &streams, shards, 1, None);
        assert!(!serial.is_empty(), "vacuous: no pairs at {shards} shard(s)");
        for threads in [2usize, 8] {
            let plan = Arc::new(FaultPlan::seeded_kills(41 + shards as u64, shards, 40, 120));
            let chaotic = run(&spec, &streams, shards, threads, Some(plan));
            assert_eq!(
                bits(&chaotic),
                bits(&serial),
                "kills + intra_query_threads={threads} diverged at {shards} shard(s)"
            );
        }
    }
}

/// The R\*-tree side of the same contract: `par_collect_intersecting` and
/// `par_collect_within` return the serial DFS result — order and all — at
/// every thread count, on a tree big enough to have multi-level fan-out.
#[test]
fn index_parallel_range_queries_match_serial_order() {
    let mut tree: RStarTree<usize> = RStarTree::new(2);
    let mut seed = 7u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..2000 {
        let lo = [rng() * 100.0, rng() * 100.0];
        let hi = vec![lo[0] + rng() * 3.0, lo[1] + rng() * 3.0];
        tree.insert(Rect::new(lo.to_vec(), hi), i);
    }
    let queries = [
        Rect::new(vec![10.0, 10.0], vec![45.0, 60.0]),
        Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]),
    ];
    for query in &queries {
        let serial: Vec<(&Rect, &usize)> = tree.collect_intersecting(query);
        assert!(!serial.is_empty(), "vacuous query");
        for threads in [1usize, 2, 3, 7, 64] {
            let parallel = tree.par_collect_intersecting(query, threads);
            assert_eq!(parallel, serial, "intersecting diverged at {threads} thread(s)");
        }
    }
    let serial_within = tree.collect_within(&[50.0, 50.0], 25.0);
    assert!(!serial_within.is_empty(), "vacuous within-query");
    for threads in [2usize, 5, 64] {
        let parallel = tree.par_collect_within(&[50.0, 50.0], 25.0, threads);
        assert_eq!(parallel, serial_within, "within diverged at {threads} thread(s)");
    }
}
