//! Observed sketch-prune precision vs the analytic bound — the
//! cross-shard analogue of the Eq. 4–7 false-alarm check.
//!
//! The collector prunes a cross-shard pair when the block-sketch
//! distance lower bound exceeds `radius + PRUNE_SLACK`. Because the
//! bound is an orthogonal projection of the z-normed windows onto
//! block-constant vectors, it never exceeds the true distance — so
//! recall of the prune filter is *exactly* 1 (zero false dismissals),
//! and its precision is whatever the projection's resolution buys.
//!
//! This test pins both ends analytically: it rebuilds every stream's
//! sketch locally from the raw data, asserts the bound is below the
//! true z-normed distance for every cross-shard pair, predicts the
//! pruned count from the bound alone, and requires the runtime's
//! counters to match that prediction *exactly*. The same numbers
//! surface in the `cross_corr` section of `stardust serve-bench
//! --emit-bench`.

use stardust::core::normalize;
use stardust::core::stream::StreamId;
use stardust::core::{BlockSketch, PRUNE_SLACK};
use stardust::runtime::{Batch, CorrelationSpec, MonitorSpec, RuntimeConfig, ShardedRuntime};

const BASE_WINDOW: usize = 8;
const LEVELS: usize = 3;
/// Correlation window `W * 2^(levels-1)`; the sketch block defaults to
/// `BASE_WINDOW`, so the window spans 4 blocks.
const WINDOW: usize = BASE_WINDOW << (LEVELS - 1);
const N_STREAMS: usize = 8;
const SHARDS: usize = 4;
/// Block-aligned so the final sketches end exactly at `t*` and the
/// prune path is live for the last query.
const N_VALUES: usize = 160;
const RADIUS: f64 = 0.5;

/// Phase-structured sinusoids: streams sharing a phase are correlated
/// (z-normed correlation ~ cos of the phase difference); the rest sit
/// well outside the radius. One waveform period per correlation window
/// keeps the block averages shape-resolving, which is what gives the
/// projection bound its pruning power.
fn streams() -> Vec<Vec<f64>> {
    // (0,1) and (2,3) planted; under `g mod 4` placement both pairs are
    // cross-shard, and 24 of the 28 pairs are cross-shard in total.
    let phases = [0.0, 0.0, 2.1, 2.1, 0.9, 2.9, 4.2, 5.1];
    let mut seed = 0xACCE5Du64;
    let mut rng = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    phases
        .iter()
        .enumerate()
        .map(|(i, &phase)| {
            let mean = 30.0 + 4.0 * i as f64;
            (0..N_VALUES)
                .map(|t| {
                    let cycle = 2.0 * std::f64::consts::PI * t as f64 / WINDOW as f64;
                    mean * (1.0 + 0.2 * (cycle + phase).sin() + 0.004 * rng())
                })
                .collect()
        })
        .collect()
}

fn cross_shard(a: StreamId, b: StreamId) -> bool {
    a as usize % SHARDS != b as usize % SHARDS
}

#[test]
fn prune_precision_matches_analytic_bound() {
    let data = streams();
    let r_max = data.iter().flatten().fold(1.0f64, |m, &x| m.max(x.abs()));
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_correlations(CorrelationSpec { coeffs: 4, radius: RADIUS });

    // Ground truth at t* = N_VALUES - 1 from a single monitor.
    let want = {
        let mut monitor = spec.build(N_STREAMS).unwrap().unwrap();
        for t in 0..N_VALUES {
            for (s, stream) in data.iter().enumerate() {
                monitor.append(s as StreamId, stream[t]);
            }
        }
        monitor.correlation_monitor().unwrap().linear_scan_pairs(N_VALUES as u64 - 1)
    };
    for &(a, b) in &[(0, 1), (2, 3)] {
        assert!(
            want.iter().any(|&(x, y, _)| (x, y) == (a, b)),
            "vacuous: planted pair ({a},{b}) not in ground truth: {want:?}"
        );
    }

    // The sharded run whose counters we pin.
    let rt = ShardedRuntime::launch(
        &spec,
        N_STREAMS,
        RuntimeConfig { shards: SHARDS, queue_capacity: 32, ..RuntimeConfig::default() },
    )
    .unwrap();
    for t in 0..N_VALUES {
        let batch: Batch = data.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
        rt.submit_blocking(&batch).unwrap();
    }
    let got = rt.correlated_pairs().unwrap();
    let stats = rt.cross_corr_stats();
    rt.shutdown();

    // Recall is exactly 1: set identity with the linear scan means no
    // ground-truth pair was dismissed by the prune.
    assert_eq!(got, want, "sharded result diverged from the linear scan");
    let recall = if want.is_empty() { 1.0 } else { got.len() as f64 / want.len() as f64 };
    assert_eq!(recall, 1.0, "prune recall must be exactly 1");

    // Analytic prediction: rebuild each stream's sketch from the raw
    // data (bit-identical to what the shard ships — absorb reproduces
    // the pusher, see `sketch_properties`) and apply the collector's
    // own predicate.
    let sketches: Vec<BlockSketch> = data
        .iter()
        .map(|stream| {
            let mut sk = BlockSketch::new(WINDOW, BASE_WINDOW);
            for &v in stream {
                sk.push(v);
            }
            assert_eq!(sk.end_time(), Some(N_VALUES as u64 - 1), "sketch not aligned with t*");
            sk
        })
        .collect();

    let mut predicted_pruned = 0u64;
    let mut cross_pairs = 0u64;
    for a in 0..N_STREAMS as StreamId {
        for b in a + 1..N_STREAMS as StreamId {
            if !cross_shard(a, b) {
                continue;
            }
            cross_pairs += 1;
            let lb = sketches[a as usize]
                .distance_lower_bound(&sketches[b as usize])
                .expect("aligned complete sketches must bound");
            // The no-false-dismissal theorem, checked numerically: the
            // bound never exceeds the true z-normed distance.
            let wa = normalize::z_norm(&data[a as usize][N_VALUES - WINDOW..]).unwrap();
            let wb = normalize::z_norm(&data[b as usize][N_VALUES - WINDOW..]).unwrap();
            let true_d = normalize::l2_distance(&wa, &wb);
            assert!(
                lb <= true_d + 1e-7,
                "bound {lb} exceeds true distance {true_d} for pair ({a},{b})"
            );
            if lb > RADIUS + PRUNE_SLACK {
                predicted_pruned += 1;
            }
        }
    }

    // The runtime's prune counter must equal the analytic prediction
    // *exactly* — the collector applies the same predicate to the same
    // sketch state.
    assert_eq!(
        stats.pruned, predicted_pruned,
        "observed prune count diverged from the analytic bound: {stats:?}"
    );
    assert_eq!(stats.candidates + stats.pruned, cross_pairs, "prune accounting gap: {stats:?}");

    // The projection has real resolving power on block-scale waveforms:
    // most uncorrelated cross-shard pairs are pruned without touching
    // the owning shards, and most surviving candidates confirm.
    assert!(
        stats.pruned >= cross_pairs / 2,
        "prune rate collapsed: {} of {cross_pairs} pruned",
        stats.pruned
    );
    let precision = stats.confirmed as f64 / stats.candidates as f64;
    assert!(
        precision >= 0.5,
        "prune precision {precision:.3} below floor ({} candidates, {} confirmed)",
        stats.candidates,
        stats.confirmed
    );
}
