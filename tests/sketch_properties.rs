//! Property tests of the cross-shard correlation sketch
//! ([`stardust::core::sketch::BlockSketch`]): absorb/merge semantics,
//! sliding-window expiry against an exact buffer, and the projection
//! lower bound never exceeding the true z-normed distance — the
//! invariant the collector's no-false-dismissal prune rests on.

use proptest::prelude::*;
use stardust::core::normalize;
use stardust::core::sketch::BlockSketch;

/// (window, block) pairs with block dividing window.
fn geometry() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![
        Just((8usize, 1usize)),
        Just((8, 2)),
        Just((8, 8)),
        Just((16, 4)),
        Just((32, 4)),
        Just((32, 8)),
        Just((32, 32)),
    ]
}

fn values(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-50.0f64..50.0, n..=n)
}

/// Exact mean and centered L2 norm over a raw window, mirroring what
/// the sketch reconstructs from block moments.
fn exact_moments(window: &[f64]) -> (f64, f64) {
    let n = window.len() as f64;
    let mean = window.iter().sum::<f64>() / n;
    let e2: f64 = window.iter().map(|x| (x - mean) * (x - mean)).sum();
    (mean, e2.sqrt())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// A mirror built by absorbing deltas after every chunk equals one
    /// built from a single final delta (merge order does not matter),
    /// re-absorbing any delta is a no-op (idempotency — the crash
    /// re-ship guarantee), and absorbing a *stale* delta out of order
    /// changes nothing (commutativity with the frontier rule).
    #[test]
    fn absorb_is_chunk_invariant_idempotent_and_frontier_monotone(
        geom in geometry(),
        data in values(96),
        cuts in proptest::collection::vec(1usize..96, 0..6),
    ) {
        let (window, block) = geom;
        let mut pusher = BlockSketch::new(window, block);
        let mut incremental = BlockSketch::new(window, block);
        let mut stale_deltas = vec![pusher.delta()];
        let mut cuts = cuts;
        cuts.sort_unstable();
        for (i, &v) in data.iter().enumerate() {
            pusher.push(v);
            if cuts.contains(&(i + 1)) {
                incremental.absorb(&pusher.delta());
                stale_deltas.push(pusher.delta());
            }
        }
        let final_delta = pusher.delta();
        incremental.absorb(&final_delta);

        let mut oneshot = BlockSketch::new(window, block);
        oneshot.absorb(&final_delta);
        prop_assert_eq!(&incremental, &oneshot, "chunked vs one-shot absorb diverged");

        // Idempotency: the same delta again is a no-op.
        let before = incremental.clone();
        incremental.absorb(&final_delta);
        prop_assert_eq!(&incremental, &before, "re-absorbing the final delta changed state");

        // Out-of-order absorbs of anything already covered are no-ops.
        for stale in &stale_deltas {
            incremental.absorb(stale);
            prop_assert_eq!(&incremental, &before, "stale delta changed state");
        }

        prop_assert_eq!(incremental.end_time(), pusher.end_time());
        prop_assert_eq!(incremental.is_complete(), pusher.is_complete());
    }

    /// The sealed sketch always summarizes exactly the last `window`
    /// values ending at `end_time()` — expiry matches an exact buffer.
    #[test]
    fn sliding_window_expiry_matches_exact_buffer(
        geom in geometry(),
        data in values(200),
    ) {
        let (window, block) = geom;
        let mut sketch = BlockSketch::new(window, block);
        for (i, &v) in data.iter().enumerate() {
            sketch.push(v);
            let (Some(e), true) = (sketch.end_time(), sketch.is_complete()) else { continue };
            let e = e as usize;
            prop_assert!(e <= i, "sealed frontier ran ahead of the data");
            let exact = &data[e + 1 - window..=e];
            let (mean, norm) = exact_moments(exact);
            if let Some((s_mean, s_norm)) = sketch.moments() {
                // One-pass block sums vs two-pass exact: tolerance
                // scales with the magnitudes involved.
                let scale = 1.0 + mean.abs() + norm;
                prop_assert!((s_mean - mean).abs() <= 1e-9 * scale,
                    "mean diverged at t={}: sketch {} vs exact {}", e, s_mean, mean);
                prop_assert!((s_norm - norm).abs() <= 1e-7 * scale,
                    "norm diverged at t={}: sketch {} vs exact {}", e, s_norm, norm);
            }
        }
    }

    /// The projection bound: for any two aligned complete sketches, the
    /// reported lower bound never exceeds the true z-normed distance of
    /// the raw windows. This is the zero-false-dismissal theorem the
    /// collector prunes with.
    #[test]
    fn lower_bound_never_exceeds_true_distance(
        geom in geometry(),
        a in values(64),
        b in values(64),
    ) {
        let (window, block) = geom;
        // Push a whole number of blocks so both sketches are sealed at
        // the same instant.
        let n = (64 / block) * block;
        let mut sa = BlockSketch::new(window, block);
        let mut sb = BlockSketch::new(window, block);
        for i in 0..n {
            sa.push(a[i]);
            sb.push(b[i]);
        }
        if n < window {
            prop_assert_eq!(sa.distance_lower_bound(&sb), None, "incomplete sketch must not bound");
            return Ok(());
        }
        let Some(lb) = sa.distance_lower_bound(&sb) else { return Ok(()) };
        let wa = &a[n - window..n];
        let wb = &b[n - window..n];
        let (za, zb) = (normalize::z_norm(wa), normalize::z_norm(wb));
        let (Some(za), Some(zb)) = (za, zb) else {
            // The sketch found moments the exact path rejects as
            // degenerate — cannot happen for non-constant data, and the
            // strategy draws continuous values.
            return Err(TestCaseError::fail("sketch bounded a degenerate window"));
        };
        let true_d = normalize::l2_distance(&za, &zb);
        prop_assert!(
            lb <= true_d + 1e-7,
            "lower bound {} exceeds true distance {} (window {}, block {})",
            lb, true_d, window, block
        );
        // Full resolution (block = 1) loses nothing: the bound is the
        // distance itself.
        if block == 1 {
            prop_assert!((lb - true_d).abs() <= 1e-7,
                "b=1 bound {} should equal true distance {}", lb, true_d);
        }
    }
}
