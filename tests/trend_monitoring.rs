//! End-to-end continuous trend monitoring: registered patterns, multiple
//! streams, agreement with one-time queries.

use stardust::core::config::{Config, UpdatePolicy};
use stardust::core::engine::Stardust;
use stardust::core::query::pattern::{self, PatternQuery};
use stardust::core::query::trend::TrendMonitor;
use stardust::datagen::host_load_fleet;

fn monitor_config() -> Config {
    let mut cfg = Config::batch(16, 4, 4, 10.0).with_history(256);
    cfg.update = UpdatePolicy::Online;
    cfg.box_capacity = 8;
    cfg
}

/// Feeding a stream into both a TrendMonitor (standing query) and an
/// engine (one-time query at every step) must flag exactly the same
/// (time, pattern) matches.
#[test]
fn standing_query_equals_repeated_one_time_queries() {
    let fleet = host_load_fleet(31, 1, 700);
    let stream = &fleet[0];
    let pattern: Vec<f64> = stream[300..348].to_vec(); // 48 = 16 + 32
    let radius = 0.04;

    let mut trend = TrendMonitor::new(monitor_config(), 1);
    let id = trend.register(pattern.clone(), radius).expect("valid pattern");
    let mut engine = Stardust::new(monitor_config(), 1);

    let mut standing: Vec<u64> = Vec::new();
    let mut repeated: Vec<u64> = Vec::new();
    let q = PatternQuery { sequence: pattern, radius };
    for (i, &x) in stream.iter().enumerate() {
        for m in trend.append(0, x) {
            assert_eq!(m.pattern, id);
            standing.push(m.time);
        }
        engine.append(0, x);
        // One-time query restricted to matches ending exactly now.
        if i + 1 >= 48 {
            let ans = pattern::query_online(&engine, &q).expect("valid");
            repeated
                .extend(ans.matches.iter().filter(|m| m.end_time == i as u64).map(|m| m.end_time));
        }
    }
    assert_eq!(standing, repeated, "standing and one-time answers diverge");
    assert!(standing.contains(&347), "the planted occurrence must fire");
}

/// Patterns are matched per stream: a pattern planted in one stream does
/// not fire on the others.
#[test]
fn per_stream_attribution() {
    let fleet = host_load_fleet(77, 3, 600);
    let mut trend = TrendMonitor::new(monitor_config(), 3);
    let pattern: Vec<f64> = fleet[1][400..448].to_vec();
    let id = trend.register(pattern, 0.01).expect("valid");
    let mut hits = Vec::new();
    for i in 0..600 {
        for (s, stream) in fleet.iter().enumerate() {
            hits.extend(trend.append(s as u32, stream[i]));
        }
    }
    let exact: Vec<_> = hits.iter().filter(|m| m.time == 447 && m.pattern == id).collect();
    assert!(exact.iter().any(|m| m.stream == 1), "planted stream must fire");
    assert!(
        exact.iter().all(|m| m.stream == 1),
        "tight radius must not fire on other streams: {exact:?}"
    );
}

/// Stats precision stays within [0, 1] and candidates dominate matches
/// under a mixed pattern database.
#[test]
fn stats_accounting() {
    let fleet = host_load_fleet(5, 2, 500);
    let mut trend = TrendMonitor::new(monitor_config(), 2);
    for k in 0..6 {
        let start = 100 + k * 40;
        let pat: Vec<f64> = fleet[k % 2][start..start + 32].to_vec();
        trend.register(pat, 0.03).expect("valid");
    }
    for i in 0..500 {
        for (s, stream) in fleet.iter().enumerate() {
            trend.append(s as u32, stream[i]);
        }
    }
    let st = trend.stats();
    assert!(st.matches <= st.candidates);
    assert!(st.matches > 0, "planted patterns must match");
    assert!((0.0..=1.0).contains(&st.precision()));
}
