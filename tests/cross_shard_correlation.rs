//! Cross-shard correlation vs linear-scan ground truth.
//!
//! The tentpole invariant of the cross-shard correlation path: for any
//! shard count, [`ShardedRuntime::correlated_pairs`] is **set-identical**
//! to a single-threaded linear scan over every pair of streams at the
//! global instant `t* = min` over all correlation clocks. Sketch pruning
//! must be invisible in the result — it may only reduce how many pairs
//! reach exact verification (zero false dismissals; false positives are
//! impossible because every surviving candidate is verified exactly).

use stardust::core::stream::StreamId;
use stardust::runtime::{Batch, CorrelationSpec, MonitorSpec, RuntimeConfig, ShardedRuntime};

const BASE_WINDOW: usize = 8;
const LEVELS: usize = 3;
/// Correlation window `W * 2^(levels-1)`.
const WINDOW: usize = BASE_WINDOW << (LEVELS - 1);
const N_STREAMS: usize = 6;
/// Multiple of the sketch block so the final sketches align with `t*`
/// and the prune path actually fires (correctness holds regardless).
const N_VALUES: usize = 160;
const RADIUS: f64 = 0.5;

fn spec(r_max: f64) -> MonitorSpec {
    MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_correlations(CorrelationSpec { coeffs: 4, radius: RADIUS })
}

/// Single-threaded ground truth: one monitor over all streams, linear
/// scan at the slowest stream's clock.
fn reference_pairs(spec: &MonitorSpec, streams: &[Vec<f64>]) -> Vec<(StreamId, StreamId, f64)> {
    let mut monitor = spec.build(streams.len()).unwrap().unwrap();
    for t in 0..N_VALUES {
        for (s, stream) in streams.iter().enumerate() {
            monitor.append(s as StreamId, stream[t]);
        }
    }
    let corr = monitor.correlation_monitor().unwrap();
    let t = (0..streams.len() as StreamId)
        .map(|s| corr.summary(s).now())
        .min()
        .flatten()
        .expect("every stream has a full window");
    corr.linear_scan_pairs(t)
}

/// The same workload through a sharded runtime, queried under
/// quiescence (everything submitted before the query).
fn sharded_pairs(
    spec: &MonitorSpec,
    streams: &[Vec<f64>],
    shards: usize,
) -> (Vec<(StreamId, StreamId, f64)>, stardust::runtime::CrossCorrStats) {
    let rt = ShardedRuntime::launch(
        spec,
        streams.len(),
        RuntimeConfig { shards, queue_capacity: 32, ..RuntimeConfig::default() },
    )
    .unwrap();
    for t in 0..N_VALUES {
        let batch: Batch = streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
        rt.submit_blocking(&batch).unwrap();
    }
    let pairs = rt.correlated_pairs().unwrap();
    let stats = rt.cross_corr_stats();
    rt.shutdown();
    (pairs, stats)
}

/// Asserts set identity with explicit no-false-dismissal diagnostics.
fn assert_identical(
    shards: usize,
    got: &[(StreamId, StreamId, f64)],
    want: &[(StreamId, StreamId, f64)],
) {
    for pair in want {
        assert!(
            got.contains(pair),
            "FALSE DISMISSAL at {shards} shard(s): ground-truth pair {pair:?} missing from {got:?}"
        );
    }
    assert_eq!(got, want, "sharded result diverged from linear scan at {shards} shard(s)");
}

/// Eq. 5-shaped synthetic workload: each stream is a mean plus a
/// deviation proportional to that mean (the normalized-deviation shape
/// the paper's §5 analysis assumes), where the deviation is a slow
/// waveform plus seeded noise. Streams sharing a waveform phase are
/// correlated; phases are spread so other pairs are far outside the
/// radius.
fn eq5_streams() -> Vec<Vec<f64>> {
    // Streams 0 and 1 share phase 0; 2 and 3 share a second phase; 4
    // and 5 sit alone. With `g mod S` placement every planted pair is
    // cross-shard for S in {2, 3, 4}.
    let phases = [0.0, 0.0, 2.1, 2.1, 4.2, 5.3];
    let mut seed = 0x5EEDu64;
    let mut rng = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    phases
        .iter()
        .enumerate()
        .map(|(i, &phase)| {
            let mean = 40.0 + 5.0 * i as f64;
            (0..N_VALUES)
                .map(|t| {
                    let cycle = 2.0 * std::f64::consts::PI * t as f64 / WINDOW as f64;
                    let deviation = 0.2 * (cycle + phase).sin() + 0.004 * rng();
                    mean * (1.0 + deviation)
                })
                .collect()
        })
        .collect()
}

/// Datagen workload with a planted cross-shard twin (stream 1 mirrors
/// stream 0 up to 1e-9), so ground truth is non-empty at every S.
fn datagen_streams() -> Vec<Vec<f64>> {
    let mut streams = stardust::datagen::random_walk_streams(42, N_STREAMS, N_VALUES);
    streams[1] = streams[0].iter().map(|v| v + 1e-9).collect();
    streams
}

fn r_max_of(streams: &[Vec<f64>]) -> f64 {
    streams.iter().flatten().fold(1.0f64, |m, &x| m.max(x.abs()))
}

#[test]
fn eq5_workload_matches_linear_scan_at_every_shard_count() {
    let streams = eq5_streams();
    let spec = spec(r_max_of(&streams));
    let want = reference_pairs(&spec, &streams);
    assert!(
        want.iter().any(|&(a, b, _)| (a, b) == (0, 1))
            && want.iter().any(|&(a, b, _)| (a, b) == (2, 3)),
        "vacuous: planted pairs not in ground truth: {want:?}"
    );

    for shards in [1usize, 2, 3, 4] {
        let (got, stats) = sharded_pairs(&spec, &streams, shards);
        assert_identical(shards, &got, &want);
        if shards > 1 {
            let cross =
                want.iter().filter(|&&(a, b, _)| a as usize % shards != b as usize % shards);
            assert!(cross.count() >= 2, "planted pairs must span shards at S={shards}");
            // Every cross-shard pair was either pruned or verified.
            let total: u64 = (0..N_STREAMS as u32)
                .flat_map(|a| (a + 1..N_STREAMS as u32).map(move |b| (a, b)))
                .filter(|&(a, b)| a as usize % shards != b as usize % shards)
                .count() as u64;
            assert_eq!(stats.candidates + stats.pruned, total, "S={shards}: {stats:?}");
            assert!(stats.exchanges > 0, "sketches were never exchanged at S={shards}");
        }
    }
}

#[test]
fn datagen_workload_matches_linear_scan_at_every_shard_count() {
    let streams = datagen_streams();
    let spec = spec(r_max_of(&streams));
    let want = reference_pairs(&spec, &streams);
    assert!(!want.is_empty(), "vacuous: twin pair not detected in ground truth");

    for shards in [1usize, 2, 3, 4] {
        let (got, _) = sharded_pairs(&spec, &streams, shards);
        assert_identical(shards, &got, &want);
    }
}

/// Streams that advance unevenly: the global clock is the slowest
/// stream's, and stale sketches must never prune (they go to exact
/// verification instead). Ground truth at the same `t*` must agree —
/// here that means *empty*: history is exactly one window deep, so a
/// fast stream's window at the laggard's clock has already expired, and
/// the reference linear scan skips every pair involving it. The sharded
/// path must skip identically (via `None` verification windows), not
/// invent pairs from stale sketches.
#[test]
fn uneven_stream_progress_still_matches_ground_truth() {
    let mut streams = eq5_streams();
    // Stream 5 lags: it stops 7 values short (not block-aligned), so
    // t* = N_VALUES - 8 and no sketch ends at t*.
    let lag = 7;
    let short = N_VALUES - lag;
    streams[5].truncate(short);

    let spec = spec(r_max_of(&streams));
    // Reference at t* = short - 1.
    let want = {
        let mut monitor = spec.build(streams.len()).unwrap().unwrap();
        for t in 0..N_VALUES {
            for (s, stream) in streams.iter().enumerate() {
                if t < stream.len() {
                    monitor.append(s as StreamId, stream[t]);
                }
            }
        }
        let corr = monitor.correlation_monitor().unwrap();
        let t =
            (0..streams.len() as StreamId).map(|s| corr.summary(s).now()).min().flatten().unwrap();
        assert_eq!(t, short as u64 - 1, "stream 5 must set the global clock");
        corr.linear_scan_pairs(t)
    };
    assert!(
        want.is_empty(),
        "with one-window-deep history, lagged clocks must empty the reference: {want:?}"
    );

    for shards in [2usize, 3, 4] {
        let rt = ShardedRuntime::launch(
            &spec,
            streams.len(),
            RuntimeConfig { shards, queue_capacity: 32, ..RuntimeConfig::default() },
        )
        .unwrap();
        for t in 0..N_VALUES {
            let batch: Batch = streams
                .iter()
                .enumerate()
                .filter(|(_, x)| t < x.len())
                .map(|(s, x)| (s as StreamId, x[t]))
                .collect();
            rt.submit_blocking(&batch).unwrap();
        }
        let got = rt.correlated_pairs().unwrap();
        rt.shutdown();
        assert_identical(shards, &got, &want);
    }
}
