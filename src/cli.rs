//! Command-line front end: argument parsing, CSV ingestion, and the
//! subcommand implementations behind the `stardust` binary.
//!
//! Kept as a library module so the logic is unit-testable; the binary in
//! `src/bin/stardust.rs` is a thin wrapper.

use std::collections::BTreeMap;

use stardust_core::config::Config;
use stardust_core::engine::Stardust;
use stardust_core::query::aggregate::{AggregateMonitor, WindowSpec};
use stardust_core::query::correlation::CorrelationMonitor;
use stardust_core::query::pattern::{self, PatternQuery};
use stardust_core::query::trend::TrendMonitor;
use stardust_core::regression::recommend_windows;
use stardust_core::stats::train_threshold;
use stardust_core::transform::TransformKind;

/// Parsed command line: a subcommand, `--flag value` pairs, and positional
/// arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses `args` (without the program name). The first token is the
    /// subcommand; `--name value` pairs become flags.
    pub fn parse(args: &[String]) -> Result<(String, Args), String> {
        let mut it = args.iter();
        let cmd = it.next().ok_or_else(usage)?.clone();
        let mut out = Args::default();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value =
                    it.next().ok_or_else(|| format!("flag --{name} needs a value"))?.clone();
                out.flags.insert(name.to_string(), value);
            } else {
                out.positional.push(tok.clone());
            }
        }
        Ok((cmd, out))
    }

    /// A string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// A parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("flag --{name}: cannot parse '{v}'")),
        }
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

/// The usage string.
pub fn usage() -> String {
    "\
stardust — monitor data streams in real time (Bulut & Singh, ICDE 2005)

USAGE: stardust <COMMAND> [FLAGS] [FILE]

Input is CSV with one column per stream (header-free; blank lines and
'#' comments skipped); reads stdin when no file is given.

COMMANDS:
  burst       monitor moving sums over a ladder of windows
              --base W (20)  --windows k (8: monitors W,2W,..,kW)
              --lambda L (6.0: thresholds μ+Lσ)  --train N (1000)
              --capacity c (5)
  volatility  same as burst but for MAX−MIN spread
  recommend   rank candidate window sizes by anomaly separability
              --candidates 20,40,80,... (required)  --agg sum|spread
  pattern     search all streams for a query subsequence
              --query FILE (required, single column)  --radius r (0.05)
              --base W (16)  --levels L (5)
  correlate   report correlated stream pairs continuously
              --base W (16)  --levels L (5: window W·2^(L−1))
              --min-corr c (0.9)  --coeffs f (4)  --lag periods (1)
  trend       continuously match registered patterns against all streams
              --patterns FILE (required: one comma-separated pattern per
              line)  --radius r (0.05)  --base W (16)  --levels L (4)
  serve-bench replay a workload through the sharded multi-threaded
              runtime and report ingest throughput, query latency, and
              per-shard stats; generates random-walk streams when no
              input is given
              --shards S (0: one per CPU)  --queue Q (64)  --batch rows (16)
              --streams M (64)  --values N (2048)  --seed (42)
              --base W (16)  --levels L (3)  --min-corr c (0.9)
              --lambda L (6.0)  --radius r (0.05)
              --classes agg,corr (of agg|corr|trend)
              --query-iters K (32: scatter-gather latency samples)
              --query-threads T (1: collector-side intra-query worker
              pool; 0 = one per CPU; results are bit-identical at
              every setting)
              --emit-bench FILE (write a schema-stable JSON report for
              CI regression gating, including WAL-append and
              disk-recovery micro-timings, a socket-level server load
              section, and a cross-shard correlation prune audit;
              see crates/bench/src/bin/bench_gate.rs)
              --server-clients C (32)  --server-values V (1024)
              (fleet size for the emitted server load section)
  serve       listen for ingest/query clients over TCP (SDNET001
              length+CRC framed protocol); clients authenticate with
              per-tenant tokens and get disjoint stream namespaces
              with stream-count and append-rate quotas; full shard
              queues answer typed Busy (admission control), not
              unbounded buffering
              --addr HOST:PORT (127.0.0.1:7171)  --shards S (0)
              --queue Q (64)  --tenants name:token:streams:rate,...
              (default: one tenant 'default' with --token TOK
              ('stardust-dev'), --streams M (16) streams, --rate R
              (0: unlimited) appends/s)  --dir PATH (persist to disk
              and recover on restart)  --max-seconds T (0: serve
              until killed)  --idle-seconds T (60)  --max-conns N
              (256)  --addr-file PATH (write the bound address, for
              scripts using --addr with port 0)
              --values N (2048)  --seed (42) and the serve-bench spec
              flags (the threshold-training workload when no CSV is
              given)
  metrics     run a workload through the instrumented runtime and dump
              the metrics registry (Prometheus text or JSON), including
              the observed vs Eq. 4-7 predicted false-alarm rate;
              generates random-walk streams when no input is given
              --format prom|json (prom)  --shards S (1)
              --streams M (16)  --values N (2048)  --seed (42)
              --base W (16)  --levels L (3)  --min-corr c (0.9)
              --lambda L (6.0)  --classes agg,corr (query classes)
  chaos       crash-recovery drill: kill every shard worker once
              mid-ingest (seeded, reproducible) and audit that the
              recovered event set is bit-identical to an unfaulted run;
              generates random-walk streams when no input is given
              --shards S (2)  --queue Q (32)  --batch rows (16)
              --snapshot-every A (64: appends between shard snapshots)
              --streams M (32)  --values N (2048)  --seed (42)
              --base W (16)  --levels L (3)  --min-corr c (0.9)
              --classes agg,corr (which query classes to enable)
  chaos-disk  disk-fault drill: run the persisted runtime through every
              disk-fault kind (torn WAL write, failed fsync, bit-flipped
              snapshot, truncated WAL), kill the process mid-ingest,
              reopen the directory, re-submit past the durable
              watermark, and audit the recovered event set against an
              unfaulted run; generates random-walk streams when no
              input is given
              --dir PATH (temp dir)  --shards S (2)  --queue Q (32)
              --batch rows (16)  --snapshot-every A (64)
              --sync-every E (8: WAL fsync cadence)
              --torn-at B (600: WAL byte offset of the torn write)
              --streams M (16)  --values N (2048)  --seed (42)
              --base W (16)  --levels L (3)  --min-corr c (0.9)
              --classes agg,corr (of agg|corr|trend)
  rebalance   elastic rebalancing drill: split a hot shard onto a spare
              and merge it back under live ingest, under deterministic
              worker kills at every migration protocol step, and across
              a whole-process crash mid-migration recovered from disk;
              every phase audited bit-identical to a never-resized run;
              generates random-walk streams when no input is given
              --shards S (2)  --groups G (2*S)  --queue Q (32)
              --batch rows (16)  --snapshot-every A (64)
              --dir PATH (temp dir)  --streams M (8)  --values N (2048)
              --seed (42)  --base W (16)  --levels L (3)
              --min-corr c (0.9)  --classes agg,corr (of agg|corr|trend)

EXAMPLE:
  stardust burst --base 20 --windows 8 --lambda 8 traffic.csv
  stardust serve-bench --shards 4 --streams 128 --values 4096
  stardust serve-bench --emit-bench BENCH_3.json
  stardust serve --addr 127.0.0.1:7171 --tenants a:tok-a:8:0,b:tok-b:8:512
  stardust metrics --format prom --streams 8 --values 1024
  stardust chaos --shards 4 --snapshot-every 128 --seed 7
  stardust chaos-disk --shards 2 --streams 8 --values 1024
  stardust rebalance --shards 2 --groups 4 --streams 8 --values 1024
"
    .to_string()
}

/// Parses a comma-separated list of positive integers.
pub fn parse_usize_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().map_err(|_| format!("bad integer '{p}'")))
        .collect()
}

/// Reads header-free CSV columns; `#`-prefixed and blank lines skipped.
/// All rows must have the same arity.
pub fn read_columns(input: &str) -> Result<Vec<Vec<f64>>, String> {
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let values: Result<Vec<f64>, String> = line
            .split(',')
            .map(|c| {
                c.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("line {}: bad number '{c}'", lineno + 1))
            })
            .collect();
        let values = values?;
        if columns.is_empty() {
            columns = values.iter().map(|&v| vec![v]).collect();
        } else {
            if values.len() != columns.len() {
                return Err(format!(
                    "line {}: expected {} columns, found {}",
                    lineno + 1,
                    columns.len(),
                    values.len()
                ));
            }
            for (col, v) in columns.iter_mut().zip(values) {
                col.push(v);
            }
        }
    }
    if columns.is_empty() {
        return Err("no data rows in input".to_string());
    }
    Ok(columns)
}

/// Runs a subcommand over pre-read input; returns the report text.
pub fn run(cmd: &str, args: &Args, input: &str) -> Result<String, String> {
    match cmd {
        "burst" => run_aggregate(args, input, TransformKind::Sum),
        "volatility" => run_aggregate(args, input, TransformKind::Spread),
        "recommend" => run_recommend(args, input),
        "pattern" => run_pattern(args, input),
        "correlate" => run_correlate(args, input),
        "trend" => run_trend(args, input),
        "serve-bench" => run_serve_bench(args, input),
        "serve" => run_serve(args, input),
        "metrics" => run_metrics(args, input),
        "chaos" => run_chaos(args, input),
        "chaos-disk" => run_chaos_disk(args, input),
        "rebalance" => run_rebalance(args, input),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

fn single_column(input: &str) -> Result<Vec<f64>, String> {
    let mut cols = read_columns(input)?;
    if cols.len() != 1 {
        return Err(format!("expected a single-column stream, found {} columns", cols.len()));
    }
    Ok(cols.pop().expect("one column"))
}

fn run_aggregate(args: &Args, input: &str, kind: TransformKind) -> Result<String, String> {
    let data = single_column(input)?;
    let base: usize = args.get_or("base", 20)?;
    let k: usize = args.get_or("windows", 8)?;
    let lambda: f64 = args.get_or("lambda", 6.0)?;
    let train_len: usize = args.get_or("train", 1000.min(data.len() / 4))?;
    let capacity: usize = args.get_or("capacity", 5)?;
    if base == 0 || k == 0 {
        return Err("--base and --windows must be positive".into());
    }
    if data.len() <= train_len + base * k {
        return Err(format!(
            "input too short: {} values for training {} + largest window {}",
            data.len(),
            train_len,
            base * k
        ));
    }
    let (train, live) = data.split_at(train_len);
    let mut specs = Vec::new();
    for i in 1..=k {
        let w = base * i;
        let threshold = train_threshold(train, w, lambda, |win| {
            kind.scalar_aggregate(win).expect("scalar kind")
        })
        .ok_or_else(|| format!("training prefix shorter than window {w}"))?;
        specs.push(WindowSpec { window: w, threshold });
    }
    let mut levels = 1;
    while base << (levels - 1) < base * k {
        levels += 1;
    }
    let cfg = Config::online(kind, base, levels, capacity)
        .with_history((base * k).max(base << (levels - 1)));
    let mut monitor = AggregateMonitor::new(cfg, &specs);
    let mut out = String::new();
    out.push_str("time,window,aggregate,threshold\n");
    for (i, &x) in live.iter().enumerate() {
        for alarm in monitor.push(x) {
            if alarm.is_true_alarm {
                let tau = specs
                    .iter()
                    .find(|s| s.window == alarm.window)
                    .expect("monitored window")
                    .threshold;
                out.push_str(&format!(
                    "{},{},{:.3},{:.3}\n",
                    i + train_len,
                    alarm.window,
                    alarm.true_value,
                    tau
                ));
            }
        }
    }
    let st = monitor.stats();
    out.push_str(&format!(
        "# {} checks, {} true alarms, precision {:.3}\n",
        st.candidates,
        st.true_alarms,
        st.precision()
    ));
    Ok(out)
}

fn run_recommend(args: &Args, input: &str) -> Result<String, String> {
    let data = single_column(input)?;
    let candidates =
        parse_usize_list(args.get("candidates").ok_or("recommend needs --candidates w1,w2,...")?)?;
    let kind = match args.get("agg").unwrap_or("sum") {
        "sum" => TransformKind::Sum,
        "spread" => TransformKind::Spread,
        other => return Err(format!("unknown aggregate '{other}' (sum|spread)")),
    };
    let ranked = recommend_windows(&data, &candidates, kind);
    if ranked.is_empty() {
        return Err("no usable candidate windows (too long or degenerate)".into());
    }
    let mut out = String::from("window,separability\n");
    for w in ranked {
        out.push_str(&format!("{},{:.3}\n", w.window, w.score));
    }
    Ok(out)
}

fn run_pattern(args: &Args, input: &str) -> Result<String, String> {
    let streams = read_columns(input)?;
    let query_path = args.get("query").ok_or("pattern needs --query FILE")?;
    let query_text = std::fs::read_to_string(query_path)
        .map_err(|e| format!("cannot read query file '{query_path}': {e}"))?;
    let query = single_column(&query_text)?;
    let radius: f64 = args.get_or("radius", 0.05)?;
    let base: usize = args.get_or("base", 16)?;
    let levels: usize = args.get_or("levels", 5)?;
    let n = streams[0].len();
    let r_max = streams.iter().flatten().chain(query.iter()).fold(1.0f64, |a, &b| a.max(b.abs()));
    let cfg =
        Config::batch(base, levels, 4.min(base), r_max).with_history(n.max(base << (levels - 1)));
    let mut engine = Stardust::new(cfg, streams.len());
    for i in 0..n {
        for (s, col) in streams.iter().enumerate() {
            engine.append(s as u32, col[i]);
        }
    }
    let q = PatternQuery { sequence: query, radius };
    let ans = pattern::query_batch(&engine, &q).map_err(|e| e.to_string())?;
    let mut out = String::from("stream,end_row,distance\n");
    let precision = ans.precision();
    let n_candidates = ans.candidates.len();
    let mut matches = ans.matches;
    matches.sort_by_key(|a| (a.stream, a.end_time));
    for m in &matches {
        out.push_str(&format!("{},{},{:.5}\n", m.stream, m.end_time, m.distance));
    }
    out.push_str(&format!(
        "# {} candidates, {} matches, precision {:.3}\n",
        n_candidates,
        matches.len(),
        precision
    ));
    Ok(out)
}

fn run_correlate(args: &Args, input: &str) -> Result<String, String> {
    let streams = read_columns(input)?;
    if streams.len() < 2 {
        return Err("correlate needs at least two stream columns".into());
    }
    let base: usize = args.get_or("base", 16)?;
    let levels: usize = args.get_or("levels", 5)?;
    let min_corr: f64 = args.get_or("min-corr", 0.9)?;
    let f: usize = args.get_or("coeffs", 4)?;
    let lag: usize = args.get_or("lag", 1)?;
    if !(-1.0..=1.0).contains(&min_corr) {
        return Err("--min-corr must be in [-1, 1]".into());
    }
    let radius = stardust_core::normalize::correlation_to_distance(min_corr);
    let mut monitor = CorrelationMonitor::new(base, levels, f, radius, streams.len());
    if lag > 1 {
        monitor = monitor.with_lag_periods(lag);
    }
    let n = streams[0].len();
    let mut out = String::from("row,stream_a,stream_b,lag,correlation\n");
    for i in 0..n {
        for (s, col) in streams.iter().enumerate() {
            for p in monitor.append(s as u32, col[i]) {
                if let Some(corr) = p.correlation {
                    if corr >= min_corr {
                        out.push_str(&format!(
                            "{},{},{},{},{:.4}\n",
                            i,
                            p.a,
                            p.b,
                            p.time - p.time_other,
                            corr
                        ));
                    }
                }
            }
        }
    }
    let st = monitor.stats();
    out.push_str(&format!(
        "# {} reported, {} confirmed, precision {:.3}\n",
        st.reported,
        st.true_pairs,
        st.precision()
    ));
    Ok(out)
}

/// Workload for the runtime subcommands: CSV columns when given, the
/// paper's random-walk model otherwise.
fn workload_from_args(
    args: &Args,
    input: &str,
    default_streams: usize,
) -> Result<Vec<Vec<f64>>, String> {
    if input.trim().is_empty() {
        let m: usize = args.get_or("streams", default_streams)?;
        let n: usize = args.get_or("values", 2048)?;
        let seed: u64 = args.get_or("seed", 42)?;
        if m == 0 || n == 0 {
            return Err("--streams and --values must be positive".into());
        }
        Ok(stardust_datagen::random_walk_streams(seed, m, n))
    } else {
        read_columns(input)
    }
}

/// The aggregate class of the runtime subcommands monitors one window
/// of `AGG_WINDOW_FACTOR·W` with box capacity [`AGG_BOX_CAPACITY`];
/// `metrics` feeds the same constants into the Eq. 7 monitoring-ratio
/// model, so keep them in one place.
const AGG_WINDOW_FACTOR: usize = 2;
/// Box capacity `c` of the runtime subcommands' aggregate class.
const AGG_BOX_CAPACITY: usize = 4;

/// Builds a runtime `MonitorSpec` from the shared
/// `--base/--levels/--min-corr/--lambda/--classes` flags over `streams`
/// (used by `serve-bench`, `metrics`, and `chaos`).
fn monitor_spec_from_args(
    args: &Args,
    streams: &[Vec<f64>],
) -> Result<stardust_runtime::MonitorSpec, String> {
    use stardust_runtime::{AggregateSpec, CorrelationSpec, MonitorSpec, TrendPattern, TrendSpec};

    let base: usize = args.get_or("base", 16)?;
    let levels: usize = args.get_or("levels", 3)?;
    let min_corr: f64 = args.get_or("min-corr", 0.9)?;
    let lambda: f64 = args.get_or("lambda", 6.0)?;
    let radius: f64 = args.get_or("radius", 0.05)?;
    if base == 0 || !base.is_power_of_two() || levels == 0 {
        return Err("--base must be a positive power of two and --levels positive".into());
    }
    if !(-1.0..=1.0).contains(&min_corr) {
        return Err("--min-corr must be in [-1, 1]".into());
    }
    let n = streams[0].len();
    let r_max = streams.iter().flatten().fold(1.0f64, |a, &b| a.max(b.abs()));

    let mut spec = MonitorSpec::new(base, levels, r_max);
    for class in args.get("classes").unwrap_or("agg,corr").split(',') {
        match class.trim() {
            "agg" => {
                // Thresholds trained on each stream's prefix, like `burst`.
                let window = AGG_WINDOW_FACTOR * base;
                let train = (n / 4).max(window + 1).min(n);
                let threshold = train_threshold(&streams[0][..train], window, lambda, |w| {
                    w.iter().sum::<f64>()
                })
                .ok_or("input too short to train an aggregate threshold")?;
                spec = spec.with_aggregates(AggregateSpec {
                    transform: TransformKind::Sum,
                    windows: vec![WindowSpec { window, threshold }],
                    box_capacity: AGG_BOX_CAPACITY,
                });
            }
            "corr" => {
                let corr_radius = stardust_core::normalize::correlation_to_distance(min_corr);
                spec = spec.with_correlations(CorrelationSpec { coeffs: 4, radius: corr_radius });
            }
            "trend" => {
                // The registered pattern is a window cut from the first
                // stream, like the `trend` subcommand run against its
                // own input — guaranteed to have at least one match.
                let window = AGG_WINDOW_FACTOR * base;
                if n < 8 + window {
                    return Err(format!(
                        "input too short to cut a trend pattern ({n} values, need {})",
                        8 + window
                    ));
                }
                spec = spec.with_trends(TrendSpec {
                    coeffs: 4,
                    box_capacity: AGG_BOX_CAPACITY,
                    patterns: vec![TrendPattern {
                        sequence: streams[0][8..8 + window].to_vec(),
                        radius,
                    }],
                });
            }
            other => return Err(format!("unknown class '{other}' (agg|corr|trend)")),
        }
    }
    Ok(spec)
}

/// Formats an `f64` as a JSON number (non-finite values become 0, which
/// JSON cannot represent).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Median wall time of `reps` runs of `f`, in nanoseconds (std-only
/// micro-measurement for the machine-readable bench report; criterion's
/// stdout is not machine-parseable).
fn micro_median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = std::time::Instant::now();
        f();
        samples.push(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    samples.sort_unstable();
    samples[reps / 2]
}

/// Index and rebuild micro-benchmarks for the `stardust-bench/v1` report:
/// total ns to insert `n_items` random 8-d rects one at a time, ns for 100
/// range queries, and the tree-rebuild cost via STR bulk load vs
/// incremental replay (the crash-recovery comparison the CI gate watches).
fn index_micro_bench(n_items: usize) -> (u64, u64, u64, u64) {
    use stardust_index::{bulk_load, Params, RStarTree, Rect};

    const DIMS: usize = 8;
    const REPS: usize = 5;
    // splitmix64, matching the criterion index bench's data shape.
    let mut state = 99u64;
    let mut rng = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    let items: Vec<(Rect, u64)> = (0..n_items)
        .map(|i| {
            let lo: Vec<f64> = (0..DIMS).map(|_| rng() * 100.0).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng() * 2.0).collect();
            (Rect::new(lo, hi), i as u64)
        })
        .collect();
    let queries: Vec<Rect> = (0..100)
        .map(|_| {
            let lo: Vec<f64> = (0..DIMS).map(|_| rng() * 90.0).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + 10.0).collect();
            Rect::new(lo, hi)
        })
        .collect();

    let insert_ns = micro_median_ns(REPS, || {
        let mut tree = RStarTree::with_params(DIMS, Params::default());
        for (r, v) in &items {
            tree.insert(r.clone(), *v);
        }
        std::hint::black_box(tree.len());
    });
    let mut tree = RStarTree::with_params(DIMS, Params::default());
    for (r, v) in &items {
        tree.insert(r.clone(), *v);
    }
    let query_ns = micro_median_ns(REPS, || {
        let mut hits = 0usize;
        for q in &queries {
            tree.search_intersecting(q, |_, _| hits += 1);
        }
        std::hint::black_box(hits);
    });
    let rebuild_bulk_ns = micro_median_ns(REPS, || {
        let t = bulk_load(DIMS, Params::default(), items.clone());
        std::hint::black_box(t.len());
    });
    let rebuild_replay_ns = micro_median_ns(REPS, || {
        let mut t = RStarTree::with_params(DIMS, Params::default());
        for (r, v) in &items {
            t.insert(r.clone(), *v);
        }
        std::hint::black_box(t.len());
    });
    (insert_ns, query_ns, rebuild_bulk_ns, rebuild_replay_ns)
}

/// Persistence micro-timings for the `stardust-bench/v1` report: the
/// per-append cost of ingesting the workload through a durably
/// persisted runtime (`SyncPolicy::EveryN(64)`), and the wall time to
/// reopen the directory after a `crash()` — WAL scan, checksum
/// validation, and replay included. Returns
/// `(wal_append_ns, recovery_ns, recovered_appends)`.
fn persistence_micro_bench(
    spec: &stardust_runtime::MonitorSpec,
    streams: &[Vec<f64>],
    shards: usize,
    queue: usize,
    batch_rows: usize,
) -> Result<(u64, u64, u64), String> {
    use stardust_runtime::{Batch, PersistConfig, RuntimeConfig, ShardedRuntime, SyncPolicy};

    let m = streams.len();
    let n = streams[0].len();
    let dir = std::env::temp_dir().join(format!("stardust-bench-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || RuntimeConfig { shards, queue_capacity: queue, ..RuntimeConfig::default() };
    let persist = || PersistConfig::new(&dir).sync(SyncPolicy::EveryN(64));

    let (rt, _) = ShardedRuntime::open(spec, m, config(), persist()).map_err(|e| e.to_string())?;
    let started = std::time::Instant::now();
    let mut row = 0;
    while row < n {
        let rows = batch_rows.min(n - row);
        let batch: Batch = (row..row + rows)
            .flat_map(|t| streams.iter().enumerate().map(move |(s, x)| (s as u32, x[t])))
            .collect();
        rt.submit_blocking(&batch).map_err(|e| e.to_string())?;
        row += rows;
    }
    // Scatter-gather barrier: every batch above is journaled and
    // applied before the clock stops.
    rt.class_stats().map_err(|e| e.to_string())?;
    let total = (m * n) as u64;
    let wal_append_ns = (started.elapsed().as_nanos() / total.max(1) as u128) as u64;
    drop(rt.crash());

    let started = std::time::Instant::now();
    let (rt, report) =
        ShardedRuntime::open(spec, m, config(), persist()).map_err(|e| e.to_string())?;
    let recovery_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let recovered_appends = report.total_durable_appends();
    drop(rt.shutdown());
    let _ = std::fs::remove_dir_all(&dir);
    Ok((wal_append_ns, recovery_ns, recovered_appends))
}

/// Durable group-commit ingest: the serve-bench workload through a
/// persisted runtime under `SyncPolicy::Always`, where every commit
/// group pays exactly one fsync. Returns (values/s, batches-per-group
/// p50, coalesced WAL group writes) — the numbers the CI gate uses to
/// hold the group-commit win.
fn durable_ingest_bench(
    spec: &stardust_runtime::MonitorSpec,
    streams: &[Vec<f64>],
    shards: usize,
    queue: usize,
    batch_rows: usize,
) -> Result<(f64, u64, u64), String> {
    use stardust_runtime::{Batch, PersistConfig, RuntimeConfig, ShardedRuntime, SyncPolicy};
    use stardust_telemetry::Registry;

    let m = streams.len();
    let n = streams[0].len();
    let dir = std::env::temp_dir().join(format!("stardust-bench-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Registry::new();
    let config = RuntimeConfig {
        shards,
        queue_capacity: queue,
        telemetry: Some(registry.clone()),
        ..RuntimeConfig::default()
    };
    let persist = PersistConfig::new(&dir).sync(SyncPolicy::Always);

    let (rt, _) = ShardedRuntime::open(spec, m, config, persist).map_err(|e| e.to_string())?;
    let started = std::time::Instant::now();
    let mut row = 0;
    while row < n {
        let rows = batch_rows.min(n - row);
        let batch: Batch = (row..row + rows)
            .flat_map(|t| streams.iter().enumerate().map(move |(s, x)| (s as u32, x[t])))
            .collect();
        rt.submit_blocking(&batch).map_err(|e| e.to_string())?;
        row += rows;
    }
    // Scatter-gather barrier: every batch above is journaled, fsynced,
    // and applied before the clock stops.
    rt.class_stats().map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();
    drop(rt.shutdown());
    let _ = std::fs::remove_dir_all(&dir);

    let total = (m * n) as u64;
    let rate = total as f64 / elapsed.as_secs_f64();
    let group_p50 =
        registry.histogram("stardust_runtime_group_size", "").quantile(0.5).unwrap_or(0);
    let group_writes = registry.counter("stardust_persist_wal_group_writes_total", "").get();
    Ok((rate, group_p50, group_writes))
}

/// Cross-shard correlation audit for the report's `cross_corr` section.
struct CrossCorrBench {
    /// Correlated pairs in the final result.
    pairs: u64,
    /// Cross-shard pairs the collector considered (candidates + pruned).
    considered: u64,
    /// Pairs that survived the sketch prune into exact verification.
    candidates: u64,
    /// Pairs dismissed by the sketch distance lower bound.
    pruned: u64,
    /// Verified candidates that were genuinely within the radius.
    confirmed: u64,
    /// Sketch publications absorbed by the collector board.
    exchanges: u64,
    /// `confirmed / candidates` — how selective the prune filter is.
    prune_precision: f64,
    /// Fraction of ground-truth pairs the sharded path reported (the
    /// no-false-dismissal bound says this is exactly 1).
    prune_recall: f64,
    /// Ground-truth pairs missing from the sharded result.
    false_dismissals: u64,
    /// Median latency of the pulled cross-shard query over drained queues.
    query_p50_ns: u64,
}

/// Runs a phase-structured workload with planted correlated pairs at
/// four shards, audits the sketch-prune funnel against a single-monitor
/// linear scan, and times the pulled `correlated_pairs` query. A false
/// dismissal is a correctness bug, not a slow run, so it fails the
/// command rather than just skewing a number.
fn cross_corr_micro_bench(query_iters: usize) -> Result<CrossCorrBench, String> {
    use stardust_runtime::{Batch, CorrelationSpec, MonitorSpec, RuntimeConfig, ShardedRuntime};

    const BASE_WINDOW: usize = 8;
    const LEVELS: usize = 3;
    const WINDOW: usize = BASE_WINDOW << (LEVELS - 1);
    const M: usize = 8;
    const SHARDS: usize = 4;
    /// Block-aligned with the default sketch block so the final sketches
    /// end exactly at the query clock and the prune path is live.
    const N: usize = 160;
    const RADIUS: f64 = 0.5;

    // Sinusoids one period per correlation window: streams sharing a
    // phase correlate, the rest sit far outside the radius, and the
    // block averages resolve the waveform so the prune has teeth. Both
    // planted pairs are cross-shard under `g mod 4`.
    let phases = [0.0, 0.0, 2.1, 2.1, 0.9, 2.9, 4.2, 5.1];
    let mut state = 0xB0B5u64;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let streams: Vec<Vec<f64>> = phases
        .iter()
        .enumerate()
        .map(|(i, &phase)| {
            let mean = 30.0 + 4.0 * i as f64;
            (0..N)
                .map(|t| {
                    let cycle = 2.0 * std::f64::consts::PI * t as f64 / WINDOW as f64;
                    mean * (1.0 + 0.2 * (cycle + phase).sin() + 0.004 * rng())
                })
                .collect()
        })
        .collect();
    let r_max = streams.iter().flatten().fold(1.0f64, |m, &x| m.max(x.abs()));
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_correlations(CorrelationSpec { coeffs: 4, radius: RADIUS });

    // Ground truth: single monitor, linear scan over every pair.
    let want = {
        let mut monitor = spec.build(M).map_err(|e| e.to_string())?.ok_or("no correlation")?;
        for t in 0..N {
            for (s, stream) in streams.iter().enumerate() {
                monitor.append(s as u32, stream[t]);
            }
        }
        monitor.correlation_monitor().ok_or("no correlation")?.linear_scan_pairs(N as u64 - 1)
    };

    let rt = ShardedRuntime::launch(
        &spec,
        M,
        RuntimeConfig { shards: SHARDS, queue_capacity: 64, ..RuntimeConfig::default() },
    )
    .map_err(|e| e.to_string())?;
    for t in 0..N {
        let batch: Batch = streams.iter().enumerate().map(|(s, x)| (s as u32, x[t])).collect();
        rt.submit_blocking(&batch).map_err(|e| e.to_string())?;
    }
    let got = rt.correlated_pairs().map_err(|e| e.to_string())?;
    // Snapshot the funnel after exactly one query: the timing loop
    // below would otherwise multiply the counters.
    let stats = rt.cross_corr_stats();

    let hist = stardust_telemetry::Histogram::standalone(stardust_telemetry::duration_buckets_ns());
    for _ in 0..query_iters.max(1) {
        let span = hist.span();
        rt.correlated_pairs().map_err(|e| e.to_string())?;
        drop(span);
    }
    rt.shutdown();

    let false_dismissals = want.iter().filter(|p| !got.contains(p)).count() as u64;
    if false_dismissals > 0 {
        return Err(format!(
            "cross-corr audit FAILED: {false_dismissals} ground-truth pair(s) dismissed \
             ({want:?} expected, {got:?} reported)"
        ));
    }
    let prune_recall = if want.is_empty() {
        1.0
    } else {
        (want.len() as u64 - false_dismissals) as f64 / want.len() as f64
    };
    let prune_precision =
        if stats.candidates > 0 { stats.confirmed as f64 / stats.candidates as f64 } else { 1.0 };
    Ok(CrossCorrBench {
        pairs: got.len() as u64,
        considered: stats.candidates + stats.pruned,
        candidates: stats.candidates,
        pruned: stats.pruned,
        confirmed: stats.confirmed,
        exchanges: stats.exchanges,
        prune_precision,
        prune_recall,
        false_dismissals,
        query_p50_ns: hist.quantile(0.5).unwrap_or(0),
    })
}

/// Elastic-rebalancing recovery numbers for the report's `rebalance`
/// section.
struct RebalanceBench {
    /// Ingest rate with every group packed onto one hot worker.
    pre_rate: f64,
    /// Ingest rate after half the groups were split onto the spare.
    post_rate: f64,
    /// Hot-shard load relief: the hot worker's share of ingest before
    /// the split divided by its share after (2.0 when half the groups
    /// move off). The CI gate holds this at >= 1.2 — an online split
    /// must actually relieve the hot shard. Load shares come from the
    /// exact per-shard append counters, so the ratio is deterministic
    /// where wall-clock throughput on a shared CI core is not.
    recovery_ratio: f64,
    /// Group migrations the split performed.
    migrations: u64,
    /// Median end-to-end migration latency (freeze to promote).
    migration_ms_p50: u64,
}

/// One deliberately hot primary worker (plus an idle spare) ingests a
/// correlation-heavy workload; halfway through, half of its stream
/// groups are split onto the spare under live ingest and the clock
/// restarts. The interesting number is how much of the hot shard's
/// load the online split sheds without stopping the stream.
fn rebalance_micro_bench(batch_rows: usize) -> Result<RebalanceBench, String> {
    use stardust_runtime::{
        Batch, CorrelationSpec, MonitorSpec, RecoveryPolicy, RuntimeConfig, ShardedRuntime,
    };
    use stardust_telemetry::Registry;

    const M: usize = 16;
    const N: usize = 4096;

    let streams = stardust_datagen::random_walk_streams(0xE1A5, M, N);
    let r_max = streams.iter().flatten().fold(1.0f64, |acc, &x| acc.max(x.abs()));
    let spec = MonitorSpec::new(32, 5, r_max)
        .with_correlations(CorrelationSpec { coeffs: 31, radius: 0.25 });

    let registry = Registry::new();
    let rt = ShardedRuntime::launch(
        &spec,
        M,
        RuntimeConfig {
            shards: 1,
            groups: 4,
            spare_shards: 1,
            queue_capacity: 32,
            recovery: Some(RecoveryPolicy { snapshot_every: 64 }),
            telemetry: Some(registry.clone()),
            ..RuntimeConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;

    // Per-phase ingest rate plus the hot slot's appends over the phase.
    let phase = |lo: usize, hi: usize| -> Result<(f64, u64), String> {
        let before = rt.stats().shards[0].appends;
        let started = std::time::Instant::now();
        let mut row = lo;
        while row < hi {
            let rows = batch_rows.min(hi - row);
            let batch: Batch = (row..row + rows)
                .flat_map(|t| streams.iter().enumerate().map(move |(s, x)| (s as u32, x[t])))
                .collect();
            rt.submit_blocking(&batch).map_err(|e| e.to_string())?;
            row += rows;
        }
        // Scatter-gather barrier: every batch above is applied before
        // the clock stops (and any in-flight adoption has landed, so
        // the counter transfer is settled).
        rt.class_stats().map_err(|e| e.to_string())?;
        let rate = (M * (hi - lo)) as f64 / started.elapsed().as_secs_f64();
        Ok((rate, rt.stats().shards[0].appends - before))
    };

    let (pre_rate, pre_hot) = phase(0, N / 2)?;
    rt.split_shard(0, 1, &[1, 3]).map_err(|e| format!("bench split failed: {e}"))?;
    // Barrier between split and the post phase: the adoption's counter
    // transfer must not be misread as phase-2 hot-shard load.
    rt.class_stats().map_err(|e| e.to_string())?;
    let (post_rate, post_hot) = phase(N / 2, N)?;
    let stats = rt.stats();
    rt.shutdown();

    let phase_total = (M * N / 2) as f64;
    let pre_share = pre_hot as f64 / phase_total;
    let post_share = post_hot as f64 / phase_total;
    Ok(RebalanceBench {
        pre_rate,
        post_rate,
        recovery_ratio: if post_share > 0.0 { pre_share / post_share } else { 0.0 },
        migrations: stats.migrations,
        migration_ms_p50: registry
            .histogram("stardust_runtime_migration_ms", "")
            .quantile(0.5)
            .unwrap_or(0),
    })
}

fn run_serve_bench(args: &Args, input: &str) -> Result<String, String> {
    use stardust_runtime::{Batch, RuntimeConfig, ShardedRuntime};
    use stardust_telemetry::Registry;

    let shards: usize = args.get_or("shards", 0)?;
    let queue: usize = args.get_or("queue", 64)?;
    let batch_rows: usize = args.get_or("batch", 16)?;
    let query_iters: usize = args.get_or("query-iters", 32)?;
    let query_threads: usize = args.get_or("query-threads", 1)?;

    let streams = workload_from_args(args, input, 64)?;
    let m = streams.len();
    let n = streams[0].len();
    let spec = monitor_spec_from_args(args, &streams)?;

    let registry = Registry::new();
    let rt = ShardedRuntime::launch(
        &spec,
        m,
        RuntimeConfig {
            shards,
            queue_capacity: queue,
            intra_query_threads: query_threads,
            telemetry: Some(registry.clone()),
            ..RuntimeConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let n_shards = rt.n_shards();

    let started = std::time::Instant::now();
    let mut events = 0u64;
    let mut row = 0;
    while row < n {
        let rows = batch_rows.min(n - row);
        let batch: Batch = (row..row + rows)
            .flat_map(|t| streams.iter().enumerate().map(move |(s, x)| (s as u32, x[t])))
            .collect();
        rt.submit_blocking(&batch).map_err(|e| e.to_string())?;
        events += rt.drain_events().len() as u64;
        row += rows;
    }
    // Queries ride the shard queues, so this scatter-gather doubles as a
    // drain barrier: once it answers, every batch above is processed and
    // the ingest clock stops.
    rt.class_stats().map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();

    // Query-latency phase: repeated scatter-gather over drained queues.
    let query_hist =
        stardust_telemetry::Histogram::standalone(stardust_telemetry::duration_buckets_ns());
    for _ in 0..query_iters {
        let span = query_hist.span();
        rt.class_stats().map_err(|e| e.to_string())?;
        drop(span);
    }
    let query = query_hist.snapshot();

    let report = rt.shutdown();
    events += report.events.len() as u64;
    report.stats.export(&registry);

    let total = (m * n) as u64;
    let rate = total as f64 / elapsed.as_secs_f64();
    let mut out = String::new();
    out.push_str(&format!(
        "# {m} streams x {n} values, {n_shards} shard(s), queue {queue}, batch {batch_rows} row(s)\n"
    ));
    out.push_str(&format!(
        "ingested {total} values in {:.3}s: {:.0} values/s, {events} event(s)\n",
        elapsed.as_secs_f64(),
        rate,
    ));
    out.push_str(&format!(
        "query latency over {query_iters} scatter-gather round(s): p50 {}ns, p95 {}ns\n",
        query.p50.unwrap_or(0),
        query.p95.unwrap_or(0),
    ));
    out.push_str(&report.stats.render());

    if let Some(path) = args.get("emit-bench") {
        // Standalone index/rebuild micro-benchmarks: criterion output is
        // stdout-only, so the machine-readable report carries its own
        // timings for the CI gate's index and maintenance checks.
        let micro_items: usize = args.get_or("micro-items", 2000)?;
        let (insert_ns, query_ns, rebuild_bulk_ns, rebuild_replay_ns) =
            index_micro_bench(micro_items);
        let rebuild_speedup = if rebuild_bulk_ns > 0 {
            rebuild_replay_ns as f64 / rebuild_bulk_ns as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "index micro ({micro_items} items): insert {insert_ns}ns, 100 queries {query_ns}ns, \
             rebuild bulk {rebuild_bulk_ns}ns vs replay {rebuild_replay_ns}ns ({rebuild_speedup:.2}x)\n"
        ));
        let (wal_append_ns, recovery_ns, recovered_appends) =
            persistence_micro_bench(&spec, &streams, shards, queue, batch_rows)?;
        out.push_str(&format!(
            "persistence micro: WAL append {wal_append_ns}ns/append (EveryN(64)), \
             recovery of {recovered_appends} append(s) in {recovery_ns}ns\n"
        ));
        // Durable group-commit phase: the same workload under
        // SyncPolicy::Always, where the coalesced write + single fsync
        // per commit group is what makes the rate.
        let (durable_rate, group_size_p50, wal_group_writes) =
            durable_ingest_bench(&spec, &streams, shards, queue, batch_rows)?;
        out.push_str(&format!(
            "durable ingest (SyncPolicy::Always): {durable_rate:.0} values/s, \
             group p50 {group_size_p50} batch(es), {wal_group_writes} coalesced WAL write(s)\n"
        ));
        // Socket-level load: the same self-hosted fleet CI's serve job
        // drives, with the zero-loss/zero-duplication event audit. An
        // audit failure is a correctness bug, not a slow run, so it
        // fails the command rather than just skewing a number.
        let server_clients: usize = args.get_or("server-clients", 32)?;
        let server_values: usize = args.get_or("server-values", 1024)?;
        let load = stardust_bench::server_load::run_self_hosted(
            &stardust_bench::server_load::LoadConfig {
                clients: server_clients,
                values_per_client: server_values,
                shards,
                ..Default::default()
            },
        );
        if load.audit_ok != Some(true) {
            return Err("server load audit FAILED: socket ingest lost or duplicated events".into());
        }
        out.push_str(&format!(
            "server load: {} client(s) x {} value(s): {:.0} values/s, \
             append p50 {}ns p99 {}ns, {} busy repl(ies), audit ok ({} events)\n",
            load.clients,
            server_values,
            load.throughput_values_per_s,
            load.append_p50_ns,
            load.append_p99_ns,
            load.busy_replies,
            load.audit_events,
        ));
        // Cross-shard correlation audit: sketch-prune funnel vs a
        // single-monitor linear scan. A false dismissal fails the
        // command inside the helper.
        let cc = cross_corr_micro_bench(query_iters)?;
        out.push_str(&format!(
            "cross-corr: {} pair(s), {} cross-shard considered ({} pruned, {} verified, \
             {} confirmed), precision {:.3}, recall {:.3}, query p50 {}ns, {} exchange(s)\n",
            cc.pairs,
            cc.considered,
            cc.pruned,
            cc.candidates,
            cc.confirmed,
            cc.prune_precision,
            cc.prune_recall,
            cc.query_p50_ns,
            cc.exchanges,
        ));
        // Elastic-rebalancing recovery: an online split of a hot shard
        // must win back throughput under live ingest; the gate holds
        // the recovery ratio.
        let rb = rebalance_micro_bench(batch_rows)?;
        out.push_str(&format!(
            "rebalance: hot-shard load relief {:.2}x ({} migration(s), p50 {}ms), \
             pre-split {:.0} values/s, post-split {:.0} values/s\n",
            rb.recovery_ratio, rb.migrations, rb.migration_ms_p50, rb.pre_rate, rb.post_rate,
        ));
        let json = format!(
            concat!(
                "{{\"schema\":\"stardust-bench/v1\",",
                "\"config\":{{\"batch_rows\":{},\"queue\":{},\"shards\":{},",
                "\"streams\":{},\"values\":{}}},",
                "\"ingest\":{{\"durable_throughput_values_per_s\":{},",
                "\"elapsed_s\":{},\"events\":{},\"group_size_p50\":{},",
                "\"throughput_values_per_s\":{},\"values\":{},",
                "\"wal_group_writes\":{}}},",
                "\"query\":{{\"iterations\":{},\"p50_ns\":{},\"p95_ns\":{}}},",
                "\"index\":{{\"insert_ns\":{},\"items\":{},\"query_ns\":{}}},",
                "\"maintenance\":{{\"rebuild_bulk_ns\":{},\"rebuild_replay_ns\":{},",
                "\"rebuild_speedup\":{}}},",
                "\"persistence\":{{\"recovered_appends\":{},\"recovery_ns\":{},",
                "\"wal_append_ns\":{}}},",
                "\"server\":{{\"append_p50_ns\":{},\"append_p95_ns\":{},",
                "\"append_p99_ns\":{},\"audit_events\":{},\"busy_replies\":{},",
                "\"clients\":{},\"elapsed_s\":{},",
                "\"throughput_values_per_s\":{},\"values\":{}}},",
                "\"cross_corr\":{{\"candidates\":{},\"confirmed\":{},",
                "\"considered\":{},\"exchanges\":{},\"false_dismissals\":{},",
                "\"pairs\":{},\"prune_precision\":{},\"prune_recall\":{},",
                "\"pruned\":{},\"query_p50_ns\":{}}},",
                "\"rebalance\":{{\"migration_ms_p50\":{},\"migrations\":{},",
                "\"recovery_ratio\":{},\"throughput_post_split_values_per_s\":{},",
                "\"throughput_pre_split_values_per_s\":{}}},",
                "\"metrics\":{}}}\n"
            ),
            batch_rows,
            queue,
            n_shards,
            m,
            n,
            json_num(durable_rate),
            json_num(elapsed.as_secs_f64()),
            events,
            group_size_p50,
            json_num(rate),
            total,
            wal_group_writes,
            query_iters,
            query.p50.unwrap_or(0),
            query.p95.unwrap_or(0),
            insert_ns,
            micro_items,
            query_ns,
            rebuild_bulk_ns,
            rebuild_replay_ns,
            json_num(rebuild_speedup),
            recovered_appends,
            recovery_ns,
            wal_append_ns,
            load.append_p50_ns,
            load.append_p95_ns,
            load.append_p99_ns,
            load.audit_events,
            load.busy_replies,
            load.clients,
            json_num(load.elapsed_s),
            json_num(load.throughput_values_per_s),
            load.values,
            cc.candidates,
            cc.confirmed,
            cc.considered,
            cc.exchanges,
            cc.false_dismissals,
            cc.pairs,
            json_num(cc.prune_precision),
            json_num(cc.prune_recall),
            cc.pruned,
            cc.query_p50_ns,
            rb.migration_ms_p50,
            rb.migrations,
            json_num(rb.recovery_ratio),
            json_num(rb.post_rate),
            json_num(rb.pre_rate),
            registry.render_json(),
        );
        std::fs::write(path, &json)
            .map_err(|e| format!("cannot write bench report '{path}': {e}"))?;
        out.push_str(&format!("wrote bench report to {path}\n"));
    }
    Ok(out)
}

/// Parses `--tenants name:token:streams:rate,...` into tenant configs
/// (`rate` 0 means unlimited appends/s).
fn parse_tenants(s: &str) -> Result<Vec<stardust_server::TenantConfig>, String> {
    s.split(',')
        .map(|part| {
            let fields: Vec<&str> = part.trim().split(':').collect();
            let [name, token, streams, rate] = fields.as_slice() else {
                return Err(format!("bad tenant '{part}': expected name:token:streams:rate"));
            };
            Ok(stardust_server::TenantConfig {
                name: name.to_string(),
                token: token.to_string(),
                streams: streams
                    .parse()
                    .map_err(|_| format!("tenant '{name}': bad stream count '{streams}'"))?,
                append_rate: rate
                    .parse()
                    .map_err(|_| format!("tenant '{name}': bad append rate '{rate}'"))?,
            })
        })
        .collect()
}

/// The `stardust serve` subcommand: a long-running multi-client TCP
/// server over the sharded runtime. Thresholds are trained on the
/// given CSV (or a seeded random-walk workload), then the server
/// accepts tenant-authenticated clients until `--max-seconds` elapses
/// or the process is killed. Admission control maps full shard queues
/// to typed `Busy` replies; `--dir` makes ingest durable and recovers
/// it on restart.
fn run_serve(args: &Args, input: &str) -> Result<String, String> {
    use stardust_runtime::{PersistConfig, RuntimeConfig, ShardedRuntime};
    use stardust_server::{Server, ServerConfig, TenantConfig};
    use stardust_telemetry::Registry;

    let addr = args.get("addr").unwrap_or("127.0.0.1:7171");
    let shards: usize = args.get_or("shards", 0)?;
    let queue: usize = args.get_or("queue", 64)?;
    let max_seconds: f64 = args.get_or("max-seconds", 0.0)?;
    let idle_seconds: u64 = args.get_or("idle-seconds", 60)?;
    let max_conns: usize = args.get_or("max-conns", 256)?;
    let token = args.get("token").unwrap_or("stardust-dev").to_string();
    let rate: u64 = args.get_or("rate", 0)?;
    let tenants = args.get("tenants").map(parse_tenants).transpose()?;

    // Threshold-training workload: the spec the live server monitors is
    // calibrated on this data, exactly like `serve-bench`. With
    // `--tenants` and no explicit `--streams`, the tenant layout
    // defines the stream count.
    let streams = if input.trim().is_empty() {
        let m: usize = match (&tenants, args.get("streams")) {
            (Some(t), None) => t.iter().map(|t| t.streams as usize).sum(),
            _ => args.get_or("streams", 16)?,
        };
        let n: usize = args.get_or("values", 2048)?;
        let seed: u64 = args.get_or("seed", 42)?;
        if m == 0 || n == 0 {
            return Err("--streams and --values must be positive".into());
        }
        stardust_datagen::random_walk_streams(seed, m, n)
    } else {
        read_columns(input)?
    };
    let m = streams.len();
    let spec = monitor_spec_from_args(args, &streams)?;
    let tenants = tenants.unwrap_or_else(|| {
        vec![TenantConfig { name: "default".into(), token, streams: m as u32, append_rate: rate }]
    });
    let declared: usize = tenants.iter().map(|t| t.streams as usize).sum();
    if declared != m {
        return Err(format!(
            "tenant stream counts sum to {declared}, but the training workload \
             defines {m} stream(s)"
        ));
    }

    let registry = Registry::new();
    let config = RuntimeConfig {
        shards,
        queue_capacity: queue,
        telemetry: Some(registry.clone()),
        ..RuntimeConfig::default()
    };
    let (rt, recovered) = match args.get("dir") {
        Some(dir) => {
            let (rt, report) = ShardedRuntime::open(&spec, m, config, PersistConfig::new(dir))
                .map_err(|e| e.to_string())?;
            (rt, Some(report.total_durable_appends()))
        }
        None => (ShardedRuntime::launch(&spec, m, config).map_err(|e| e.to_string())?, None),
    };

    let server = Server::start(
        addr,
        rt,
        tenants.clone(),
        ServerConfig {
            max_connections: max_conns,
            idle_timeout: std::time::Duration::from_secs(idle_seconds.max(1)),
            ..ServerConfig::default()
        },
        registry,
    )
    .map_err(|e| format!("cannot serve on {addr}: {e}"))?;
    let bound = server.local_addr();

    // The listening line goes straight to stdout, flushed, so scripts
    // can scrape the bound port before the first client connects.
    println!("stardust serve listening on {bound} ({m} stream(s), {} tenant(s))", tenants.len());
    for t in &tenants {
        let rate = if t.append_rate == 0 {
            "unlimited rate".to_string()
        } else {
            format!("{} appends/s", t.append_rate)
        };
        println!("  tenant {}: {} stream(s), {rate}", t.name, t.streams);
    }
    if let Some(n) = recovered {
        println!("  recovered {n} durable append(s) from {}", args.get("dir").unwrap_or("?"));
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = args.get("addr-file") {
        std::fs::write(path, bound.to_string())
            .map_err(|e| format!("cannot write --addr-file '{path}': {e}"))?;
    }

    if max_seconds > 0.0 {
        std::thread::sleep(std::time::Duration::from_secs_f64(max_seconds));
    } else {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    let report = server.shutdown();
    Ok(format!(
        "drained: {} append(s) admitted, {} event(s) delivered\n",
        report.stats.total_appends(),
        report.events.len(),
    ))
}

fn run_metrics(args: &Args, input: &str) -> Result<String, String> {
    use stardust_core::query::aggregate::analysis;
    use stardust_runtime::{Batch, RuntimeConfig, ShardedRuntime};
    use stardust_telemetry::Registry;

    let format = args.get("format").unwrap_or("prom");
    if format != "prom" && format != "json" {
        return Err(format!("unknown format '{format}' (prom|json)"));
    }
    let shards: usize = args.get_or("shards", 1)?;
    let batch_rows: usize = args.get_or("batch", 16)?;
    let base: usize = args.get_or("base", 16)?;
    let lambda: f64 = args.get_or("lambda", 6.0)?;

    let streams = workload_from_args(args, input, 16)?;
    let m = streams.len();
    let n = streams[0].len();
    let spec = monitor_spec_from_args(args, &streams)?;

    let registry = Registry::new();
    let rt = ShardedRuntime::launch(
        &spec,
        m,
        RuntimeConfig { shards, telemetry: Some(registry.clone()), ..RuntimeConfig::default() },
    )
    .map_err(|e| e.to_string())?;

    let mut row = 0;
    while row < n {
        let rows = batch_rows.min(n - row);
        let batch: Batch = (row..row + rows)
            .flat_map(|t| streams.iter().enumerate().map(move |(s, x)| (s as u32, x[t])))
            .collect();
        rt.submit_blocking(&batch).map_err(|e| e.to_string())?;
        row += rows;
    }
    let class = rt.class_stats().map_err(|e| e.to_string())?;
    let report = rt.shutdown();
    report.stats.export(&registry);

    // Eq. 4-7 accounting for the aggregate class: the observed fraction
    // of checks whose composed upper bound crossed the threshold, next
    // to the rate the paper's model predicts for this configuration
    // (monitoring ratio T' of Eq. 7, design tail probability
    // p = 1 - Phi(lambda) from the trained threshold).
    if class.aggregate.checks > 0 {
        let p = 1.0 - stardust_core::stats::phi(lambda);
        let t_prime = analysis::stardust_t_prime(AGG_WINDOW_FACTOR as u64, AGG_BOX_CAPACITY, base);
        registry
            .gauge(
                "stardust_aggregate_candidate_rate_observed",
                "Observed fraction of aggregate checks whose upper bound crossed the threshold",
            )
            .set(class.aggregate.candidate_rate());
        registry
            .gauge(
                "stardust_aggregate_false_alarm_rate_observed",
                "Observed fraction of aggregate checks that raised a candidate refuted on raw data",
            )
            .set(
                (class.aggregate.candidates - class.aggregate.true_alarms) as f64
                    / class.aggregate.checks as f64,
            );
        registry
            .gauge(
                "stardust_aggregate_false_alarm_rate_predicted",
                "Eq. 6 false-alarm rate predicted for this monitoring ratio and tail probability",
            )
            .set(analysis::false_alarm_rate(t_prime, p));
        registry
            .gauge(
                "stardust_aggregate_monitoring_ratio",
                "Eq. 7 effective monitoring ratio T' of the aggregate class",
            )
            .set(t_prime);
    }

    match format {
        "prom" => Ok(registry.render_prometheus()),
        _ => Ok(registry.render_json()),
    }
}

/// Chaos drill: run the same workload twice through the sharded
/// runtime — once untouched, once with every shard worker killed
/// mid-ingest by a seeded fault plan — and audit that crash recovery
/// reproduced the unfaulted event set bit for bit.
fn run_chaos(args: &Args, input: &str) -> Result<String, String> {
    use stardust_runtime::{
        sort_events, Batch, FaultPlan, RecoveryPolicy, RuntimeConfig, RuntimeStats, ShardedRuntime,
    };
    use std::sync::Arc;

    let shards: usize = args.get_or("shards", 2)?;
    let queue: usize = args.get_or("queue", 32)?;
    let batch_rows: usize = args.get_or("batch", 16)?;
    let snapshot_every: u64 = args.get_or("snapshot-every", 64)?;
    let seed: u64 = args.get_or("seed", 42)?;
    if shards == 0 {
        return Err("--shards must be positive for a chaos drill".into());
    }

    let streams = workload_from_args(args, input, 32)?;
    let m = streams.len();
    let n = streams[0].len();
    if m < shards {
        return Err(format!("need at least one stream per shard ({m} streams, {shards} shards)"));
    }
    let spec = monitor_spec_from_args(args, &streams)?;

    // One kill per shard, each somewhere in [10%, 60%) of the fewest
    // appends any shard processes — strictly mid-ingest on every shard.
    let min_local = (0..shards).map(|s| (m - s).div_ceil(shards)).min().unwrap_or(1);
    let per_shard = (min_local * n) as u64;
    let lo = (per_shard / 10).max(1);
    let hi = (per_shard * 6 / 10).max(lo + 1);
    let plan = Arc::new(FaultPlan::seeded_kills(seed, shards, lo, hi));

    let run = |faults: Option<Arc<FaultPlan>>| -> Result<(Vec<_>, RuntimeStats), String> {
        let rt = ShardedRuntime::launch(
            &spec,
            m,
            RuntimeConfig {
                shards,
                queue_capacity: queue,
                recovery: Some(RecoveryPolicy { snapshot_every }),
                fault_plan: faults,
                ..RuntimeConfig::default()
            },
        )
        .map_err(|e| e.to_string())?;
        let mut row = 0;
        while row < n {
            let rows = batch_rows.min(n - row);
            let batch: Batch = (row..row + rows)
                .flat_map(|t| streams.iter().enumerate().map(move |(s, x)| (s as u32, x[t])))
                .collect();
            rt.submit_blocking(&batch).map_err(|e| e.to_string())?;
            row += rows;
        }
        let report = rt.shutdown();
        Ok((report.events, report.stats))
    };

    let (mut baseline, _) = run(None)?;
    let (mut chaotic, stats) = run(Some(Arc::clone(&plan)))?;
    sort_events(&mut baseline);
    sort_events(&mut chaotic);

    let mut out = String::new();
    out.push_str(&format!(
        "# chaos drill: {m} streams x {n} values, {shards} shard(s), \
         snapshot every {snapshot_every} append(s)\n"
    ));
    for f in plan.faults() {
        out.push_str(&format!("kill shard {} at its append #{}\n", f.shard, f.at_append));
    }
    out.push_str(&format!(
        "faults fired: {}/{}, worker restarts: {}\n",
        plan.fired_count(),
        shards,
        stats.total_restarts(),
    ));
    if chaotic != baseline {
        return Err(format!(
            "AUDIT FAILED: recovered run emitted {} event(s), unfaulted run {} — \
             crash recovery lost or duplicated events",
            chaotic.len(),
            baseline.len(),
        ));
    }
    out.push_str(&format!(
        "AUDIT OK: recovered event set bit-identical to the unfaulted run ({} event(s))\n",
        baseline.len(),
    ));
    out.push_str(&stats.render());
    Ok(out)
}

/// Disk-fault drill: for each disk-fault kind, run the persisted
/// runtime with that fault injected, kill the whole process
/// (`crash()`), reopen the directory, re-submit everything past each
/// shard's durable watermark, and audit the union of delivered events
/// against an unfaulted in-memory run.
///
/// Two of the four kinds can legally re-deliver a suffix of events:
/// a torn write or an at-rest WAL truncation may destroy the ack
/// records of events that already left the process, so exactly-once
/// degrades to at-least-once for that tail (see DESIGN.md
/// §Durability). Those drills audit the *deduplicated* union; the
/// failed-fsync and bit-flipped-snapshot drills lose no acks and are
/// audited bit-exact.
fn run_chaos_disk(args: &Args, input: &str) -> Result<String, String> {
    use stardust_runtime::{
        sort_events, Batch, DiskFaultKind, DiskFile, FaultPlan, PersistConfig, RecoveryPolicy,
        RuntimeConfig, RuntimeError, ShardedRuntime, SyncPolicy,
    };
    use std::sync::Arc;

    let shards: usize = args.get_or("shards", 2)?;
    let queue: usize = args.get_or("queue", 32)?;
    let batch_rows: usize = args.get_or("batch", 16)?;
    let snapshot_every: u64 = args.get_or("snapshot-every", 64)?;
    let sync_every: u64 = args.get_or("sync-every", 8)?;
    let torn_at: u64 = args.get_or("torn-at", 600)?;
    if shards == 0 || snapshot_every == 0 || sync_every == 0 {
        return Err("--shards, --snapshot-every, and --sync-every must be positive".into());
    }

    let streams = workload_from_args(args, input, 16)?;
    let m = streams.len();
    let n = streams[0].len();
    if m < shards {
        return Err(format!("need at least one stream per shard ({m} streams, {shards} shards)"));
    }
    let spec = monitor_spec_from_args(args, &streams)?;

    let base_dir = match args.get("dir") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("stardust-chaos-disk-{}", std::process::id())),
    };

    // Unfaulted reference: the same workload through the in-memory
    // runtime. PR-tier determinism tests prove this equals a
    // single-threaded feed, so it is the drill's ground truth.
    let reference_rt = ShardedRuntime::launch(
        &spec,
        m,
        RuntimeConfig { shards, queue_capacity: queue, ..RuntimeConfig::default() },
    )
    .map_err(|e| e.to_string())?;
    let mut row = 0;
    while row < n {
        let rows = batch_rows.min(n - row);
        let batch: Batch = (row..row + rows)
            .flat_map(|t| streams.iter().enumerate().map(move |(s, x)| (s as u32, x[t])))
            .collect();
        reference_rt.submit_blocking(&batch).map_err(|e| e.to_string())?;
        row += rows;
    }
    let mut reference = reference_rt.shutdown().events;
    sort_events(&mut reference);

    // The append order each shard journals, so the post-recovery
    // re-submission can start exactly at the durable watermark.
    let shard_feeds: Vec<Vec<(u32, f64)>> = (0..shards)
        .map(|shard| {
            let mut feed = Vec::new();
            for t in 0..n {
                for (s, x) in streams.iter().enumerate() {
                    if s % shards == shard {
                        feed.push((s as u32, x[t]));
                    }
                }
            }
            feed
        })
        .collect();

    // (name, fault kind, fires at open time, audit modulo duplicates)
    let drills: [(&str, DiskFaultKind, bool, bool); 4] = [
        ("torn-write", DiskFaultKind::TornWrite { at_byte: torn_at }, false, true),
        ("failed-fsync", DiskFaultKind::FailFsync { nth: 1 }, false, false),
        (
            "bit-flip-snap",
            DiskFaultKind::BitFlip { file: DiskFile::Snapshot, at_byte: 40 },
            true,
            false,
        ),
        // Cut just past the 28-byte segment header: whatever records
        // the live segment holds at the kill are destroyed, however
        // short the segment is (offsets clamp into the file).
        ("truncate-wal", DiskFaultKind::TruncateWal { at_byte: 30 }, true, true),
    ];

    let mut out = String::new();
    out.push_str(&format!(
        "# chaos-disk drill: {m} streams x {n} values, {shards} shard(s), \
         snapshot every {snapshot_every} append(s), fsync every {sync_every} record(s)\n"
    ));
    for &(name, kind, at_open, dedup) in &drills {
        let dir = base_dir.join(name);
        let _ = std::fs::remove_dir_all(&dir);
        let plan = Arc::new(FaultPlan::new().disk_fault(0, kind));
        let config = |faults: Option<Arc<FaultPlan>>| RuntimeConfig {
            shards,
            queue_capacity: queue,
            recovery: Some(RecoveryPolicy { snapshot_every }),
            fault_plan: faults,
            ..RuntimeConfig::default()
        };
        let persist = || PersistConfig::new(&dir).sync(SyncPolicy::EveryN(sync_every));

        // Phase 1: ingest under the fault (write-path faults fire here;
        // at-rest faults wait for the reopen), then kill the process.
        let live = if at_open { None } else { Some(Arc::clone(&plan)) };
        let (rt, _) = ShardedRuntime::open(&spec, m, config(live), persist())
            .map_err(|e| format!("{name}: open failed: {e}"))?;
        let mut events = Vec::new();
        let mut row = 0;
        while row < n {
            let rows = batch_rows.min(n - row);
            let batch: Batch = (row..row + rows)
                .flat_map(|t| streams.iter().enumerate().map(move |(s, x)| (s as u32, x[t])))
                .collect();
            match rt.submit_blocking(&batch) {
                Ok(()) => {}
                // A wedged shard closes its queue mid-ingest; the rest
                // of the feed is re-submitted after recovery.
                Err(RuntimeError::Disconnected) => break,
                Err(e) => return Err(format!("{name}: ingest failed: {e}")),
            }
            events.extend(rt.drain_events());
            row += rows;
        }
        events.extend(rt.crash().events);

        // Phase 2: reopen (at-rest faults damage the files now), let
        // the replay re-deliver the unacked tail, then re-submit
        // everything past each shard's durable watermark.
        let open_faults = if at_open { Some(Arc::clone(&plan)) } else { None };
        let (rt, report) = ShardedRuntime::open(&spec, m, config(open_faults), persist())
            .map_err(|e| format!("{name}: recovery failed: {e}"))?;
        events.extend(rt.drain_events());
        for (shard, shard_report) in report.shards.iter().enumerate() {
            for &(stream, value) in &shard_feeds[shard][shard_report.durable_appends as usize..] {
                rt.append_blocking(stream, value)
                    .map_err(|e| format!("{name}: re-submission failed: {e}"))?;
            }
        }
        events.extend(rt.shutdown().events);
        sort_events(&mut events);
        if dedup {
            events.dedup();
        }

        let verdict = if events == reference { "AUDIT OK" } else { "AUDIT FAILED" };
        out.push_str(&format!(
            "{name:<14} fired {}/1, durable {}/{} append(s), replayed {}, \
             truncated {} byte(s), fallback {} — {verdict}{}\n",
            plan.fired_count(),
            report.total_durable_appends(),
            m * n,
            report.total_replayed(),
            report.total_truncated_bytes(),
            report.any_fallback(),
            if dedup { " (modulo re-delivered tail)" } else { "" },
        ));
        let _ = std::fs::remove_dir_all(&dir);
        if events != reference {
            return Err(format!(
                "{out}AUDIT FAILED: {name}: recovered {} event(s), unfaulted run {} — \
                 disk recovery lost or corrupted events",
                events.len(),
                reference.len(),
            ));
        }
    }
    if args.get("dir").is_none() {
        let _ = std::fs::remove_dir_all(&base_dir);
    }
    out.push_str(&format!(
        "AUDIT OK: all {} disk-fault drills recovered the unfaulted event set ({} event(s))\n",
        drills.len(),
        reference.len(),
    ));
    Ok(out)
}

/// Elastic rebalancing drill: prove that online shard split/merge is
/// invisible in the event stream — under live concurrent ingest
/// (phase B), under deterministic worker kills at migration protocol
/// steps (phase C), and across a whole-process crash mid-migration
/// recovered through `ShardedRuntime::open` (phase D). Every phase is
/// audited bit-for-bit against a never-resized baseline (phase A).
fn run_rebalance(args: &Args, input: &str) -> Result<String, String> {
    use stardust_runtime::{
        sort_events, Batch, FaultKind, FaultPlan, MigrationStep, PersistConfig, RecoveryPolicy,
        RuntimeConfig, ShardedRuntime, SyncPolicy,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let shards: usize = args.get_or("shards", 2)?;
    let queue: usize = args.get_or("queue", 32)?;
    let batch_rows: usize = args.get_or("batch", 16)?;
    let snapshot_every: u64 = args.get_or("snapshot-every", 64)?;
    if shards == 0 {
        return Err("--shards must be positive for a rebalance drill".into());
    }
    let streams = workload_from_args(args, input, 8)?;
    let m = streams.len();
    let n = streams[0].len();
    let groups: usize = args.get_or("groups", (2 * shards).min(m))?;
    if groups <= shards || groups > m {
        return Err(format!(
            "--groups must exceed --shards and not exceed the stream count \
             ({groups} groups, {shards} shards, {m} streams)"
        ));
    }
    let spec = monitor_spec_from_args(args, &streams)?;
    // The first slot past the primaries: idle until a split lands on it.
    let spare = shards;
    // Slot 0 owns groups {0, S, 2S, …} under `g mod S` placement; the
    // drill moves all of them (≥ 2, since groups > shards).
    let moving: Vec<usize> = (0..groups).filter(|&g| g % shards == 0).collect();

    let config = |fault_plan: Option<Arc<FaultPlan>>| RuntimeConfig {
        shards,
        groups,
        spare_shards: 1,
        queue_capacity: queue,
        recovery: Some(RecoveryPolicy { snapshot_every }),
        fault_plan,
        ..RuntimeConfig::default()
    };
    let feed = |rt: &ShardedRuntime, lo: usize, hi: usize| -> Result<(), String> {
        let mut row = lo;
        while row < hi {
            let rows = batch_rows.min(hi - row);
            let batch: Batch = (row..row + rows)
                .flat_map(|t| streams.iter().enumerate().map(move |(s, x)| (s as u32, x[t])))
                .collect();
            rt.submit_blocking(&batch).map_err(|e| e.to_string())?;
            row += rows;
        }
        Ok(())
    };

    let mut out = String::new();
    out.push_str(&format!(
        "# rebalance drill: {m} streams x {n} values, {shards} shard(s) + 1 spare, \
         {groups} group(s), snapshot every {snapshot_every} append(s)\n"
    ));

    // Phase A — baseline: the same elastic layout, never resized.
    let rt = ShardedRuntime::launch(&spec, m, config(None)).map_err(|e| e.to_string())?;
    feed(&rt, 0, n)?;
    let mut reference = rt.shutdown().events;
    sort_events(&mut reference);
    out.push_str(&format!("baseline: never resized, {} event(s)\n", reference.len()));

    // Phase B — live resize: a feeder thread never stops submitting
    // while the drill splits slot 0's groups onto the spare and later
    // merges the spare away again.
    let rt = ShardedRuntime::launch(&spec, m, config(None)).map_err(|e| e.to_string())?;
    let total = (m * n) as u64;
    std::thread::scope(|scope| -> Result<(), String> {
        let feeder = scope.spawn(|| feed(&rt, 0, n));
        while rt.stats().total_appends() < total / 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        rt.split_shard(0, spare, &moving).map_err(|e| format!("live split failed: {e}"))?;
        while rt.stats().total_appends() < 2 * total / 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let merged = rt.merge_shard(spare, 0).map_err(|e| format!("live merge failed: {e}"))?;
        if merged != moving.len() {
            return Err(format!("merge drained {merged} group(s), expected {}", moving.len()));
        }
        feeder.join().map_err(|_| "feeder thread panicked".to_string())?
    })?;
    let stats = rt.stats();
    out.push_str(&format!(
        "live resize: split groups {moving:?} 0 -> {spare}, merged back, \
         epoch {}, {} migration(s)\n",
        stats.epoch, stats.migrations,
    ));
    let expected_migrations = 2 * moving.len() as u64;
    if stats.migrations != expected_migrations {
        return Err(format!(
            "{out}AUDIT FAILED: {} migration(s) recorded, expected {expected_migrations}",
            stats.migrations,
        ));
    }
    let mut resized = rt.shutdown().events;
    sort_events(&mut resized);
    if resized != reference {
        return Err(format!(
            "{out}AUDIT FAILED: live resize emitted {} event(s), baseline {} — \
             migration lost or duplicated events",
            resized.len(),
            reference.len(),
        ));
    }
    out.push_str("AUDIT OK: live split+merge bit-identical to the never-resized baseline\n");

    // Phase C — protocol chaos: kill the source worker right after it
    // seals one group and the destination worker right before it
    // adopts another; the supervisor must heal both handoffs.
    let plan = Arc::new(
        FaultPlan::new()
            .migration_fault(moving[0], MigrationStep::AfterSeal, FaultKind::Panic)
            .migration_fault(moving[1], MigrationStep::BeforeAdopt, FaultKind::Panic),
    );
    let rt = ShardedRuntime::launch(&spec, m, config(Some(Arc::clone(&plan))))
        .map_err(|e| e.to_string())?;
    feed(&rt, 0, n / 3)?;
    rt.split_shard(0, spare, &moving).map_err(|e| format!("chaos split failed: {e}"))?;
    feed(&rt, n / 3, 2 * n / 3)?;
    rt.merge_shard(spare, 0).map_err(|e| format!("chaos merge failed: {e}"))?;
    feed(&rt, 2 * n / 3, n)?;
    let report = rt.shutdown();
    out.push_str(&format!(
        "migration kills: faults fired: {}/2, worker restarts: {}\n",
        plan.fired_count(),
        report.stats.total_restarts(),
    ));
    if plan.fired_count() != 2 || report.stats.total_restarts() != 2 {
        return Err(format!("{out}AUDIT FAILED: scheduled migration kills did not all fire"));
    }
    let mut chaotic = report.events;
    sort_events(&mut chaotic);
    if chaotic != reference {
        return Err(format!(
            "{out}AUDIT FAILED: killed-migration run emitted {} event(s), baseline {} — \
             the handoff lost or duplicated events",
            chaotic.len(),
            reference.len(),
        ));
    }
    out.push_str("AUDIT OK: kills at seal and adopt recovered bit-identically\n");

    // Phase D — process crash mid-migration: persist to disk, stall the
    // destination inside an adoption, kill the whole process while the
    // handoff is in flight, and reopen. The shard layout is not
    // durable — `open()` re-places every group at epoch 0 and recovers
    // it from its own journal, so the half-applied migration must be
    // invisible after the re-submission.
    let base_dir = match args.get("dir") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("stardust-rebalance-{}", std::process::id())),
    };
    let _ = std::fs::remove_dir_all(&base_dir);
    let plan = Arc::new(FaultPlan::new().migration_fault(
        moving[0],
        MigrationStep::BeforeAdopt,
        FaultKind::Stall(Duration::from_millis(300)),
    ));
    let persist = || PersistConfig::new(&base_dir).sync(SyncPolicy::EveryN(8));
    let (rt, _) = ShardedRuntime::open(&spec, m, config(Some(Arc::clone(&plan))), persist())
        .map_err(|e| format!("persisted open failed: {e}"))?;
    let mut events = Vec::new();
    feed(&rt, 0, n / 2)?;
    events.extend(rt.drain_events());
    rt.split_shard(0, spare, &moving).map_err(|e| format!("persisted split failed: {e}"))?;
    // The destination is stalled inside the first adoption; kill the
    // process with the handoff half-applied.
    events.extend(rt.crash().events);
    let (rt, report) = ShardedRuntime::open(&spec, m, config(None), persist())
        .map_err(|e| format!("reopen after mid-migration crash failed: {e}"))?;
    events.extend(rt.drain_events());
    let reopened_epoch = rt.epoch();
    // Re-submit everything past each group's durable watermark, in the
    // same per-group order the journals saw.
    let mut resubmitted = 0u64;
    for (g, group_report) in report.shards.iter().enumerate() {
        let feed_for_group: Vec<(u32, f64)> = (0..n)
            .flat_map(|t| {
                streams
                    .iter()
                    .enumerate()
                    .filter(move |(s, _)| s % groups == g)
                    .map(move |(s, x)| (s as u32, x[t]))
            })
            .collect();
        for &(stream, value) in &feed_for_group[group_report.durable_appends as usize..] {
            rt.append_blocking(stream, value)
                .map_err(|e| format!("post-recovery re-submission failed: {e}"))?;
            resubmitted += 1;
        }
    }
    events.extend(rt.shutdown().events);
    sort_events(&mut events);
    out.push_str(&format!(
        "process crash mid-migration: durable {}/{} append(s), replayed {}, \
         re-submitted {resubmitted}, reopened at epoch {reopened_epoch}\n",
        report.total_durable_appends(),
        m * n,
        report.total_replayed(),
    ));
    if args.get("dir").is_none() {
        let _ = std::fs::remove_dir_all(&base_dir);
    }
    if events != reference {
        return Err(format!(
            "{out}AUDIT FAILED: crash-recovered run emitted {} event(s), baseline {} — \
             the interrupted migration corrupted recovery",
            events.len(),
            reference.len(),
        ));
    }
    out.push_str(&format!(
        "AUDIT OK: all rebalance drills recovered the baseline event set \
         ({} event(s))\n",
        reference.len(),
    ));
    Ok(out)
}

fn run_trend(args: &Args, input: &str) -> Result<String, String> {
    let streams = read_columns(input)?;
    let patterns_path = args.get("patterns").ok_or("trend needs --patterns FILE")?;
    let text = std::fs::read_to_string(patterns_path)
        .map_err(|e| format!("cannot read patterns file '{patterns_path}': {e}"))?;
    let radius: f64 = args.get_or("radius", 0.05)?;
    let base: usize = args.get_or("base", 16)?;
    let levels: usize = args.get_or("levels", 4)?;
    // One pattern per non-comment line.
    let mut patterns: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let p: Result<Vec<f64>, String> = line
            .split(',')
            .map(|c| {
                c.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("patterns line {}: bad number '{c}'", lineno + 1))
            })
            .collect();
        patterns.push(p?);
    }
    if patterns.is_empty() {
        return Err("no patterns in the patterns file".to_string());
    }
    if !base.is_power_of_two() || levels == 0 {
        return Err("--base must be a power of two and --levels positive".to_string());
    }
    let r_max = streams
        .iter()
        .flatten()
        .chain(patterns.iter().flatten())
        .fold(1.0f64, |a, &b| a.max(b.abs()));
    let mut cfg =
        Config::online(TransformKind::Dwt, base, levels, 8).with_history(base << (levels - 1));
    cfg.dwt_coeffs = 4.min(base);
    cfg.r_max = r_max;
    let mut monitor = TrendMonitor::new(cfg, streams.len());
    for p in patterns {
        monitor.register(p, radius).map_err(|e| e.to_string())?;
    }
    let n = streams[0].len();
    let mut out = String::from("row,stream,pattern,distance\n");
    for i in 0..n {
        for (s, col) in streams.iter().enumerate() {
            for m in monitor.append(s as u32, col[i]) {
                out.push_str(&format!("{i},{},{},{:.5}\n", m.stream, m.pattern, m.distance));
            }
        }
    }
    let st = monitor.stats();
    out.push_str(&format!(
        "# {} candidates, {} matches, precision {:.3}\n",
        st.candidates,
        st.matches,
        st.precision()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|p| p.to_string()).collect()
    }

    #[test]
    fn parse_flags_and_positional() {
        let (cmd, args) =
            Args::parse(&argv("burst --base 20 --lambda 6.5 input.csv")).expect("valid");
        assert_eq!(cmd, "burst");
        assert_eq!(args.get("base"), Some("20"));
        assert_eq!(args.get_or::<f64>("lambda", 0.0).unwrap(), 6.5);
        assert_eq!(args.positional(), &["input.csv".to_string()]);
        assert_eq!(args.get_or::<usize>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn parse_errors() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&argv("burst --base")).is_err());
        let (_, args) = Args::parse(&argv("burst --base xyz")).unwrap();
        assert!(args.get_or::<usize>("base", 1).is_err());
    }

    #[test]
    fn csv_columns() {
        let input = "# comment\n1, 2.5\n3,4\n\n5,6\n";
        let cols = read_columns(input).expect("valid csv");
        assert_eq!(cols, vec![vec![1.0, 3.0, 5.0], vec![2.5, 4.0, 6.0]]);
        assert!(read_columns("1,2\n3\n").is_err());
        assert!(read_columns("").is_err());
        assert!(read_columns("a,b\n").is_err());
    }

    #[test]
    fn usize_list() {
        assert_eq!(parse_usize_list("1, 2,30").unwrap(), vec![1, 2, 30]);
        assert!(parse_usize_list("1,x").is_err());
    }

    fn bursty_csv() -> String {
        let mut s = String::new();
        for i in 0..3000 {
            let v = if (2000..2100).contains(&i) { 9.0 } else { 1.0 + (i % 3) as f64 * 0.1 };
            s.push_str(&format!("{v}\n"));
        }
        s
    }

    #[test]
    fn burst_subcommand_end_to_end() {
        let (cmd, args) =
            Args::parse(&argv("burst --base 10 --windows 4 --lambda 8 --train 800")).unwrap();
        let out = run(&cmd, &args, &bursty_csv()).expect("runs");
        assert!(out.lines().count() > 2, "alarms expected:\n{out}");
        assert!(out.contains("precision"));
        // Alarm rows land inside the burst region.
        let first_alarm: usize = out
            .lines()
            .nth(1)
            .and_then(|l| l.split(',').next())
            .and_then(|t| t.parse().ok())
            .expect("alarm row");
        assert!((2000..2250).contains(&first_alarm), "first alarm at {first_alarm}");
    }

    #[test]
    fn recommend_subcommand() {
        let (cmd, args) = Args::parse(&argv("recommend --candidates 10,50,100,400")).unwrap();
        let out = run(&cmd, &args, &bursty_csv()).expect("runs");
        let top = out.lines().nth(1).expect("ranked row");
        let w: usize = top.split(',').next().unwrap().parse().unwrap();
        assert_eq!(w, 100, "burst length 100 should rank first:\n{out}");
    }

    #[test]
    fn correlate_subcommand() {
        let mut csv = String::new();
        let mut a = 50.0f64;
        let mut seed = 5u64;
        for _ in 0..300 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            a += (seed >> 33) as f64 / 2f64.powi(32) - 0.5;
            csv.push_str(&format!("{a},{},{}\n", a * 2.0 + 3.0, (seed % 100) as f64));
        }
        let (cmd, args) =
            Args::parse(&argv("correlate --base 8 --levels 3 --min-corr 0.95")).unwrap();
        let out = run(&cmd, &args, &csv).expect("runs");
        assert!(
            out.lines().skip(1).any(|l| l.contains(",0,") || l.starts_with(char::is_numeric)),
            "correlated pair expected:\n{out}"
        );
    }

    #[test]
    fn trend_subcommand_end_to_end() {
        // Pattern file on disk; stream contains the pattern at a known spot.
        let dir = std::env::temp_dir().join("stardust_cli_trend");
        std::fs::create_dir_all(&dir).unwrap();
        let pfile = dir.join("patterns.csv");
        let ramp: Vec<String> = (0..32).map(|i| format!("{}", 10.0 + i as f64)).collect();
        std::fs::write(&pfile, ramp.join(",") + "\n").unwrap();
        let mut csv = String::new();
        for i in 0..200 {
            let v = if (120..152).contains(&i) { 10.0 + (i - 120) as f64 } else { 5.0 };
            csv.push_str(&format!("{v}\n"));
        }
        let argv_s =
            format!("trend --patterns {} --radius 0.02 --base 16 --levels 2", pfile.display());
        let (cmd, args) = Args::parse(&argv(&argv_s)).unwrap();
        let out = run(&cmd, &args, &csv).expect("runs");
        assert!(out.contains("151,0,0,"), "match at row 151 expected:\n{out}");
        let _ = std::fs::remove_file(&pfile);
    }

    #[test]
    fn serve_bench_generated_workload() {
        let (cmd, args) = Args::parse(&argv(
            "serve-bench --shards 2 --streams 8 --values 256 --batch 8 --seed 7",
        ))
        .unwrap();
        let out = run(&cmd, &args, "").expect("runs");
        assert!(out.contains("8 streams x 256 values, 2 shard(s)"), "header:\n{out}");
        assert!(out.contains("values/s"), "throughput line:\n{out}");
        assert!(out.contains("q_hwm"), "per-shard stats table:\n{out}");
        assert!(out.contains("ingested 2048 values"), "total count:\n{out}");
    }

    #[test]
    fn chaos_drill_audits_recovery() {
        let (cmd, args) = Args::parse(&argv(
            "chaos --shards 2 --streams 6 --values 512 --snapshot-every 64 --seed 9",
        ))
        .unwrap();
        let out = run(&cmd, &args, "").expect("drill passes its audit");
        assert!(out.contains("chaos drill: 6 streams x 512 values, 2 shard(s)"), "header:\n{out}");
        assert!(out.contains("kill shard 0 at"), "kill plan:\n{out}");
        assert!(out.contains("kill shard 1 at"), "kill plan:\n{out}");
        assert!(out.contains("faults fired: 2/2, worker restarts: 2"), "fired line:\n{out}");
        assert!(out.contains("AUDIT OK"), "audit verdict:\n{out}");
        assert!(out.contains("restarts"), "stats table:\n{out}");
    }

    #[test]
    fn chaos_rejects_more_shards_than_streams() {
        let (cmd, args) = Args::parse(&argv("chaos --shards 8 --streams 4 --values 128")).unwrap();
        let err = run(&cmd, &args, "").unwrap_err();
        assert!(err.contains("at least one stream per shard"), "{err}");
    }

    #[test]
    fn serve_bench_csv_input() {
        let mut csv = String::new();
        let mut x = 10.0f64;
        for i in 0..400 {
            x += ((i * 37) % 11) as f64 / 11.0 - 0.5;
            csv.push_str(&format!("{x},{},{}\n", x + 1.0, 40.0 - x / 2.0));
        }
        let (cmd, args) =
            Args::parse(&argv("serve-bench --shards 3 --batch 4 --classes corr")).unwrap();
        let out = run(&cmd, &args, &csv).expect("runs");
        assert!(out.contains("3 streams x 400 values, 3 shard(s)"), "header:\n{out}");
    }

    #[test]
    fn serve_rejects_bad_tenant_layouts() {
        // Malformed tenant spec: caught before any socket is bound.
        let (cmd, args) = Args::parse(&argv("serve --tenants nonsense")).unwrap();
        let err = run(&cmd, &args, "").unwrap_err();
        assert!(err.contains("name:token:streams:rate"), "{err}");
        // Tenant layout that disagrees with the training workload.
        let (cmd, args) =
            Args::parse(&argv("serve --tenants a:tok-a:3:0 --streams 4 --values 256")).unwrap();
        let err = run(&cmd, &args, "").unwrap_err();
        assert!(err.contains("sum to 3"), "{err}");
    }

    #[test]
    fn unknown_command_mentions_usage() {
        let (cmd, args) = Args::parse(&argv("frobnicate")).unwrap();
        let err = run(&cmd, &args, "1\n").unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let (cmd, args) = Args::parse(&argv("burst --base 10")).unwrap();
        assert!(run(&cmd, &args, "1\n2\n3\n").is_err(), "too-short input must error");
        let (cmd, args) = Args::parse(&argv("recommend")).unwrap();
        assert!(run(&cmd, &args, &bursty_csv()).is_err(), "missing --candidates");
    }
}
