//! The `stardust` command-line tool: stream monitoring over CSV input.
//!
//! See `stardust help` for usage. All logic lives in [`stardust::cli`].

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, args) = match stardust::cli::Args::parse(&argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Input: last positional argument as a file, else stdin. `help` needs
    // no input; `serve`, `serve-bench`, `chaos`, `chaos-disk`,
    // `rebalance`, and `metrics` generate their own workload when none is
    // given (piped stdin is still honored — only an interactive terminal
    // is skipped, so the command runs without waiting for input).
    let no_input = matches!(cmd.as_str(), "help" | "--help" | "-h")
        || (matches!(
            cmd.as_str(),
            "serve" | "serve-bench" | "chaos" | "chaos-disk" | "rebalance" | "metrics"
        ) && args.positional().is_empty()
            && std::io::IsTerminal::is_terminal(&std::io::stdin()));
    let input = if no_input {
        String::new()
    } else if let Some(path) = args.positional().first() {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read '{path}': {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        buf
    };
    match stardust::cli::run(&cmd, &args, &input) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
