//! # Stardust
//!
//! A complete, from-scratch Rust implementation of **"A Unified Framework
//! for Monitoring Data Streams in Real Time"** (Bulut & Singh, ICDE 2005):
//! multi-resolution stream summarization with incremental feature
//! computation, MBR-based space/accuracy trading, per-level R\*-tree
//! indexing, and the three monitoring query classes — aggregates (bursts,
//! volatility), variable-length patterns, and correlations.
//!
//! This crate is a façade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `stardust-core` | summarizer (Alg. 1), engine, query algorithms (Alg. 2–4, §5.3) |
//! | [`index`] | `stardust-index` | R\*-tree with forced reinsertion, deletion, STR bulk load |
//! | [`dsp`] | `stardust-dsp` | Haar DWT + incremental merges (Lemmas A.1/A.2), sliding DFT |
//! | [`baselines`] | `stardust-baselines` | SWT, StatStream, GeneralMatch, MR-Index, linear scan |
//! | [`datagen`] | `stardust-datagen` | seeded workload generators for every §6 experiment |
//! | [`runtime`] | `stardust-runtime` | sharded, multi-threaded ingestion & query runtime |
//! | [`server`] | `stardust-server` | multi-client TCP ingest/query service + wire client |
//! | [`bench`](mod@bench) | `stardust-bench` | benchmark harness, load driver, CI regression gate |
//!
//! ## Quickstart
//!
//! ```
//! use stardust::core::config::Config;
//! use stardust::core::transform::TransformKind;
//! use stardust::core::query::aggregate::{AggregateMonitor, WindowSpec};
//!
//! // Detect bursts over windows whose right size we do not know a priori:
//! // monitor several at once over one summary.
//! let config = Config::online(TransformKind::Sum, 20, 5, 5);
//! let windows: Vec<WindowSpec> = (1..=8)
//!     .map(|k| WindowSpec { window: 20 * k, threshold: 25.0 * k as f64 })
//!     .collect();
//! let mut monitor = AggregateMonitor::new(config, &windows);
//! for t in 0..1000u32 {
//!     let x = if (400..450).contains(&t) { 4.0 } else { 1.0 };
//!     monitor.push(x);
//! }
//! assert!(monitor.stats().true_alarms > 0);
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the harness regenerating every table and figure of
//! the paper's evaluation.

pub mod cli;

pub use stardust_baselines as baselines;
pub use stardust_bench as bench;
pub use stardust_core as core;
pub use stardust_datagen as datagen;
pub use stardust_dsp as dsp;
pub use stardust_index as index;
pub use stardust_runtime as runtime;
pub use stardust_server as server;
