//! Quickstart: monitor one stream for bursts over several window sizes at
//! once — the core "flexible window" capability of the framework.
//!
//! Run: `cargo run --release --example quickstart`

use stardust::core::config::Config;
use stardust::core::query::aggregate::{AggregateMonitor, WindowSpec};
use stardust::core::transform::TransformKind;

fn main() {
    // A summarizer with base window W = 25 and 4 resolution levels
    // (windows 25, 50, 100, 200), box capacity c = 5 (features are boxed
    // 5 at a time: 5x less space, slightly approximate answers).
    let config = Config::online(TransformKind::Sum, 25, 4, 5);

    // We do not know the burst duration a priori, so monitor every
    // multiple of W up to 200 with thresholds scaled to the window.
    let windows: Vec<WindowSpec> =
        (1..=8).map(|k| WindowSpec { window: 25 * k, threshold: 30.0 * k as f64 }).collect();
    let mut monitor = AggregateMonitor::new(config, &windows);

    // Baseline traffic of ~1 event/tick with a burst of 4/tick at t in
    // [600, 680).
    let mut alarm_windows = std::collections::BTreeSet::new();
    for t in 0..2000u64 {
        let value = if (600..680).contains(&t) { 4.0 } else { 1.0 };
        for alarm in monitor.push(value) {
            if alarm.is_true_alarm {
                alarm_windows.insert(alarm.window);
                if alarm.time % 25 == 0 {
                    println!(
                        "t={:4}  burst over the last {:3} values: sum {:.0} ≥ threshold {:.0}",
                        alarm.time,
                        alarm.window,
                        alarm.true_value,
                        windows.iter().find(|w| w.window == alarm.window).unwrap().threshold,
                    );
                }
            }
        }
    }
    let stats = monitor.stats();
    println!(
        "\n{} alarm checks, {} true alarms, precision {:.3}",
        stats.candidates,
        stats.true_alarms,
        stats.precision()
    );
    println!("window sizes that fired: {alarm_windows:?}");
    assert!(!alarm_windows.is_empty(), "the burst must be detected");
}
