//! The paper's sensor-network scenario (§1, §2.4): continuously report
//! which temperature sensors are currently correlated — cheap evidence of
//! shared micro-climate or a common fault.
//!
//! Sixteen sensors follow a shared diurnal cycle plus sensor-local noise;
//! two groups additionally share a local effect, so within-group pairs are
//! strongly correlated. The monitor reports pairs continuously; the
//! example aggregates how often each pair is confirmed.
//!
//! Run: `cargo run --release --example sensor_correlations`

use stardust::core::normalize;
use stardust::core::query::correlation::CorrelationMonitor;
use stardust::datagen::sampler::normal;

use rand::prelude::*;
use rand::rngs::StdRng;

const SENSORS: usize = 16;
const W: usize = 16;
const LEVELS: usize = 4; // correlation window N = 128

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    // Distance threshold 0.45 ↔ correlation ≥ 1 − 0.45²/2 ≈ 0.9.
    let radius = 0.45;
    let mut monitor = CorrelationMonitor::new(W, LEVELS, 4, radius, SENSORS);
    println!(
        "{SENSORS} sensors, correlation window {}, reporting corr ≥ {:.3}",
        monitor.window(),
        normalize::distance_to_correlation(radius)
    );

    // Group A: sensors 0..4 share a heater nearby; group B: 8..12 share a
    // draft. Everyone shares the diurnal cycle.
    let mut confirmed = std::collections::BTreeMap::<(u32, u32), usize>::new();
    for t in 0..6000usize {
        let diurnal = 20.0 + 5.0 * (t as f64 / 500.0 * std::f64::consts::TAU).sin();
        let heater = 3.0 * (t as f64 / 90.0 * std::f64::consts::TAU).sin();
        let draft = 2.5 * (t as f64 / 140.0 * std::f64::consts::TAU).cos();
        for s in 0..SENSORS {
            let local = match s {
                0..=3 => heater,
                8..=11 => draft,
                _ => 0.0,
            };
            let reading = diurnal + local + 0.3 * normal(&mut rng);
            for pair in monitor.append(s as u32, reading) {
                if pair.correlation.is_some_and(|c| normalize::correlation_to_distance(c) <= radius)
                {
                    let key = (pair.a.min(pair.b), pair.a.max(pair.b));
                    *confirmed.entry(key).or_default() += 1;
                }
            }
        }
    }

    println!("\npairs confirmed most often:");
    let mut ranked: Vec<_> = confirmed.iter().collect();
    ranked.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
    for ((a, b), n) in ranked.iter().take(14) {
        let group = |s: u32| match s {
            0..=3 => "heater",
            8..=11 => "draft",
            _ => "plain",
        };
        println!("  sensors {a:2} ~ {b:2}  confirmed {n:4}x  ({} / {})", group(*a), group(*b));
    }

    // Within-group pairs should dominate the ranking.
    let same_group =
        |a: u32, b: u32| (a <= 3 && b <= 3) || ((8..=11).contains(&a) && (8..=11).contains(&b));
    let top: Vec<_> = ranked.iter().take(8).collect();
    let in_group = top.iter().filter(|((a, b), _)| same_group(*a, *b)).count();
    println!("\n{in_group}/8 of the top pairs are within a group");
    assert!(in_group >= 6, "group structure should dominate the report");
    let st = monitor.stats();
    println!(
        "reported {} pairs, {} verified, precision {:.3}",
        st.reported,
        st.true_pairs,
        st.precision()
    );
}
