//! The paper's motivating astrophysics scenario (§1): detect Gamma-Ray
//! Bursts whose duration is unknown a priori — "the burst of high-energy
//! photons might last for a few milliseconds, a few hours, or even a few
//! days" — by monitoring moving sums over a whole ladder of window sizes.
//!
//! The workload is the `burst.dat` substitute: Poisson background noise
//! with injected showers whose durations are heavy-tailed, plus the
//! injected intervals as ground truth, so the example can report recall
//! per timescale.
//!
//! Run: `cargo run --release --example gamma_ray_bursts`

use stardust::core::config::Config;
use stardust::core::query::aggregate::{AggregateMonitor, WindowSpec};
use stardust::core::stats::train_threshold;
use stardust::core::transform::TransformKind;
use stardust::datagen::{burst_series, BurstParams};

fn main() {
    let params = BurstParams::default();
    let (photons, showers) = burst_series(2026, 40_000, &params);
    println!(
        "{} ticks of photon counts, {} injected showers (durations {}..{})",
        photons.len(),
        showers.len(),
        showers.iter().map(|b| b.duration).min().unwrap_or(0),
        showers.iter().map(|b| b.duration).max().unwrap_or(0),
    );

    // Train thresholds on a burst-free-ish prefix: μ + 6σ of the moving
    // sum at each monitored timescale.
    let train = &photons[..4000];
    let base = 8usize;
    let windows: Vec<WindowSpec> = (0..7)
        .map(|j| {
            let w = base << j; // 8, 16, ..., 512 ticks
            let threshold =
                train_threshold(train, w, 6.0, |win| win.iter().sum()).expect("training prefix");
            WindowSpec { window: w, threshold }
        })
        .collect();

    let config = Config::online(TransformKind::Sum, base, 7, 5).with_history(512);
    let mut monitor = AggregateMonitor::new(config, &windows);

    // Stream the sky; remember at which ticks each timescale fired.
    let mut fired: Vec<Vec<u64>> = vec![Vec::new(); windows.len()];
    for &x in &photons[4000..] {
        for alarm in monitor.push(x) {
            if alarm.is_true_alarm {
                let idx = windows.iter().position(|w| w.window == alarm.window).unwrap();
                fired[idx].push(alarm.time + 4000);
            }
        }
    }

    println!("\ntimescale  alarms  first_alarm_tick");
    for (spec, times) in windows.iter().zip(&fired) {
        println!(
            "{:9}  {:6}  {}",
            spec.window,
            times.len(),
            times.first().map(|t| t.to_string()).unwrap_or_else(|| "-".into())
        );
    }

    // Recall: a shower counts as caught if any timescale fired inside it
    // (or within one window after it ends).
    let caught = showers
        .iter()
        .filter(|s| s.start >= 4000 && s.duration >= base)
        .filter(|s| {
            fired
                .iter()
                .flatten()
                .any(|&t| (t as usize) >= s.start && (t as usize) <= s.start + 2 * s.duration + 512)
        })
        .count();
    let eligible = showers.iter().filter(|s| s.start >= 4000 && s.duration >= base).count();
    println!("\nshowers caught: {caught}/{eligible}");
    let stats = monitor.stats();
    println!(
        "alarm checks: {}, true alarms: {}, precision: {:.3}",
        stats.candidates,
        stats.true_alarms,
        stats.precision()
    );
    assert!(eligible == 0 || caught * 2 >= eligible, "most showers should be caught");
}
