//! The paper's finance scenario (§1): "a user might want to know all time
//! periods during which the movement of a particular stock follows a
//! certain interesting trend" — of a length that is not known when the
//! index is built.
//!
//! A Stardust engine indexes a basket of random-walk "price" streams at
//! multiple resolutions; we plant a distinctive double-dip trend into two
//! of them and then pose variable-length queries for it with both the
//! online (Algorithm 3) and batch (Algorithm 4) search strategies.
//!
//! Run: `cargo run --release --example stock_patterns`

use stardust::core::config::{Config, UpdatePolicy};
use stardust::core::engine::Stardust;
use stardust::core::query::pattern::{self, PatternQuery};
use stardust::datagen::random_walk_streams;

const W: usize = 16;
const LEVELS: usize = 5; // windows 16..256
const M: usize = 12;

/// A double-dip shape of the given length, amplitude-scaled.
fn double_dip(len: usize, level: f64, depth: f64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let x = i as f64 / len as f64 * std::f64::consts::TAU * 2.0;
            level - depth * (x.sin().max(0.0))
        })
        .collect()
}

fn main() {
    let n = 4000;
    let mut prices = random_walk_streams(7, M, n);
    // Plant the trend into streams 3 and 9 at different offsets.
    let trend = double_dip(128, prices[3][2000], 6.0);
    for (i, &v) in trend.iter().enumerate() {
        prices[3][2000 + i] = v;
        prices[9][3200 + i] = v + 0.4; // shifted copy: same shape, offset level
    }
    let r_max = prices.iter().flatten().fold(1.0f64, |a, &b| a.max(b.abs()));

    // Online engine (features at every tick, boxed 8 at a time).
    let mut cfg = Config::batch(W, LEVELS, 4, r_max).with_history(2048);
    cfg.update = UpdatePolicy::Online;
    cfg.box_capacity = 8;
    let mut online = Stardust::new(cfg, M);
    // Batch engine (features every W ticks, exact).
    let batch_cfg = Config::batch(W, LEVELS, 4, r_max).with_history(2048);
    let mut batch = Stardust::new(batch_cfg, M);
    for i in 0..n {
        for s in 0..M {
            online.append(s as u32, prices[s][i]);
            batch.append(s as u32, prices[s][i]);
        }
    }

    // Query: the planted trend itself, at two different lengths.
    for len in [128usize, 64] {
        let q = PatternQuery {
            sequence: double_dip(128, prices[3][2000], 6.0)[..len].to_vec(),
            radius: 0.02,
        };
        let on = pattern::query_online(&online, &q).expect("decomposable length");
        let ba = pattern::query_batch(&batch, &q).expect("long enough");
        println!("query length {len} (radius 0.02):");
        for (name, ans) in [("online", &on), ("batch", &ba)] {
            // Group runs of adjacent end positions into occurrences.
            let mut ends: Vec<(u32, u64)> =
                ans.matches.iter().map(|m| (m.stream, m.end_time)).collect();
            ends.sort_unstable();
            ends.dedup();
            let mut occurrences: Vec<String> = Vec::new();
            for &(s, t) in &ends {
                if !ends.contains(&(s, t.wrapping_sub(1))) {
                    occurrences.push(format!("stream {s} around t={t}"));
                }
            }
            println!(
                "  {name:6}: {} candidates -> {} matching positions in {} occurrence(s): {}",
                ans.candidates.len(),
                ends.len(),
                occurrences.len(),
                occurrences.join(", ")
            );
        }
        // The planted occurrences must be found by both.
        for ans in [&on, &ba] {
            assert!(
                ans.matches.iter().any(|m| m.stream == 3),
                "planted trend in stream 3 missed at length {len}"
            );
        }
        println!();
    }
    println!("both planted occurrences found at every queried length");
}
