//! A network-operations console combining the whole framework — the
//! telecom/web-click scenario of the paper's abstract, plus the §7
//! future-work extensions implemented in `stardust_core::regression`:
//!
//! 1. **Parameter estimation**: candidate window sizes are *learned* from a
//!    training prefix (`recommend_windows`) instead of guessed.
//! 2. **Aggregate monitoring**: the recommended windows are armed with
//!    trained thresholds.
//! 3. **Trend monitoring**: a "flash-crowd ramp" pattern is registered and
//!    continuously matched against the live stream.
//! 4. **Forecasting**: an incremental AR model reports its drift as the
//!    anomaly passes through.
//!
//! Run: `cargo run --release --example network_ops`

use stardust::core::config::Config;
use stardust::core::query::aggregate::{AggregateMonitor, WindowSpec};
use stardust::core::query::trend::TrendMonitor;
use stardust::core::regression::{recommend_windows, ArForecaster};
use stardust::core::stats::train_threshold;
use stardust::core::transform::TransformKind;
use stardust::datagen::{packet_series, PacketParams};

fn main() {
    // Traffic with a flash crowd: baseline self-similar packet counts plus
    // a 160-tick ramp injected into the live region.
    let mut traffic = packet_series(7, 24_000, &PacketParams::default());
    let anomaly_at = 15_000usize;
    for i in 0..160 {
        traffic[anomaly_at + i] += (i as f64 / 160.0) * 220.0;
    }
    let (train, live) = traffic.split_at(8_000);

    // 1. Learn which windows to monitor (§7): rank candidates by anomaly
    //    separability on the training prefix.
    let candidates: Vec<usize> = (1..=16).map(|k| 20 * k).collect();
    let ranked = recommend_windows(train, &candidates, TransformKind::Sum);
    let chosen: Vec<usize> = ranked.iter().take(6).map(|s| s.window).collect();
    println!("recommended SUM windows (by anomaly separability): {chosen:?}");

    // 2. Arm the aggregate monitor with trained thresholds on them.
    let specs: Vec<WindowSpec> = chosen
        .iter()
        .map(|&w| WindowSpec {
            window: w,
            threshold: train_threshold(train, w, 10.0, |win| win.iter().sum()).expect("train"),
        })
        .collect();
    let cfg = Config::online(TransformKind::Sum, 20, 5, 10).with_history(320);
    let mut aggregates = AggregateMonitor::new(cfg, &specs);

    // 3. Register the flash-crowd ramp as a standing trend query.
    let mut trend_cfg = Config::batch(16, 4, 4, 1000.0).with_history(256);
    trend_cfg.update = stardust::core::config::UpdatePolicy::Online;
    trend_cfg.box_capacity = 8;
    let mut trends = TrendMonitor::new(trend_cfg, 1);
    let base = train.iter().sum::<f64>() / train.len() as f64;
    let ramp: Vec<f64> = (0..160).map(|i| base + (i as f64 / 160.0) * 220.0).collect();
    let ramp_id = trends.register(ramp, 0.08).expect("valid pattern");

    // 4. AR(3) forecaster for drift reporting.
    let mut forecaster = ArForecaster::new(3, 0.999);

    let mut burst_alarms = 0usize;
    let mut trend_hits = Vec::new();
    let mut worst_surprise: (f64, usize) = (0.0, 0);
    for (i, &x) in live.iter().enumerate() {
        burst_alarms += aggregates.push(x).iter().filter(|a| a.is_true_alarm).count();
        trend_hits.extend(trends.append(0, x).into_iter().map(|m| (i, m)));
        if let Some(pred) = forecaster.push(x) {
            let surprise = (x - pred).abs();
            if surprise > worst_surprise.0 {
                worst_surprise = (surprise, i);
            }
        }
    }

    println!("\ntrue burst alarms on live traffic: {burst_alarms}");
    println!(
        "aggregate monitor precision: {:.3} over {} checks",
        aggregates.stats().precision(),
        aggregates.stats().candidates
    );
    match trend_hits.iter().find(|(_, m)| m.pattern == ramp_id) {
        Some((i, m)) => {
            println!("flash-crowd ramp matched at live tick {i} (distance {:.4})", m.distance)
        }
        None => println!("flash-crowd ramp not matched"),
    }
    println!(
        "largest forecast surprise: {:.1} packets at live tick {} (anomaly injected at {})",
        worst_surprise.0,
        worst_surprise.1,
        anomaly_at - 8_000,
    );
    println!("AR coefficients: {:?}", forecaster.coefficients());

    assert!(burst_alarms > 0, "the flash crowd must raise burst alarms");
    assert!(
        trend_hits.iter().any(|(_, m)| m.pattern == ramp_id),
        "the registered ramp must be matched"
    );
}
