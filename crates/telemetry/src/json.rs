//! A minimal std-only JSON parser and string escaper.
//!
//! Exactly the subset needed in an offline workspace: the bench
//! comparator (`bench_gate`) and the CLI golden tests parse emitted
//! metric/bench documents with it, and the exporters use [`escape`] for
//! string values. Numbers are parsed as `f64`; objects preserve
//! insertion order (a `Vec` of pairs, not a map) so documents
//! round-trip deterministically.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.trunc() == *n && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value's key/value pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
}

/// A parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Escapes a string for embedding inside JSON double quotes (also safe
/// for Prometheus label values, which use the same escapes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &'static str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our
                            // documents; reject rather than mis-decode.
                            let ch = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(
            r#"{"a": 1, "b": [true, null, -2.5e1], "c": {"d": "x\ny", "e": ""}, "f": false}"#,
        )
        .unwrap();
        assert_eq!(doc.get("a").and_then(Value::as_u64), Some(1));
        let b = doc.get("b").and_then(Value::as_array).unwrap();
        assert_eq!(b[0], Value::Bool(true));
        assert_eq!(b[1], Value::Null);
        assert_eq!(b[2].as_f64(), Some(-25.0));
        assert_eq!(doc.get("c").and_then(|c| c.get("d")).and_then(Value::as_str), Some("x\ny"));
        assert_eq!(doc.get("f"), Some(&Value::Bool(false)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let raw = "a\"b\\c\nd\te\u{1}f";
        let doc = parse(&format!("{{\"k\":\"{}\"}}", escape(raw))).unwrap();
        assert_eq!(doc.get("k").and_then(Value::as_str), Some(raw));
    }

    #[test]
    fn u64_boundaries() {
        assert_eq!(parse("18446744073709551615").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
