//! stardust-telemetry — lock-cheap in-process metrics for hot paths.
//!
//! The framework's claim is per-item Θ(f) maintenance; instrumentation
//! must not change that. This crate provides a [`Registry`] handing out
//! three metric handles — [`Counter`], [`Gauge`], [`Histogram`] — whose
//! hot-path operations are a single branch plus one relaxed atomic op.
//! A **disabled** registry hands out *no-op* handles: every operation is
//! one `Option` branch on data the caller already owns, and span timers
//! never call `Instant::now()`. There is no feature gate to misconfigure
//! — enablement is a runtime property of the registry, and the A/B
//! criterion bench (`crates/bench/benches/telemetry.rs`) keeps the
//! no-op path honest.
//!
//! Registration is locked (a `Mutex` around a name→metric map) but
//! happens once per metric at attach time; after that, handles are
//! `Arc`-shared atomics and never touch the lock again. Cloned handles
//! share their cell, so per-stream clones of an instrumented component
//! aggregate into one series.
//!
//! Exposition formats: [`Registry::render_prometheus`] (text format
//! 0.0.4) and [`Registry::render_json`] (schema
//! `stardust-metrics/v1`, stable key order). The [`json`] module holds
//! the std-only JSON parser used by the bench-regression comparator and
//! the CLI golden tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub mod json;

/// Relaxed ordering everywhere: metrics are monotone statistics, not
/// synchronization edges.
const ORD: Ordering = Ordering::Relaxed;

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

/// A monotonically increasing `u64` counter.
///
/// Cheap to clone (an `Option<Arc<AtomicU64>>`); clones share the cell.
/// The default value is a detached no-op handle, so instrumented
/// structs can hold a `Counter` unconditionally.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached, always-enabled counter not owned by any registry.
    pub fn standalone() -> Self {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.fetch_add(1, ORD);
        }
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, ORD);
        }
    }

    /// Current value (0 when detached).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(ORD))
    }

    /// Whether this handle is backed by a live cell.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

// ---------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------

/// A last-write-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A detached, always-enabled gauge not owned by any registry.
    pub fn standalone() -> Self {
        Gauge(Some(Arc::new(AtomicU64::new(0f64.to_bits()))))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), ORD);
        }
    }

    /// Current value (0.0 when detached).
    pub fn get(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |g| f64::from_bits(g.load(ORD)))
    }

    /// Whether this handle is backed by a live cell.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Shared state behind a [`Histogram`] handle.
#[derive(Debug)]
struct HistogramCell {
    /// Inclusive upper bounds of the finite buckets, strictly
    /// increasing. One implicit `+Inf` bucket follows.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` per-bucket counts (last is the overflow
    /// bucket).
    counts: Vec<AtomicU64>,
    /// Total observations.
    count: AtomicU64,
    /// Saturating sum of observed values — a histogram that has seen
    /// `u64::MAX` worth of nanoseconds reports a pegged sum rather than
    /// a wrapped one.
    sum: AtomicU64,
    /// Smallest observation (`u64::MAX` until the first observe).
    min: AtomicU64,
    /// Largest observation.
    max: AtomicU64,
}

/// A fixed-bucket histogram of `u64` samples (by convention,
/// nanoseconds for latency series).
///
/// Observation is a binary search over the bucket bounds plus four
/// relaxed atomic ops; no locks, no allocation. Quantiles are estimated
/// by linear interpolation inside the selected bucket, clamped to the
/// observed min/max, so `p50`/`p95` are exact to within one bucket's
/// resolution (buckets double, so the relative error is bounded by 2×
/// and in practice far less).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

/// A summary of a histogram's state, as read at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of all observations.
    pub sum: u64,
    /// Smallest observation, if any.
    pub min: Option<u64>,
    /// Largest observation, if any.
    pub max: Option<u64>,
    /// Estimated median.
    pub p50: Option<u64>,
    /// Estimated 95th percentile.
    pub p95: Option<u64>,
    /// Estimated 99th percentile.
    pub p99: Option<u64>,
}

impl HistogramSnapshot {
    /// Mean of the observations, if any (saturating sum over count).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// The default latency bucket layout: 27 buckets doubling from 250 ns
/// to ~8.4 s, plus the implicit `+Inf` overflow bucket. Documented in
/// DESIGN.md §Observability.
pub fn duration_buckets_ns() -> Vec<u64> {
    (0..26).map(|i| 250u64 << i).collect()
}

impl Histogram {
    /// A detached, always-enabled histogram not owned by any registry
    /// (used by runtime shard stats, which exist independently of any
    /// registry). `bounds` must be non-empty and strictly increasing.
    pub fn standalone(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bucket bounds must strictly increase");
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Some(Arc::new(HistogramCell {
            bounds,
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        })))
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            let idx = h.bounds.partition_point(|&b| b < v);
            h.counts[idx].fetch_add(1, ORD);
            h.count.fetch_add(1, ORD);
            // Saturating accumulation: a pegged sum beats a wrapped one.
            let _ = h.sum.fetch_update(ORD, ORD, |s| Some(s.saturating_add(v)));
            h.min.fetch_min(v, ORD);
            h.max.fetch_max(v, ORD);
        }
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        if self.0.is_some() {
            self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Starts a span; the elapsed time is recorded when the returned
    /// guard drops. On a detached handle this never reads the clock.
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span { hist: self, start: self.0.as_ref().map(|_| Instant::now()) }
    }

    /// Like [`Histogram::span`], but only reads the clock when `sample`
    /// is true; otherwise the returned guard is inert. Hot paths use
    /// this to time every Nth operation: two clock reads per recorded
    /// span dominate the cost of instrumentation on sub-microsecond
    /// operations, so sampling keeps the quantile series while making
    /// the common case a single branch.
    #[inline]
    pub fn span_if(&self, sample: bool) -> Span<'_> {
        Span {
            hist: self,
            start: if sample { self.0.as_ref().map(|_| Instant::now()) } else { None },
        }
    }

    /// Whether this handle is backed by a live cell.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Total observations (0 when detached).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count.load(ORD))
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the selected bucket. `None` when empty or detached.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let h = self.0.as_ref()?;
        let total = h.count.load(ORD);
        if total == 0 {
            return None;
        }
        let min = h.min.load(ORD);
        let max = h.max.load(ORD);
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, c) in h.counts.iter().enumerate() {
            let n = c.load(ORD);
            if n == 0 {
                cum += n;
                continue;
            }
            if cum + n >= rank {
                // Interpolate inside bucket i, clamped to observed range.
                let lo = if i == 0 { min } else { h.bounds[i - 1].max(min) };
                let hi = if i < h.bounds.len() { h.bounds[i].min(max) } else { max };
                let hi = hi.max(lo);
                let frac = (rank - cum) as f64 / n as f64;
                return Some(lo + ((hi - lo) as f64 * frac).round() as u64);
            }
            cum += n;
        }
        Some(max)
    }

    /// Reads the histogram's state at one instant.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let Some(h) = self.0.as_ref() else {
            return HistogramSnapshot::default();
        };
        let count = h.count.load(ORD);
        let present = count > 0;
        HistogramSnapshot {
            count,
            sum: h.sum.load(ORD),
            min: present.then(|| h.min.load(ORD)),
            max: present.then(|| h.max.load(ORD)),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Cumulative `(upper_bound, count)` pairs, ending with the
    /// overflow bucket as `(None, total)`. Empty when detached.
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        let Some(h) = self.0.as_ref() else { return Vec::new() };
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(h.counts.len());
        for (i, c) in h.counts.iter().enumerate() {
            cum += c.load(ORD);
            out.push((h.bounds.get(i).copied(), cum));
        }
        out
    }
}

/// A drop guard recording elapsed wall time into a [`Histogram`].
/// Created by [`Histogram::span`]; when the histogram is detached the
/// guard holds no `Instant` and drop is free.
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Discards the span without recording it.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.observe_duration(start.elapsed());
        }
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct RegistryInner {
    /// name → (help, metric); BTreeMap keeps exposition order stable.
    metrics: Mutex<std::collections::BTreeMap<String, (String, Metric)>>,
}

/// A named collection of metrics.
///
/// `Registry::new()` is enabled; [`Registry::disabled`] (also the
/// `Default`) hands out detached no-op handles from every constructor,
/// so instrumentation can be threaded unconditionally and switched off
/// without a recompile. Clones share the underlying map.
#[derive(Clone, Debug, Default)]
pub struct Registry(Option<Arc<RegistryInner>>);

impl Registry {
    /// An enabled registry.
    pub fn new() -> Self {
        Registry(Some(Arc::new(RegistryInner {
            metrics: Mutex::new(std::collections::BTreeMap::new()),
        })))
    }

    /// A disabled registry: every handle it hands out is a detached
    /// no-op whose operations cost one branch.
    pub fn disabled() -> Self {
        Registry(None)
    }

    /// Whether metrics registered here are live.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let Some(inner) = &self.0 else { return Counter(None) };
        let mut map = inner.metrics.lock().unwrap();
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::Counter(Counter::standalone())));
        match &entry.1 {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let Some(inner) = &self.0 else { return Gauge(None) };
        let mut map = inner.metrics.lock().unwrap();
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::Gauge(Gauge::standalone())));
        match &entry.1 {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the histogram registered under `name` with the default
    /// latency buckets ([`duration_buckets_ns`]), creating it on first
    /// use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, duration_buckets_ns())
    }

    /// Like [`Registry::histogram`] with explicit bucket bounds; the
    /// bounds are only consulted when the histogram is first created.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram_with(&self, name: &str, help: &str, bounds: Vec<u64>) -> Histogram {
        let Some(inner) = &self.0 else { return Histogram(None) };
        let mut map = inner.metrics.lock().unwrap();
        let entry = map.entry(name.to_string()).or_insert_with(|| {
            (help.to_string(), Metric::Histogram(Histogram::standalone(bounds)))
        });
        match &entry.1 {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format 0.0.4. Histogram sample names must not carry labels;
    /// counters and gauges may embed a `{key="value"}` label suffix in
    /// their registered name (see [`labeled`]).
    pub fn render_prometheus(&self) -> String {
        let Some(inner) = &self.0 else { return String::new() };
        let map = inner.metrics.lock().unwrap();
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, (help, metric)) in map.iter() {
            let base = name.split('{').next().unwrap_or(name);
            if base != last_base {
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# HELP {base} {help}\n# TYPE {base} {kind}\n"));
                last_base = base.to_string();
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", fmt_f64(g.get()))),
                Metric::Histogram(h) => {
                    for (bound, cum) in h.cumulative_buckets() {
                        match bound {
                            Some(b) => {
                                out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cum}\n"));
                            }
                            None => {
                                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
                            }
                        }
                    }
                    let snap = h.snapshot();
                    out.push_str(&format!("{name}_sum {}\n", snap.sum));
                    out.push_str(&format!("{name}_count {}\n", snap.count));
                }
            }
        }
        out
    }

    /// Renders every registered metric as a JSON object with schema
    /// `stardust-metrics/v1`:
    ///
    /// ```json
    /// {"schema":"stardust-metrics/v1",
    ///  "counters":{"name":1,…},
    ///  "gauges":{"name":0.5,…},
    ///  "histograms":{"name":{"count":…,"sum":…,"min":…,"max":…,
    ///                        "p50":…,"p95":…,"p99":…},…}}
    /// ```
    ///
    /// Key order is stable (sorted by metric name). Empty histograms
    /// report `null` for min/max/quantiles.
    pub fn render_json(&self) -> String {
        let Some(inner) = &self.0 else {
            return "{\"schema\":\"stardust-metrics/v1\",\"counters\":{},\"gauges\":{},\
                    \"histograms\":{}}"
                .to_string();
        };
        let map = inner.metrics.lock().unwrap();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for (name, (_, metric)) in map.iter() {
            let key = json::escape(name);
            match metric {
                Metric::Counter(c) => counters.push(format!("\"{key}\":{}", c.get())),
                Metric::Gauge(g) => gauges.push(format!("\"{key}\":{}", fmt_f64(g.get()))),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    hists.push(format!(
                        "\"{key}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"p50\":{},\"p95\":{},\"p99\":{}}}",
                        s.count,
                        s.sum,
                        fmt_opt(s.min),
                        fmt_opt(s.max),
                        fmt_opt(s.p50),
                        fmt_opt(s.p95),
                        fmt_opt(s.p99),
                    ));
                }
            }
        }
        format!(
            "{{\"schema\":\"stardust-metrics/v1\",\"counters\":{{{}}},\"gauges\":{{{}}},\
             \"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

/// Formats `name{key="value",…}` for per-instance series (e.g. one
/// gauge per shard). Values are JSON/Prometheus-escaped.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", json::escape(v))).collect();
    format!("{name}{{{}}}", body.join(","))
}

fn fmt_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

/// Formats an f64 so that integral values have no fractional part and
/// the output round-trips through the JSON parser.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("stardust_test_total", "test counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same cell.
        assert_eq!(reg.counter("stardust_test_total", "test counter").get(), 5);
        let g = reg.gauge("stardust_test_ratio", "test gauge");
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
    }

    #[test]
    fn disabled_registry_is_noop() {
        let reg = Registry::disabled();
        let c = reg.counter("x", "");
        let g = reg.gauge("y", "");
        let h = reg.histogram("z", "");
        c.inc();
        g.set(1.0);
        h.observe(10);
        {
            let _span = h.span();
        }
        assert!(!c.is_enabled() && !g.is_enabled() && !h.is_enabled());
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(
            reg.render_json(),
            "{\"schema\":\"stardust-metrics/v1\",\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert!(reg.render_prometheus().is_empty());
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = Histogram::standalone(vec![10, 20, 40, 80]);
        for v in 1..=100u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, (1..=100u64).sum::<u64>());
        assert_eq!(s.min, Some(1));
        assert_eq!(s.max, Some(100));
        // p50 of 1..=100 is ~50; bucket (40,80] holds ranks 41..=80 so
        // interpolation lands within that bucket.
        let p50 = s.p50.unwrap();
        assert!((40..=80).contains(&p50), "p50 = {p50}");
        // p99 lands in the overflow bucket, clamped to max.
        assert!(s.p99.unwrap() <= 100);
    }

    #[test]
    fn histogram_sum_saturates() {
        let h = Histogram::standalone(vec![1]);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.snapshot().sum, u64::MAX);
    }

    #[test]
    fn span_records_into_histogram() {
        let h = Histogram::standalone(duration_buckets_ns());
        {
            let _span = h.span();
            std::hint::black_box(0u64);
        }
        assert_eq!(h.count(), 1);
        let cancelled = h.span();
        cancelled.cancel();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn prometheus_rendering_shapes() {
        let reg = Registry::new();
        reg.counter("a_total", "a help").add(3);
        reg.counter(&labeled("a_total", &[("shard", "1")]), "a help").add(2);
        reg.gauge("b", "b help").set(1.5);
        reg.histogram_with("c_ns", "c help", vec![10, 100]).observe(50);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total 3"));
        assert!(text.contains("a_total{shard=\"1\"} 2"));
        assert!(text.contains("b 1.5"));
        assert!(text.contains("c_ns_bucket{le=\"10\"} 0"));
        assert!(text.contains("c_ns_bucket{le=\"100\"} 1"));
        assert!(text.contains("c_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("c_ns_sum 50"));
        assert!(text.contains("c_ns_count 1"));
        // TYPE emitted once per base name even with labeled series.
        assert_eq!(text.matches("# TYPE a_total").count(), 1);
    }

    #[test]
    fn json_rendering_parses_back() {
        let reg = Registry::new();
        reg.counter("events_total", "events").add(7);
        reg.gauge("rate", "rate").set(0.125);
        reg.histogram_with("lat_ns", "latency", vec![8, 64]).observe(9);
        let doc = json::parse(&reg.render_json()).expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(json::Value::as_str), Some("stardust-metrics/v1"));
        assert_eq!(
            doc.get("counters").and_then(|c| c.get("events_total")).and_then(json::Value::as_u64),
            Some(7)
        );
        assert_eq!(
            doc.get("gauges").and_then(|g| g.get("rate")).and_then(json::Value::as_f64),
            Some(0.125)
        );
        let hist = doc.get("histograms").and_then(|h| h.get("lat_ns")).expect("histogram entry");
        assert_eq!(hist.get("count").and_then(json::Value::as_u64), Some(1));
        assert_eq!(hist.get("min").and_then(json::Value::as_u64), Some(9));
    }
}
