//! Protocol robustness: the codec round-trips every message exactly,
//! and no byte-level damage — truncation, bit flips, hostile lengths —
//! ever panics. Damage is either detected (typed error) or the frame
//! is simply incomplete (`NeedMore`), in the style of the WAL damage
//! sweep in `crates/runtime/tests/persistence.rs`.

use proptest::prelude::*;
use stardust_runtime::ClassStats;
use stardust_server::protocol::{
    encode_frame, parse_frame, ErrorCode, FrameParse, MetricsFormat, QuotaKind, Reply, Request,
    DEFAULT_MAX_FRAME, FRAME_HEADER_LEN,
};

fn any_value() -> impl Strategy<Value = f64> {
    // Finite values only: the protocol round-trips bits exactly, but
    // `PartialEq` on NaN would fail the equality assert.
    -1.0e12_f64..1.0e12_f64
}

fn any_token() -> impl Strategy<Value = String> {
    (0u64..1u64 << 48).prop_map(|v| format!("token-{v:x}"))
}

fn any_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        any_token().prop_map(|token| Request::Hello { token }),
        proptest::collection::vec((any::<u32>(), any_value()), 0..64)
            .prop_map(|items| Request::Append { items }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(stream, window)| Request::AggregateInterval { stream, window }),
        Just(Request::ClassStats),
        Just(Request::CorrelatedPairs),
        any::<bool>().prop_map(|json| Request::Metrics {
            format: if json { MetricsFormat::Json } else { MetricsFormat::Prometheus },
        }),
        Just(Request::Ping),
        Just(Request::Goodbye),
    ]
}

fn any_class_stats() -> impl Strategy<Value = ClassStats> {
    proptest::collection::vec(any::<u64>(), 7).prop_map(|v| {
        let mut s = ClassStats::default();
        s.aggregate.checks = v[0];
        s.aggregate.candidates = v[1];
        s.aggregate.true_alarms = v[2];
        s.trend.candidates = v[3];
        s.trend.matches = v[4];
        s.correlation.reported = v[5];
        s.correlation.true_pairs = v[6];
        s
    })
}

fn any_reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        (any_token(), any::<u32>(), any::<u64>()).prop_map(|(tenant, streams, append_rate)| {
            Reply::HelloOk { tenant, streams, append_rate }
        }),
        any::<u32>().prop_map(|appended| Reply::AppendOk { appended }),
        (any::<u32>(), proptest::collection::vec(any::<u32>(), 0..32))
            .prop_map(|(retry_after_ms, rejected)| Reply::Busy { retry_after_ms, rejected }),
        (any::<bool>(), any::<u32>(), any_token()).prop_map(|(rate, retry_after_ms, detail)| {
            Reply::QuotaExceeded {
                kind: if rate { QuotaKind::AppendRate } else { QuotaKind::StreamCount },
                retry_after_ms,
                detail,
            }
        }),
        Just(Reply::AggregateInterval(None)),
        (any_value(), any_value()).prop_map(|(lo, hi)| Reply::AggregateInterval(Some((lo, hi)))),
        any_class_stats().prop_map(Reply::ClassStats),
        proptest::collection::vec((any::<u32>(), any::<u32>(), any_value()), 0..16)
            .prop_map(Reply::CorrelatedPairs),
        (any::<bool>(), any_token()).prop_map(|(json, payload)| Reply::Metrics {
            format: if json { MetricsFormat::Json } else { MetricsFormat::Prometheus },
            payload,
        }),
        Just(Reply::Pong),
        any_token().prop_map(|detail| Reply::Error { code: ErrorCode::BadMessage, detail }),
        Just(Reply::Bye),
    ]
}

/// Feeds `bytes` through the parser the way the server's read loop
/// does, decoding complete frames until the buffer is exhausted or the
/// stream turns out damaged. Every outcome is legal except a panic.
fn scan_stream(bytes: &[u8], decode_requests: bool) -> usize {
    let mut buf = bytes.to_vec();
    let mut frames = 0;
    loop {
        match parse_frame(&buf, DEFAULT_MAX_FRAME) {
            FrameParse::Frame { consumed } => {
                let payload = &buf[FRAME_HEADER_LEN..consumed];
                if decode_requests {
                    let _ = Request::decode(payload);
                } else {
                    let _ = Reply::decode(payload);
                }
                buf.drain(..consumed);
                frames += 1;
            }
            FrameParse::NeedMore(_) | FrameParse::TooLarge(_) | FrameParse::BadCrc => {
                return frames
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Every request round-trips bit-exactly through frame + payload
    /// codec.
    #[test]
    fn request_round_trip(req in any_request()) {
        let framed = encode_frame(&req.encode());
        let FrameParse::Frame { consumed } = parse_frame(&framed, DEFAULT_MAX_FRAME) else {
            panic!("encoded frame did not parse");
        };
        prop_assert_eq!(consumed, framed.len());
        let decoded = Request::decode(&framed[FRAME_HEADER_LEN..consumed]).unwrap();
        prop_assert_eq!(decoded, req);
    }

    /// Every reply round-trips bit-exactly.
    #[test]
    fn reply_round_trip(reply in any_reply()) {
        let framed = encode_frame(&reply.encode());
        let FrameParse::Frame { consumed } = parse_frame(&framed, DEFAULT_MAX_FRAME) else {
            panic!("encoded frame did not parse");
        };
        let decoded = Reply::decode(&framed[FRAME_HEADER_LEN..consumed]).unwrap();
        prop_assert_eq!(decoded, reply);
    }

    /// Arbitrary bytes never panic the parser or the decoders.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        scan_stream(&bytes, true);
        scan_stream(&bytes, false);
        let _ = Request::decode(&bytes);
        let _ = Reply::decode(&bytes);
    }

    /// A valid multi-frame stream with one flipped bit anywhere is
    /// either caught (CRC/length) or confined to one frame; and any
    /// truncation just reads as an incomplete stream.
    #[test]
    fn corruption_sweep(
        reqs in proptest::collection::vec(any_request(), 1..5),
        damage_byte in any::<u32>(),
        damage_bit in 0u8..8,
        cut in any::<u32>(),
    ) {
        let mut stream = Vec::new();
        for r in &reqs {
            stream.extend_from_slice(&encode_frame(&r.encode()));
        }
        let clean = scan_stream(&stream, true);
        prop_assert_eq!(clean, reqs.len());

        // Bit flip: never a panic; never MORE frames than were sent.
        let mut flipped = stream.clone();
        let pos = damage_byte as usize % flipped.len();
        flipped[pos] ^= 1 << damage_bit;
        let seen = scan_stream(&flipped, true);
        prop_assert!(seen <= reqs.len());

        // Truncation: a prefix yields at most the full frame count and
        // never panics.
        let cut = cut as usize % (stream.len() + 1);
        let seen = scan_stream(&stream[..cut], true);
        prop_assert!(seen <= reqs.len());
    }
}

/// Exhaustive single-frame damage sweep: every byte, every bit, of a
/// representative frame. The parse must flag the frame (`BadCrc` /
/// `TooLarge` / `NeedMore`) or the decoder must reject or reinterpret
/// the payload — in all cases without panicking, and a corrupted
/// payload can never masquerade as valid with the *original* checksum.
#[test]
fn exhaustive_frame_damage() {
    let req = Request::Append { items: vec![(7, 3.25), (1, -2.5), (0, 0.0)] };
    let framed = encode_frame(&req.encode());
    for byte in 0..framed.len() {
        for bit in 0..8 {
            let mut damaged = framed.clone();
            damaged[byte] ^= 1 << bit;
            match parse_frame(&damaged, DEFAULT_MAX_FRAME) {
                FrameParse::Frame { consumed } => {
                    // Only the length/CRC header can still frame-parse
                    // (a longer-but-consistent declared length cannot:
                    // the CRC covers the payload bytes).
                    let _ = Request::decode(&damaged[FRAME_HEADER_LEN..consumed]);
                    panic!(
                        "bit {bit} of byte {byte}: damaged frame passed CRC — \
                         a 1-bit flip must always be detected"
                    );
                }
                FrameParse::BadCrc | FrameParse::TooLarge(_) | FrameParse::NeedMore(_) => {}
            }
        }
    }
}
