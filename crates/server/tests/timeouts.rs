//! Connection-lifetime behavior: per-connection read timeouts, the
//! idle-connection reaper, and wire-level abuse over a real socket —
//! every case must end in a typed error reply or a clean disconnect,
//! never a hang and never a panic.

mod common;

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use stardust_runtime::{RuntimeConfig, ShardedRuntime};
use stardust_server::protocol::{
    encode_frame, parse_frame, FrameParse, FRAME_HEADER_LEN, NET_MAGIC,
};
use stardust_server::{Client, ErrorCode, Reply, Request, Server};

use common::{fast_config, single_tenant, spec_for, workload};

const TOKEN: &str = "t0-token";

fn start_server() -> Server {
    let (streams, r_max) = workload(11, 4, 96);
    let spec = spec_for(&streams, r_max);
    let rt = ShardedRuntime::launch(
        &spec,
        4,
        RuntimeConfig { shards: 2, queue_capacity: 64, ..RuntimeConfig::default() },
    )
    .unwrap();
    Server::start(
        "127.0.0.1:0",
        rt,
        single_tenant(4),
        fast_config(),
        stardust_telemetry::Registry::new(),
    )
    .unwrap()
}

/// Reads frames off a raw socket until one decodes, the peer closes, or
/// the deadline passes.
fn read_one_reply(stream: &mut TcpStream, deadline: Duration) -> Option<Reply> {
    stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    let start = Instant::now();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    while start.elapsed() < deadline {
        if let FrameParse::Frame { consumed } = parse_frame(&buf, 1 << 20) {
            return Reply::decode(&buf[FRAME_HEADER_LEN..consumed]).ok();
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return None,
        }
    }
    None
}

/// Waits until reading hits EOF (server closed) or the deadline passes;
/// returns true on EOF.
fn wait_for_eof(stream: &mut TcpStream, deadline: Duration) -> bool {
    stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    let start = Instant::now();
    let mut chunk = [0u8; 4096];
    while start.elapsed() < deadline {
        match stream.read(&mut chunk) {
            Ok(0) => return true,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return true, // reset counts as closed
        }
    }
    false
}

/// Deterministic idle-reap: an authenticated client that goes silent is
/// told `Error(IdleTimeout)` and disconnected once the idle window
/// (400 ms in the test config) elapses.
#[test]
fn silent_client_is_reaped() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(NET_MAGIC).unwrap();
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic).unwrap();
    assert_eq!(&magic, NET_MAGIC);
    stream.write_all(&encode_frame(&Request::Hello { token: TOKEN.into() }.encode())).unwrap();
    match read_one_reply(&mut stream, Duration::from_secs(2)) {
        Some(Reply::HelloOk { .. }) => {}
        other => panic!("expected HelloOk, got {other:?}"),
    }

    // Go silent. Within the idle window (+ slack) the server must send
    // the typed idle error and close the connection.
    let started = Instant::now();
    match read_one_reply(&mut stream, Duration::from_secs(5)) {
        Some(Reply::Error { code: ErrorCode::IdleTimeout, .. }) => {}
        other => panic!("expected Error(IdleTimeout), got {other:?}"),
    }
    assert!(
        started.elapsed() >= Duration::from_millis(300),
        "idle reap fired before the idle window"
    );
    assert!(wait_for_eof(&mut stream, Duration::from_secs(2)), "server left the socket open");
    server.shutdown();
}

/// A client that never even sends the magic is cut off at the idle
/// window too — the handshake read has the same deadline.
#[test]
fn silent_pre_handshake_client_is_reaped() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    assert!(wait_for_eof(&mut stream, Duration::from_secs(5)), "handshake never timed out");
    server.shutdown();
}

/// A frame that starts but never finishes trips the read timeout with a
/// typed `BadMessage` error.
#[test]
fn half_frame_times_out() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(NET_MAGIC).unwrap();
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic).unwrap();

    let frame = encode_frame(&Request::Hello { token: TOKEN.into() }.encode());
    stream.write_all(&frame[..frame.len() - 3]).unwrap(); // stall mid-frame
    match read_one_reply(&mut stream, Duration::from_secs(5)) {
        Some(Reply::Error { code: ErrorCode::BadMessage, .. }) => {}
        other => panic!("expected Error(BadMessage), got {other:?}"),
    }
    assert!(wait_for_eof(&mut stream, Duration::from_secs(2)));
    server.shutdown();
}

/// Wrong protocol magic: clean disconnect, no reply, no panic.
#[test]
fn bad_magic_disconnects() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(b"GARBAGE!").unwrap();
    assert!(wait_for_eof(&mut stream, Duration::from_secs(2)));
    server.shutdown();
}

/// A corrupted frame checksum gets the typed `BadCrc` error and a
/// disconnect (the byte stream cannot be resynchronized).
#[test]
fn bad_crc_is_typed_then_disconnected() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(NET_MAGIC).unwrap();
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic).unwrap();

    let mut frame = encode_frame(&Request::Ping.encode());
    let last = frame.len() - 1;
    frame[last] ^= 0xFF;
    stream.write_all(&frame).unwrap();
    match read_one_reply(&mut stream, Duration::from_secs(2)) {
        Some(Reply::Error { code: ErrorCode::BadCrc, .. }) => {}
        other => panic!("expected Error(BadCrc), got {other:?}"),
    }
    assert!(wait_for_eof(&mut stream, Duration::from_secs(2)));
    server.shutdown();
}

/// An oversized frame header is rejected before any allocation with the
/// typed `FrameTooLarge` error.
#[test]
fn oversized_frame_is_typed() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(NET_MAGIC).unwrap();
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic).unwrap();

    let mut header = Vec::new();
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    stream.write_all(&header).unwrap();
    match read_one_reply(&mut stream, Duration::from_secs(2)) {
        Some(Reply::Error { code: ErrorCode::FrameTooLarge, .. }) => {}
        other => panic!("expected Error(FrameTooLarge), got {other:?}"),
    }
    assert!(wait_for_eof(&mut stream, Duration::from_secs(2)));
    server.shutdown();
}

/// A payload that frames correctly but does not decode gets a typed
/// `BadMessage` reply and the connection *stays usable*.
#[test]
fn undecodable_payload_keeps_connection() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(NET_MAGIC).unwrap();
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic).unwrap();

    stream.write_all(&encode_frame(&[0x7F, 1, 2, 3])).unwrap(); // unknown tag
    match read_one_reply(&mut stream, Duration::from_secs(2)) {
        Some(Reply::Error { code: ErrorCode::BadMessage, .. }) => {}
        other => panic!("expected Error(BadMessage), got {other:?}"),
    }
    stream.write_all(&encode_frame(&Request::Ping.encode())).unwrap();
    match read_one_reply(&mut stream, Duration::from_secs(2)) {
        Some(Reply::Pong) => {}
        other => panic!("expected Pong after the bad payload, got {other:?}"),
    }
    server.shutdown();
}

/// Graceful drain says `Bye` to connected-but-quiet clients.
#[test]
fn drain_says_bye() {
    let server = start_server();
    let (mut client, _) = Client::connect(server.local_addr(), TOKEN).unwrap();
    client.ping().unwrap();
    let handle = std::thread::spawn(move || server.shutdown());
    // Once the drain flag lands, requests fail (Bye or a closed
    // socket); until then pings may still succeed.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match client.ping() {
            Err(_) => break,
            Ok(()) => {
                assert!(Instant::now() < deadline, "server never started draining");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    let report = handle.join().unwrap();
    assert_eq!(report.stats.total_appends(), 0);
}
