//! Shared fixtures for the server integration tests.

// Each test binary compiles this module separately and uses a subset.
#![allow(dead_code)]

use std::path::PathBuf;
use std::time::Duration;

use stardust_core::query::aggregate::WindowSpec;
use stardust_core::transform::TransformKind;
use stardust_datagen::random_walk::{observed_r_max, random_walk_streams};
use stardust_runtime::{AggregateSpec, MonitorSpec, TrendPattern, TrendSpec};
use stardust_server::{ServerConfig, TenantConfig};

pub const BASE_WINDOW: usize = 16;
pub const LEVELS: usize = 3;

/// A fresh temp directory namespaced to this test binary + pid.
pub fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sd-server-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Seeded random-walk workload plus its observed r_max.
pub fn workload(seed: u64, n_streams: usize, n_values: usize) -> (Vec<Vec<f64>>, f64) {
    let streams = random_walk_streams(seed, n_streams, n_values);
    let r_max = observed_r_max(&streams);
    (streams, r_max)
}

/// Aggregate + trend spec whose thresholds the workload actually
/// crosses, so event-set equality tests are not vacuous. Both classes
/// are per-stream (interleaving-invariant), which is what makes the
/// multi-client equivalence audits exact.
pub fn spec_for(streams: &[Vec<f64>], r_max: f64) -> MonitorSpec {
    let window = 2 * BASE_WINDOW;
    let max_sum = streams
        .iter()
        .flat_map(|s| s.windows(window).map(|w| w.iter().sum::<f64>()))
        .fold(f64::MIN, f64::max);
    let pattern: Vec<f64> = streams[0][8..8 + window].to_vec();
    MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_aggregates(AggregateSpec {
            transform: TransformKind::Sum,
            windows: vec![WindowSpec { window, threshold: max_sum * 0.98 }],
            box_capacity: 4,
        })
        .with_trends(TrendSpec {
            coeffs: 4,
            box_capacity: 4,
            patterns: vec![TrendPattern { sequence: pattern, radius: 0.05 }],
        })
}

/// One unlimited tenant owning the whole stream space.
pub fn single_tenant(streams: u32) -> Vec<TenantConfig> {
    vec![TenantConfig { name: "t0".into(), token: "t0-token".into(), streams, append_rate: 0 }]
}

/// Server config with short, test-friendly timeouts.
pub fn fast_config() -> ServerConfig {
    ServerConfig {
        idle_timeout: Duration::from_millis(400),
        read_timeout: Duration::from_millis(250),
        write_timeout: Duration::from_secs(2),
        tick: Duration::from_millis(10),
        ..ServerConfig::default()
    }
}
