//! End-to-end equivalence and quota behavior over a real socket.
//!
//! The load-bearing assertions: N concurrent clients appending disjoint
//! streams through the server produce *bit-identical* event sets to the
//! same workload run directly through `ShardedRuntime` — including
//! across a server restart with persistence enabled — and quota/
//! backpressure rejections come back as typed replies, never as
//! disconnects or silent buffering.
//!
//! Aggregate and trend events depend only on each stream's own value
//! sequence, so they are invariant to how concurrent clients interleave
//! — the multi-client audits are exact. Correlation events depend on
//! cross-stream arrival order and are covered by the single-client test
//! (deterministic interleaving); see DESIGN.md §Network service for the
//! residual.

mod common;

use std::sync::Arc;
use std::time::Duration;

use stardust_core::unified::Event;
use stardust_datagen::random_walk::random_walk_streams;
use stardust_runtime::{
    sort_events, Batch, CorrelationSpec, FaultPlan, MonitorSpec, PersistConfig, RuntimeConfig,
    ShardedRuntime,
};
use stardust_server::{
    AppendOutcome, Client, ClientError, ErrorCode, MetricsFormat, QuotaKind, Server, ServerConfig,
    TenantConfig,
};
use stardust_telemetry::{json, Registry};

use common::{fast_config, single_tenant, spec_for, tempdir, workload, BASE_WINDOW, LEVELS};

const TOKEN: &str = "t0-token";
const SHARDS: usize = 2;
const QUEUE: usize = 256;

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig { shards: SHARDS, queue_capacity: QUEUE, ..RuntimeConfig::default() }
}

/// Ground truth: the whole workload row-major through a direct runtime.
fn direct_events(spec: &MonitorSpec, streams: &[Vec<f64>]) -> Vec<Event> {
    let rt = ShardedRuntime::launch(spec, streams.len(), runtime_config()).unwrap();
    let n = streams[0].len();
    for t in 0..n {
        let batch: Batch = streams.iter().enumerate().map(|(g, s)| (g as u32, s[t])).collect();
        rt.submit_blocking(&batch).unwrap();
    }
    let mut events = rt.shutdown().events;
    sort_events(&mut events);
    events
}

/// Runs one client per stream, each appending its own column in chunks,
/// all concurrently. Returns when every client is done.
fn run_clients(addr: std::net::SocketAddr, streams: &[Vec<f64>], lo: usize, hi: usize) {
    std::thread::scope(|scope| {
        for (g, s) in streams.iter().enumerate() {
            let col = &s[lo..hi];
            scope.spawn(move || {
                let (mut client, hello) = Client::connect(addr, TOKEN).unwrap();
                assert_eq!(hello.tenant, "t0");
                for chunk in col.chunks(16) {
                    let items: Vec<(u32, f64)> = chunk.iter().map(|&v| (g as u32, v)).collect();
                    client.append_all(&items).unwrap();
                }
                client.goodbye().unwrap();
            });
        }
    });
}

/// N concurrent clients over disjoint streams == the direct runtime,
/// event set compared bit-for-bit.
#[test]
fn multi_client_equivalence() {
    const N: usize = 8;
    let (streams, r_max) = workload(42, N, 192);
    let spec = spec_for(&streams, r_max);
    let expected = direct_events(&spec, &streams);
    assert!(!expected.is_empty(), "vacuous equivalence: reference run emitted nothing");

    let rt = ShardedRuntime::launch(&spec, N, runtime_config()).unwrap();
    let server = Server::start(
        "127.0.0.1:0",
        rt,
        single_tenant(N as u32),
        ServerConfig::default(),
        Registry::new(),
    )
    .unwrap();
    run_clients(server.local_addr(), &streams, 0, streams[0].len());
    let mut got = server.shutdown().events;
    sort_events(&mut got);
    assert_eq!(got, expected, "event sets diverged between socket and direct ingest");
}

/// Same equivalence across a full stop/start cycle with persistence:
/// half the workload, graceful shutdown (WAL flush), reopen from disk,
/// second half. The union of both sessions' events must equal one
/// uninterrupted direct run.
#[test]
fn equivalence_across_restart() {
    const N: usize = 6;
    let (streams, r_max) = workload(43, N, 160);
    let spec = spec_for(&streams, r_max);
    let expected = direct_events(&spec, &streams);
    assert!(!expected.is_empty(), "vacuous equivalence: reference run emitted nothing");

    let dir = tempdir("restart");
    let half = streams[0].len() / 2;
    let mut got: Vec<Event> = Vec::new();

    for (lo, hi) in [(0, half), (half, streams[0].len())] {
        let (rt, _report) =
            ShardedRuntime::open(&spec, N, runtime_config(), PersistConfig::new(&dir)).unwrap();
        let server = Server::start(
            "127.0.0.1:0",
            rt,
            single_tenant(N as u32),
            ServerConfig::default(),
            Registry::new(),
        )
        .unwrap();
        run_clients(server.local_addr(), &streams, lo, hi);
        got.extend(server.shutdown().events);
    }
    sort_events(&mut got);
    assert_eq!(got, expected, "restart changed the delivered event set");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Correlation events depend on cross-stream interleaving, so they are
/// audited with a single client whose batch sequence exactly mirrors
/// the direct run.
#[test]
fn correlation_equivalence_single_client() {
    const N: usize = 4;
    let streams = {
        // Two near-identical streams guarantee correlation reports.
        // *Pushed* correlation events are detected within a shard, so
        // the twin must land on stream 0's shard: with `g % 2` sharding
        // that is stream 2. (The pulled `correlated_pairs` query spans
        // shards; see `cross_shard_pairs_are_tenant_filtered`.)
        let mut s = random_walk_streams(7, N, 128);
        let twin: Vec<f64> = s[0].iter().map(|v| v + 1e-9).collect();
        s[2] = twin;
        s
    };
    let r_max = stardust_datagen::random_walk::observed_r_max(&streams);
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_correlations(CorrelationSpec { coeffs: 4, radius: 0.5 });
    let expected = direct_events(&spec, &streams);
    assert!(!expected.is_empty(), "vacuous: no correlation events in the reference run");

    let rt = ShardedRuntime::launch(&spec, N, runtime_config()).unwrap();
    let server = Server::start(
        "127.0.0.1:0",
        rt,
        single_tenant(N as u32),
        ServerConfig::default(),
        Registry::new(),
    )
    .unwrap();
    let (mut client, _) = Client::connect(server.local_addr(), TOKEN).unwrap();
    let n = streams[0].len();
    for t in 0..n {
        let items: Vec<(u32, f64)> =
            streams.iter().enumerate().map(|(g, s)| (g as u32, s[t])).collect();
        client.append_all(&items).unwrap();
    }
    // The wire-level correlation query agrees with the direct one.
    let direct = {
        let rt = ShardedRuntime::launch(&spec, N, runtime_config()).unwrap();
        for t in 0..n {
            let batch: Batch = streams.iter().enumerate().map(|(g, s)| (g as u32, s[t])).collect();
            rt.submit_blocking(&batch).unwrap();
        }
        let pairs = rt.correlated_pairs().unwrap();
        rt.shutdown();
        pairs
    };
    let over_wire = client.correlated_pairs().unwrap();
    assert_eq!(over_wire, direct, "correlated_pairs diverged over the wire");
    client.goodbye().unwrap();

    let mut got = server.shutdown().events;
    sort_events(&mut got);
    assert_eq!(got, expected, "correlation events diverged between socket and direct ingest");
}

/// Cross-shard pairs flow through the collector's sketch-prune path and
/// stay tenant-filtered over the wire: each tenant sees exactly the
/// pairs whose *both* ends live in its namespace, in tenant-local ids.
/// A correlated pair spanning two tenants is visible to neither.
#[test]
fn cross_shard_pairs_are_tenant_filtered() {
    const N: usize = 6;
    let streams = {
        let mut s = random_walk_streams(9, N, 128);
        // Twin (0, 1): within tenant a, cross-shard under `g % 2`.
        s[1] = s[0].iter().map(|v| v + 1e-9).collect();
        // Twin (3, 4): spans tenants a and b, also cross-shard.
        s[4] = s[3].iter().map(|v| v + 1e-9).collect();
        s
    };
    let r_max = stardust_datagen::random_walk::observed_r_max(&streams);
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_correlations(CorrelationSpec { coeffs: 4, radius: 0.5 });
    let n = streams[0].len();

    // Unfiltered ground truth through a direct runtime.
    let direct = {
        let rt = ShardedRuntime::launch(&spec, N, runtime_config()).unwrap();
        for t in 0..n {
            let batch: Batch = streams.iter().enumerate().map(|(g, s)| (g as u32, s[t])).collect();
            rt.submit_blocking(&batch).unwrap();
        }
        let pairs = rt.correlated_pairs().unwrap();
        rt.shutdown();
        pairs
    };
    assert!(
        direct.iter().any(|&(a, b, _)| (a, b) == (0, 1)),
        "vacuous: within-tenant cross-shard twin not detected: {direct:?}"
    );
    assert!(
        direct.iter().any(|&(a, b, _)| (a, b) == (3, 4)),
        "vacuous: tenant-spanning twin not detected: {direct:?}"
    );

    let registry = Registry::new();
    let rt = ShardedRuntime::launch(
        &spec,
        N,
        RuntimeConfig { telemetry: Some(registry.clone()), ..runtime_config() },
    )
    .unwrap();
    let tenants = vec![
        TenantConfig { name: "a".into(), token: "a-token".into(), streams: 4, append_rate: 0 },
        TenantConfig { name: "b".into(), token: "b-token".into(), streams: 2, append_rate: 0 },
    ];
    let server =
        Server::start("127.0.0.1:0", rt, tenants, ServerConfig::default(), Registry::new())
            .unwrap();
    let addr = server.local_addr();
    let (mut a, _) = Client::connect(addr, "a-token").unwrap();
    let (mut b, _) = Client::connect(addr, "b-token").unwrap();
    for t in 0..n {
        let tenant_a: Vec<(u32, f64)> = (0..4).map(|g| (g as u32, streams[g][t])).collect();
        let tenant_b: Vec<(u32, f64)> = (0..2).map(|l| (l as u32, streams[4 + l][t])).collect();
        a.append_all(&tenant_a).unwrap();
        b.append_all(&tenant_b).unwrap();
    }

    // Tenant a: exactly the direct pairs fully inside globals 0..4
    // (its base is 0, so local ids equal global ids). The (3, 4) pair
    // crosses the namespace boundary and must be filtered out.
    let seen_a = a.correlated_pairs().unwrap();
    let expect_a: Vec<(u32, u32, f64)> =
        direct.iter().copied().filter(|&(x, y, _)| x < 4 && y < 4).collect();
    assert_eq!(seen_a, expect_a, "tenant a's view diverged from the filtered ground truth");
    assert!(seen_a.iter().any(|&(x, y, _)| (x, y) == (0, 1)));
    assert!(
        seen_a.iter().all(|&(x, y, _)| x < 4 && y < 4),
        "tenant a saw ids outside its namespace: {seen_a:?}"
    );

    // Tenant b: streams 4 and 5 are uncorrelated, and the (3, 4) pair
    // has one end outside its namespace — it must see nothing.
    let seen_b = b.correlated_pairs().unwrap();
    assert!(seen_b.is_empty(), "tenant b saw pairs outside its namespace: {seen_b:?}");

    // The runtime's cross-shard counters prove the wire queries rode
    // the sketch-prune path, not a same-shard shortcut.
    let doc = json::parse(&registry.render_json()).expect("runtime metrics JSON must parse");
    let counters = doc.get("counters").expect("counters object");
    let confirmed = counters
        .get("stardust_cross_corr_confirmed_total")
        .and_then(|v| v.as_u64())
        .expect("cross-corr confirmed counter present");
    assert!(confirmed >= 1, "no cross-shard pair was ever confirmed");
    let exchanges = counters
        .get("stardust_sketch_exchanges_total")
        .and_then(|v| v.as_u64())
        .expect("sketch exchange counter present");
    assert!(exchanges > 0, "sketches were never exchanged");

    a.goodbye().unwrap();
    b.goodbye().unwrap();
    server.shutdown();
}

/// Authentication and both quota classes answer with typed replies and
/// leave the connection in a defined state.
#[test]
fn auth_and_quota_replies_are_typed() {
    let (streams, r_max) = workload(44, 6, 96);
    let spec = spec_for(&streams, r_max);
    let rt = ShardedRuntime::launch(&spec, 6, runtime_config()).unwrap();
    let tenants = vec![
        TenantConfig { name: "a".into(), token: "a-token".into(), streams: 4, append_rate: 0 },
        TenantConfig { name: "b".into(), token: "b-token".into(), streams: 2, append_rate: 64 },
    ];
    let server =
        Server::start("127.0.0.1:0", rt, tenants, ServerConfig::default(), Registry::new())
            .unwrap();
    let addr = server.local_addr();

    // Bad token: typed Unauthenticated, connection closed by server.
    match Client::connect(addr, "wrong-token") {
        Err(ClientError::Server { code: ErrorCode::Unauthenticated, .. }) => {}
        Err(other) => panic!("expected Unauthenticated, got {other:?}"),
        Ok(_) => panic!("expected Unauthenticated, got a session"),
    }

    // Stream-count quota: appends beyond the namespace are rejected
    // whole, with a typed reply, and the connection stays usable.
    let (mut a, hello_a) = Client::connect(addr, "a-token").unwrap();
    assert_eq!((hello_a.tenant.as_str(), hello_a.streams), ("a", 4));
    match a.append(&[(0, 1.0), (4, 2.0)]).unwrap() {
        AppendOutcome::Quota { kind: QuotaKind::StreamCount, .. } => {}
        other => panic!("expected StreamCount quota, got {other:?}"),
    }
    a.ping().unwrap();

    // Tenant isolation: tenant b's stream 0 is global stream 4; the
    // runtime sees tenant-local ids offset into disjoint slices.
    let (mut b, hello_b) = Client::connect(addr, "b-token").unwrap();
    assert_eq!((hello_b.tenant.as_str(), hello_b.streams, hello_b.append_rate), ("b", 2, 64));
    match b.append(&[(2, 1.0)]).unwrap() {
        AppendOutcome::Quota { kind: QuotaKind::StreamCount, .. } => {}
        other => panic!("tenant b must not reach stream 2, got {other:?}"),
    }

    // Append-rate quota: a burst beyond 64 values/s gets a typed
    // AppendRate rejection with a non-zero retry hint; nothing from the
    // rejected batch is admitted.
    let burst: Vec<(u32, f64)> = (0..64).map(|i| (i % 2, i as f64)).collect();
    match b.append(&burst).unwrap() {
        AppendOutcome::Appended(64) => {}
        other => panic!("first burst should fit the bucket, got {other:?}"),
    }
    match b.append(&[(0, 1.0)]).unwrap() {
        AppendOutcome::Quota { kind: QuotaKind::AppendRate, retry_after_ms, .. } => {
            assert!(retry_after_ms > 0, "rate rejection must quote a wait");
        }
        other => panic!("expected AppendRate quota, got {other:?}"),
    }
    b.ping().unwrap();

    a.goodbye().unwrap();
    b.goodbye().unwrap();
    let report = server.shutdown();
    // Only the one admitted burst ever reached the runtime.
    assert_eq!(report.stats.total_appends(), 64);
}

/// Shard-queue backpressure surfaces as a typed `Busy` reply carrying
/// the exact rejected indices, and retrying only those indices admits
/// every value exactly once.
#[test]
fn busy_reply_lists_rejected_indices_exactly_once() {
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, 100.0).with_aggregates(
        stardust_runtime::AggregateSpec {
            transform: stardust_core::transform::TransformKind::Sum,
            windows: vec![stardust_core::query::aggregate::WindowSpec {
                window: 2 * BASE_WINDOW,
                threshold: 1e12,
            }],
            box_capacity: 4,
        },
    );
    // Stall the only shard on its first batch so the 2-deep queue
    // fills deterministically.
    let plan = Arc::new(FaultPlan::new().stall(0, 1, Duration::from_millis(400)));
    let rt = ShardedRuntime::launch(
        &spec,
        2,
        RuntimeConfig {
            shards: 1,
            queue_capacity: 2,
            fault_plan: Some(plan),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let server =
        Server::start("127.0.0.1:0", rt, single_tenant(2), fast_config(), Registry::new()).unwrap();
    let (mut client, _) = Client::connect(server.local_addr(), TOKEN).unwrap();

    let batch: Vec<(u32, f64)> = (0..8).map(|i| (i % 2, i as f64)).collect();
    let mut admitted = 0u64;
    let mut saw_busy = false;
    let mut pending: Vec<Vec<(u32, f64)>> = (0..8).map(|_| batch.clone()).collect();
    while let Some(items) = pending.pop() {
        match client.append(&items).unwrap() {
            AppendOutcome::Appended(n) => admitted += u64::from(n),
            AppendOutcome::Busy { retry_after_ms, rejected } => {
                saw_busy = true;
                assert!(!rejected.is_empty());
                assert!(rejected.iter().all(|&i| (i as usize) < items.len()));
                // With one shard, rejection is all-or-nothing.
                assert_eq!(rejected.len(), items.len());
                admitted += (items.len() - rejected.len()) as u64;
                std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms.max(1))));
                pending.push(rejected.iter().map(|&i| items[i as usize]).collect::<Vec<_>>());
            }
            other => panic!("unexpected append outcome: {other:?}"),
        }
    }
    assert!(saw_busy, "a stalled 2-deep queue never produced a Busy reply");

    client.goodbye().unwrap();
    let report = server.shutdown();
    assert_eq!(
        report.stats.total_appends(),
        admitted,
        "values were lost or duplicated across Busy retries"
    );
    assert_eq!(admitted, 8 * batch.len() as u64);
}

/// A wedged shard must not trap `append_all` in its retry loop
/// forever: once the [`stardust_server::RetryPolicy`] budget is spent,
/// the client gives up with the typed `RetriesExhausted` error.
#[test]
fn append_all_gives_up_typed_when_the_server_stays_busy() {
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, 100.0).with_aggregates(
        stardust_runtime::AggregateSpec {
            transform: stardust_core::transform::TransformKind::Sum,
            windows: vec![stardust_core::query::aggregate::WindowSpec {
                window: 2 * BASE_WINDOW,
                threshold: 1e12,
            }],
            box_capacity: 4,
        },
    );
    // Stall the only shard well past the retry budget's total sleep
    // (3 rounds × ≤ 4 ms) so every retry still finds the queue full.
    let plan = Arc::new(FaultPlan::new().stall(0, 1, Duration::from_millis(600)));
    let rt = ShardedRuntime::launch(
        &spec,
        2,
        RuntimeConfig {
            shards: 1,
            queue_capacity: 2,
            fault_plan: Some(plan),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let server =
        Server::start("127.0.0.1:0", rt, single_tenant(2), fast_config(), Registry::new()).unwrap();
    let (mut client, _) = Client::connect(server.local_addr(), TOKEN).unwrap();
    client.set_retry_policy(stardust_server::RetryPolicy {
        base_ms: 1,
        cap_ms: 4,
        max_attempts: 3,
        seed: 42,
    });

    // Fill the 2-deep queue behind the stalled worker, then ask
    // `append_all` to push one more batch: every round is `Busy`.
    let batch: Vec<(u32, f64)> = (0..8).map(|i| (i % 2, i as f64)).collect();
    for _ in 0..3 {
        let _ = client.append(&batch).unwrap();
    }
    match client.append_all(&batch) {
        Err(ClientError::RetriesExhausted { attempts: 3 }) => {}
        other => panic!("expected RetriesExhausted after 3 rounds, got {other:?}"),
    }
    // The connection survives giving up; the server drains normally.
    client.ping().unwrap();
    client.goodbye().unwrap();
    server.shutdown();
}

/// Pipelined clients (whole windows of append frames in flight, group-
/// admitted server-side) produce the same bit-identical event set as
/// the direct runtime — batching at the socket must not change what
/// the monitor computes.
#[test]
fn pipelined_append_equivalence() {
    const N: usize = 8;
    const PIPELINE: usize = 4;
    let (streams, r_max) = workload(44, N, 192);
    let spec = spec_for(&streams, r_max);
    let expected = direct_events(&spec, &streams);
    assert!(!expected.is_empty(), "vacuous equivalence: reference run emitted nothing");

    let rt = ShardedRuntime::launch(&spec, N, runtime_config()).unwrap();
    let server = Server::start(
        "127.0.0.1:0",
        rt,
        single_tenant(N as u32),
        ServerConfig::default(),
        Registry::new(),
    )
    .unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for (g, s) in streams.iter().enumerate() {
            scope.spawn(move || {
                let (mut client, _) = Client::connect(addr, TOKEN).unwrap();
                for window in s.chunks(16 * PIPELINE) {
                    let batches: Vec<Vec<(u32, f64)>> = window
                        .chunks(16)
                        .map(|chunk| chunk.iter().map(|&v| (g as u32, v)).collect())
                        .collect();
                    let outcomes = client.append_group(&batches).unwrap();
                    assert_eq!(outcomes.len(), batches.len(), "one reply per pipelined frame");
                    for (outcome, batch) in outcomes.iter().zip(&batches) {
                        assert_eq!(*outcome, AppendOutcome::Appended(batch.len() as u32));
                    }
                }
                client.goodbye().unwrap();
            });
        }
    });
    let mut got = server.shutdown().events;
    sort_events(&mut got);
    assert_eq!(got, expected, "event sets diverged between pipelined and direct ingest");
}

/// A pipelined group answers every frame individually: a frame a quota
/// rejects (out-of-range stream) contributes nothing to the group and
/// gets its own typed reply, while its neighbors are admitted — and
/// the admitted count is exact.
#[test]
fn pipelined_group_answers_frames_individually() {
    let spec = spec_for(&workload(45, 2, 64).0, 100.0);
    let rt = ShardedRuntime::launch(&spec, 2, runtime_config()).unwrap();
    let server =
        Server::start("127.0.0.1:0", rt, single_tenant(2), fast_config(), Registry::new()).unwrap();
    let (mut client, _) = Client::connect(server.local_addr(), TOKEN).unwrap();

    let good: Vec<(u32, f64)> = vec![(0, 1.0), (1, 2.0)];
    let bad: Vec<(u32, f64)> = vec![(0, 3.0), (9, 4.0)]; // stream 9 outside 0..2
    let outcomes = client.append_group(&[good.clone(), bad, good.clone()]).unwrap();
    assert_eq!(outcomes.len(), 3);
    assert_eq!(outcomes[0], AppendOutcome::Appended(2));
    assert!(
        matches!(&outcomes[1], AppendOutcome::Quota { kind: QuotaKind::StreamCount, .. }),
        "out-of-range frame must be quota-rejected, got {:?}",
        outcomes[1]
    );
    assert_eq!(outcomes[2], AppendOutcome::Appended(2));

    client.goodbye().unwrap();
    let report = server.shutdown();
    assert_eq!(report.stats.total_appends(), 4, "only the two good frames were admitted");
}

/// `stardust metrics` over the wire: both export formats round-trip,
/// the JSON parses against the `stardust-metrics/v1` schema, and the
/// server series reflect the traffic just sent (golden assertions).
#[test]
fn metrics_over_the_wire() {
    let (streams, r_max) = workload(45, 4, 96);
    let spec = spec_for(&streams, r_max);
    let registry = Registry::new();
    let rt = ShardedRuntime::launch(
        &spec,
        4,
        RuntimeConfig { telemetry: Some(registry.clone()), ..runtime_config() },
    )
    .unwrap();
    let server =
        Server::start("127.0.0.1:0", rt, single_tenant(4), ServerConfig::default(), registry)
            .unwrap();
    let (mut client, _) = Client::connect(server.local_addr(), TOKEN).unwrap();
    client.append_all(&[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]).unwrap();

    // JSON: parses, carries the schema tag, and the per-tenant accepted
    // counter equals exactly the four values just appended.
    let payload = client.metrics(MetricsFormat::Json).unwrap();
    let doc = json::parse(&payload).expect("metrics JSON must parse");
    assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("stardust-metrics/v1"));
    let counters = doc.get("counters").expect("counters object");
    assert_eq!(
        counters
            .get("stardust_server_tenant_accepted_values_total{tenant=\"t0\"}")
            .and_then(|v| v.as_u64()),
        Some(4),
        "accepted-values counter disagrees with the appends sent"
    );
    assert_eq!(
        doc.get("gauges")
            .and_then(|g| g.get("stardust_server_connections_active"))
            .and_then(|v| v.as_f64()),
        Some(1.0),
        "exactly one connection is open"
    );
    let requests = counters
        .get("stardust_server_requests_total")
        .and_then(|v| v.as_u64())
        .expect("requests counter present");
    assert!(requests >= 2, "hello + append must have been counted, got {requests}");

    // The runtime's own series share the registry, so one wire fetch
    // exports both layers.
    assert!(
        counters.as_object().unwrap().iter().any(|(k, _)| k.starts_with("stardust_runtime")
            || k.starts_with("stardust_ingest")
            || k.starts_with("stardust_")),
        "runtime series missing from the shared registry"
    );

    // Prometheus: well-formed exposition with HELP/TYPE headers for the
    // server series.
    let prom = client.metrics(MetricsFormat::Prometheus).unwrap();
    assert!(prom.contains("# HELP stardust_server_requests_total"));
    assert!(prom.contains("# TYPE stardust_server_requests_total counter"));
    assert!(prom.contains("stardust_server_tenant_accepted_values_total{tenant=\"t0\"} 4"));

    client.goodbye().unwrap();
    server.shutdown();
}
