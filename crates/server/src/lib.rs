//! stardust-server — a multi-client TCP ingest/query front end over
//! [`stardust_runtime::ShardedRuntime`].
//!
//! The paper's monitor — and the sharded runtime scaling it out — live
//! in-process. This crate puts a socket in front: many clients append
//! to and query one runtime over a versioned, length-prefixed binary
//! protocol (`SDNET001`, CRC-32 per frame), with
//!
//! * **tenant namespaces** — each authenticated token maps to a
//!   contiguous, private slice of the stream space, addressed with
//!   tenant-local ids ([`TenantConfig`]);
//! * **quotas** — per-tenant stream counts and token-bucket append
//!   rates, rejected with typed `QuotaExceeded` replies;
//! * **admission control** — full shard queues surface as typed
//!   `Busy{retry_after_ms, rejected}` replies carrying exactly the
//!   batch indices to resend; the server never buffers unboundedly on
//!   behalf of a slow shard;
//! * **graceful drain** — [`Server::shutdown`] stops accepting, says
//!   `Bye`, drains every queued batch through the runtime, and flushes
//!   the WAL.
//!
//! Everything is `std` — `TcpListener`, a thread per connection, no
//! external dependencies.
//!
//! # Example
//!
//! ```
//! use stardust_core::transform::TransformKind;
//! use stardust_core::query::aggregate::WindowSpec;
//! use stardust_runtime::{AggregateSpec, MonitorSpec, RuntimeConfig, ShardedRuntime};
//! use stardust_server::{Client, Server, ServerConfig, TenantConfig};
//!
//! let spec = MonitorSpec::new(8, 2, 10.0).with_aggregates(AggregateSpec {
//!     transform: TransformKind::Sum,
//!     windows: vec![WindowSpec { window: 16, threshold: 1.0e9 }],
//!     box_capacity: 4,
//! });
//! let rt = ShardedRuntime::launch(
//!     &spec,
//!     4,
//!     RuntimeConfig { shards: 2, queue_capacity: 64, ..RuntimeConfig::default() },
//! )
//! .unwrap();
//! let tenants = vec![TenantConfig {
//!     name: "acme".into(),
//!     token: "acme-token".into(),
//!     streams: 4,
//!     append_rate: 0,
//! }];
//! let server = Server::start(
//!     "127.0.0.1:0",
//!     rt,
//!     tenants,
//!     ServerConfig::default(),
//!     stardust_telemetry::Registry::new(),
//! )
//! .unwrap();
//!
//! let (mut client, hello) = Client::connect(server.local_addr(), "acme-token").unwrap();
//! assert_eq!(hello.streams, 4);
//! client.append_all(&[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]).unwrap();
//! client.ping().unwrap();
//! client.goodbye().unwrap();
//!
//! let report = server.shutdown();
//! assert_eq!(report.stats.total_appends(), 4);
//! ```

pub mod protocol;

mod client;
mod server;
mod telemetry;
mod tenant;

pub use client::{AppendAllStats, AppendOutcome, Client, ClientError, HelloInfo, RetryPolicy};
pub use protocol::{ErrorCode, MetricsFormat, QuotaKind, Reply, Request, WireError, NET_MAGIC};
pub use server::{Server, ServerConfig, ServerError, ServerReport};
pub use tenant::TenantConfig;
