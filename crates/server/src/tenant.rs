//! Tenant namespaces and quotas.
//!
//! Each tenant owns a **contiguous slice of the runtime's global stream
//! space**: tenant `i` with `streams_i` streams gets global ids
//! `[base_i, base_i + streams_i)` where `base_i = Σ_{j<i} streams_j`.
//! Clients always speak tenant-local ids `0..streams_i`; the server
//! adds/subtracts the base at the wire boundary, so one tenant can
//! never read or write another's streams.
//!
//! Append-rate quotas are enforced by a classic token bucket: capacity
//! equals the per-second rate (one second of burst), refilled
//! continuously. A rejected admission (`Busy` from the shard queues)
//! refunds its tokens — the client pays for admitted values only.

use std::sync::Mutex;
use std::time::Instant;

/// Static configuration of one tenant.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Tenant name (shows up in metrics labels and `HelloOk`).
    pub name: String,
    /// The shared secret clients present in `Hello`.
    pub token: String,
    /// Number of streams in the tenant's namespace.
    pub streams: u32,
    /// Append-rate quota in values/second; `0` disables rate limiting.
    pub append_rate: u64,
}

/// A continuously-refilled token bucket guarding one tenant's append
/// rate. `rate == 0` means unlimited (every take succeeds).
#[derive(Debug)]
pub(crate) struct TokenBucket {
    rate: u64,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    /// Available tokens, at most `rate` (one second of burst).
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    pub(crate) fn new(rate: u64) -> TokenBucket {
        TokenBucket {
            rate,
            state: Mutex::new(BucketState { tokens: rate as f64, last_refill: Instant::now() }),
        }
    }

    /// Takes `n` tokens, or reports how many milliseconds until they
    /// could be available. `n` larger than a full bucket is granted
    /// whenever the bucket is full (the bucket cannot otherwise ever
    /// satisfy it).
    pub(crate) fn try_take(&self, n: u64) -> Result<(), u32> {
        if self.rate == 0 {
            return Ok(());
        }
        let mut s = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let now = Instant::now();
        let cap = self.rate as f64;
        s.tokens = (s.tokens + now.duration_since(s.last_refill).as_secs_f64() * cap).min(cap);
        s.last_refill = now;
        let need = (n as f64).min(cap);
        if s.tokens >= need {
            s.tokens -= n as f64;
            Ok(())
        } else {
            let wait_s = (need - s.tokens) / cap;
            Err((wait_s * 1000.0).ceil().max(1.0) as u32)
        }
    }

    /// Returns `n` tokens (admission failed downstream; the client will
    /// retry and should not pay twice).
    pub(crate) fn refund(&self, n: u64) {
        if self.rate == 0 {
            return;
        }
        let mut s = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        s.tokens = (s.tokens + n as f64).min(self.rate as f64);
    }
}

/// Runtime state of one tenant: its config, namespace base offset, and
/// rate limiter.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub(crate) cfg: TenantConfig,
    /// First global stream id of this tenant's slice.
    pub(crate) base: u32,
    pub(crate) bucket: TokenBucket,
}

impl TenantState {
    /// Tenant-local id → global id, if in range.
    pub(crate) fn to_global(&self, local: u32) -> Option<u32> {
        (local < self.cfg.streams).then(|| self.base + local)
    }

    /// Global id → tenant-local id, if inside this tenant's slice.
    pub(crate) fn to_local(&self, global: u32) -> Option<u32> {
        global.checked_sub(self.base).filter(|&l| l < self.cfg.streams)
    }
}

/// Lays out tenants over the global stream space and validates the
/// total matches the runtime. Returns the states or an error message.
pub(crate) fn layout(
    tenants: &[TenantConfig],
    n_streams: usize,
) -> Result<Vec<TenantState>, String> {
    if tenants.is_empty() {
        return Err("at least one tenant is required".into());
    }
    let mut states = Vec::with_capacity(tenants.len());
    let mut base = 0u32;
    for t in tenants {
        if t.streams == 0 {
            return Err(format!("tenant '{}' has zero streams", t.name));
        }
        if states.iter().any(|s: &TenantState| s.cfg.token == t.token || s.cfg.name == t.name) {
            return Err(format!("tenant '{}' duplicates a name or token", t.name));
        }
        states.push(TenantState { cfg: t.clone(), base, bucket: TokenBucket::new(t.append_rate) });
        base = base
            .checked_add(t.streams)
            .ok_or_else(|| "tenant stream counts overflow u32".to_string())?;
    }
    if base as usize != n_streams {
        return Err(format!("tenant streams sum to {base} but the runtime monitors {n_streams}"));
    }
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(name: &str, token: &str, streams: u32, rate: u64) -> TenantConfig {
        TenantConfig { name: name.into(), token: token.into(), streams, append_rate: rate }
    }

    #[test]
    fn layout_assigns_disjoint_bases() {
        let states = layout(&[tenant("a", "ta", 3, 0), tenant("b", "tb", 5, 0)], 8).unwrap();
        assert_eq!(states[0].base, 0);
        assert_eq!(states[1].base, 3);
        assert_eq!(states[0].to_global(2), Some(2));
        assert_eq!(states[0].to_global(3), None);
        assert_eq!(states[1].to_global(0), Some(3));
        assert_eq!(states[1].to_local(7), Some(4));
        assert_eq!(states[1].to_local(2), None);
    }

    #[test]
    fn layout_rejects_mismatch_and_duplicates() {
        assert!(layout(&[tenant("a", "ta", 3, 0)], 8).is_err());
        assert!(layout(&[tenant("a", "t", 4, 0), tenant("b", "t", 4, 0)], 8).is_err());
        assert!(layout(&[], 0).is_err());
    }

    #[test]
    fn bucket_enforces_rate_and_refunds() {
        let b = TokenBucket::new(100);
        assert!(b.try_take(100).is_ok());
        let wait = b.try_take(50).unwrap_err();
        assert!(wait >= 1, "empty bucket must quote a wait, got {wait}ms");
        b.refund(50);
        assert!(b.try_take(50).is_ok());
    }

    #[test]
    fn zero_rate_is_unlimited() {
        let b = TokenBucket::new(0);
        assert!(b.try_take(u64::MAX).is_ok());
        b.refund(10);
        assert!(b.try_take(u64::MAX).is_ok());
    }
}
