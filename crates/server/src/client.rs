//! A blocking `SDNET001` client, used by the CLI load driver, the
//! integration tests, and as the reference implementation for anyone
//! speaking the protocol from another language.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use stardust_runtime::ClassStats;

use crate::protocol::{
    encode_frame, parse_frame, ErrorCode, FrameParse, MetricsFormat, QuotaKind, Reply, Request,
    WireError, DEFAULT_MAX_FRAME, FRAME_HEADER_LEN, NET_MAGIC,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket error (including read timeout).
    Io(std::io::Error),
    /// The server's bytes did not decode.
    Wire(WireError),
    /// The server answered with a typed [`Reply::Error`].
    Server {
        /// The error class.
        code: ErrorCode,
        /// Server-provided detail.
        detail: String,
    },
    /// The server said `Bye` (graceful drain) where a reply was
    /// expected.
    ServerClosed,
    /// The server answered with a reply of the wrong type.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Wire(e) => write!(f, "undecodable server bytes: {e}"),
            ClientError::Server { code, detail } => {
                write!(f, "server error {code:?}: {detail}")
            }
            ClientError::ServerClosed => f.write_str("server is draining (Bye)"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The server's `HelloOk` answer.
#[derive(Debug, Clone)]
pub struct HelloInfo {
    /// Tenant name.
    pub tenant: String,
    /// Namespace size: valid stream ids are `0..streams`.
    pub streams: u32,
    /// Append-rate quota in values/second (`0` = unlimited).
    pub append_rate: u64,
}

/// Outcome of a single [`Client::append`] round.
#[derive(Debug, Clone, PartialEq)]
pub enum AppendOutcome {
    /// Every value was admitted.
    Appended(u32),
    /// Backpressure: the listed indices were not admitted.
    Busy {
        /// Suggested backoff.
        retry_after_ms: u32,
        /// Rejected indices into the sent batch.
        rejected: Vec<u32>,
    },
    /// A tenant quota rejected the whole batch.
    Quota {
        /// Which quota.
        kind: QuotaKind,
        /// Suggested backoff (0 for non-time-based quotas).
        retry_after_ms: u32,
        /// Server-provided detail.
        detail: String,
    },
}

/// Retry accounting from [`Client::append_all`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendAllStats {
    /// `Busy` replies absorbed (partial resends performed).
    pub busy_replies: u64,
    /// `QuotaExceeded(AppendRate)` waits absorbed.
    pub rate_waits: u64,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame: u32,
}

impl Client {
    /// Connects, handshakes, and authenticates in one call.
    ///
    /// # Errors
    /// Any socket failure; [`ClientError::Server`] with
    /// [`ErrorCode::Unauthenticated`] on a bad token.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        token: &str,
    ) -> Result<(Client, HelloInfo), ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        stream.write_all(NET_MAGIC)?;
        let mut magic = [0u8; NET_MAGIC.len()];
        stream.read_exact(&mut magic)?;
        if &magic != NET_MAGIC {
            return Err(ClientError::Protocol("server did not echo the protocol magic".into()));
        }
        let mut client =
            Client { stream, buf: Vec::with_capacity(4096), max_frame: DEFAULT_MAX_FRAME };
        let info = match client.request(&Request::Hello { token: token.into() })? {
            Reply::HelloOk { tenant, streams, append_rate } => {
                HelloInfo { tenant, streams, append_rate }
            }
            other => return Err(unexpected("HelloOk", &other)),
        };
        Ok((client, info))
    }

    /// Sends one request and reads exactly one reply. `Error` replies
    /// become [`ClientError::Server`]; an unsolicited `Bye` becomes
    /// [`ClientError::ServerClosed`].
    pub fn request(&mut self, req: &Request) -> Result<Reply, ClientError> {
        self.stream.write_all(&encode_frame(&req.encode()))?;
        match self.read_reply()? {
            Reply::Error { code, detail } => Err(ClientError::Server { code, detail }),
            Reply::Bye => Err(ClientError::ServerClosed),
            reply => Ok(reply),
        }
    }

    /// Reads one framed reply off the socket (blocking, ≤ 30 s).
    pub fn read_reply(&mut self) -> Result<Reply, ClientError> {
        loop {
            match parse_frame(&self.buf, self.max_frame) {
                FrameParse::Frame { consumed } => {
                    let reply = Reply::decode(&self.buf[FRAME_HEADER_LEN..consumed])
                        .map_err(ClientError::Wire)?;
                    self.buf.drain(..consumed);
                    return Ok(reply);
                }
                FrameParse::NeedMore(_) => {
                    let mut chunk = [0u8; 8192];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(ClientError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        )));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                FrameParse::TooLarge(len) => {
                    return Err(ClientError::Wire(WireError::FrameTooLarge {
                        len,
                        max: self.max_frame,
                    }))
                }
                FrameParse::BadCrc => return Err(ClientError::Wire(WireError::BadCrc)),
            }
        }
    }

    /// One append round; quota and backpressure rejections come back as
    /// data, not errors.
    pub fn append(&mut self, items: &[(u32, f64)]) -> Result<AppendOutcome, ClientError> {
        match self.request(&Request::Append { items: items.to_vec() })? {
            Reply::AppendOk { appended } => Ok(AppendOutcome::Appended(appended)),
            Reply::Busy { retry_after_ms, rejected } => {
                Ok(AppendOutcome::Busy { retry_after_ms, rejected })
            }
            Reply::QuotaExceeded { kind, retry_after_ms, detail } => {
                Ok(AppendOutcome::Quota { kind, retry_after_ms, detail })
            }
            other => Err(unexpected("AppendOk/Busy/QuotaExceeded", &other)),
        }
    }

    /// Appends every value, absorbing `Busy` partial rejections (resend
    /// only the rejected indices, after the quoted backoff) and
    /// append-rate waits. Returns the retry accounting. Exactly-once:
    /// each value is admitted by the server exactly one time.
    ///
    /// # Errors
    /// [`ClientError::Protocol`] on a `StreamCount` quota rejection
    /// (retrying cannot fix an out-of-range id), otherwise any
    /// transport/server error.
    pub fn append_all(&mut self, items: &[(u32, f64)]) -> Result<AppendAllStats, ClientError> {
        let mut stats = AppendAllStats::default();
        let mut pending: Vec<(u32, f64)> = items.to_vec();
        while !pending.is_empty() {
            match self.append(&pending)? {
                AppendOutcome::Appended(_) => break,
                AppendOutcome::Busy { retry_after_ms, rejected } => {
                    stats.busy_replies += 1;
                    pending =
                        rejected.iter().filter_map(|&i| pending.get(i as usize).copied()).collect();
                    std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms.max(1))));
                }
                AppendOutcome::Quota { kind: QuotaKind::AppendRate, retry_after_ms, .. } => {
                    stats.rate_waits += 1;
                    std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms.max(1))));
                }
                AppendOutcome::Quota { kind: QuotaKind::StreamCount, detail, .. } => {
                    return Err(ClientError::Protocol(format!(
                        "stream-count quota cannot be retried: {detail}"
                    )));
                }
            }
        }
        Ok(stats)
    }

    /// Pipelined append: encodes one `Append` frame per batch, writes
    /// them all in a single syscall, then reads the replies back in
    /// order. The server admits the whole run as one `try_submit`
    /// group (one shard sub-batch per shard, one coalesced WAL write)
    /// and answers each frame individually, so the outcomes map
    /// one-to-one onto `batches`.
    ///
    /// # Errors
    /// Any transport error; [`ClientError::Server`] on a typed error
    /// reply; [`ClientError::ServerClosed`] on an unsolicited `Bye`.
    /// Either aborts the remaining reads — the connection should be
    /// dropped, as unread replies may still be in flight.
    pub fn append_group(
        &mut self,
        batches: &[Vec<(u32, f64)>],
    ) -> Result<Vec<AppendOutcome>, ClientError> {
        let mut wire = Vec::new();
        for items in batches {
            wire.extend_from_slice(&encode_frame(
                &Request::Append { items: items.clone() }.encode(),
            ));
        }
        self.stream.write_all(&wire)?;
        let mut out = Vec::with_capacity(batches.len());
        for _ in batches {
            match self.read_reply()? {
                Reply::AppendOk { appended } => out.push(AppendOutcome::Appended(appended)),
                Reply::Busy { retry_after_ms, rejected } => {
                    out.push(AppendOutcome::Busy { retry_after_ms, rejected })
                }
                Reply::QuotaExceeded { kind, retry_after_ms, detail } => {
                    out.push(AppendOutcome::Quota { kind, retry_after_ms, detail })
                }
                Reply::Error { code, detail } => return Err(ClientError::Server { code, detail }),
                Reply::Bye => return Err(ClientError::ServerClosed),
                other => return Err(unexpected("AppendOk/Busy/QuotaExceeded", &other)),
            }
        }
        Ok(out)
    }

    /// Pipelined [`Client::append_all`]: keeps a whole window of
    /// batches in flight per round trip, absorbing `Busy` partial
    /// rejections (only the rejected indices of each batch are resent)
    /// and append-rate waits (the whole batch is resent — a rate-
    /// rejected frame admitted nothing). Exactly-once: each value is
    /// admitted by the server exactly one time.
    ///
    /// # Errors
    /// [`ClientError::Protocol`] on a `StreamCount` quota rejection
    /// (retrying cannot fix an out-of-range id), otherwise any
    /// transport/server error.
    pub fn append_group_all(
        &mut self,
        batches: &[Vec<(u32, f64)>],
    ) -> Result<AppendAllStats, ClientError> {
        let mut stats = AppendAllStats::default();
        let mut pending: Vec<Vec<(u32, f64)>> = batches.to_vec();
        while !pending.is_empty() {
            let outcomes = self.append_group(&pending)?;
            let mut retry: Vec<Vec<(u32, f64)>> = Vec::new();
            let mut backoff_ms = 0u32;
            for (items, outcome) in pending.iter().zip(&outcomes) {
                match outcome {
                    AppendOutcome::Appended(_) => {}
                    AppendOutcome::Busy { retry_after_ms, rejected } => {
                        stats.busy_replies += 1;
                        backoff_ms = backoff_ms.max(*retry_after_ms);
                        let left: Vec<(u32, f64)> = rejected
                            .iter()
                            .filter_map(|&i| items.get(i as usize).copied())
                            .collect();
                        if !left.is_empty() {
                            retry.push(left);
                        }
                    }
                    AppendOutcome::Quota {
                        kind: QuotaKind::AppendRate, retry_after_ms, ..
                    } => {
                        stats.rate_waits += 1;
                        backoff_ms = backoff_ms.max(*retry_after_ms);
                        retry.push(items.clone());
                    }
                    AppendOutcome::Quota { kind: QuotaKind::StreamCount, detail, .. } => {
                        return Err(ClientError::Protocol(format!(
                            "stream-count quota cannot be retried: {detail}"
                        )));
                    }
                }
            }
            if !retry.is_empty() {
                std::thread::sleep(Duration::from_millis(u64::from(backoff_ms.max(1))));
            }
            pending = retry;
        }
        Ok(stats)
    }

    /// Current composed interval of one monitored aggregate window.
    pub fn aggregate_interval(
        &mut self,
        stream: u32,
        window: u32,
    ) -> Result<Option<(f64, f64)>, ClientError> {
        match self.request(&Request::AggregateInterval { stream, window })? {
            Reply::AggregateInterval(ans) => Ok(ans),
            other => Err(unexpected("AggregateInterval", &other)),
        }
    }

    /// Cumulative per-class counters, merged across shards.
    pub fn class_stats(&mut self) -> Result<ClassStats, ClientError> {
        match self.request(&Request::ClassStats)? {
            Reply::ClassStats(s) => Ok(s),
            other => Err(unexpected("ClassStats", &other)),
        }
    }

    /// Currently correlated pairs inside this tenant's namespace, in
    /// tenant-local ids.
    pub fn correlated_pairs(&mut self) -> Result<Vec<(u32, u32, f64)>, ClientError> {
        match self.request(&Request::CorrelatedPairs)? {
            Reply::CorrelatedPairs(pairs) => Ok(pairs),
            other => Err(unexpected("CorrelatedPairs", &other)),
        }
    }

    /// Fetches the server's metrics registry in the requested format.
    pub fn metrics(&mut self, format: MetricsFormat) -> Result<String, ClientError> {
        match self.request(&Request::Metrics { format })? {
            Reply::Metrics { payload, .. } => Ok(payload),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Clean close: sends `Goodbye`, waits for `Bye`, drops the socket.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.stream.write_all(&encode_frame(&Request::Goodbye.encode()))?;
        match self.read_reply()? {
            Reply::Bye => Ok(()),
            other => Err(unexpected("Bye", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Reply) -> ClientError {
    let tag = match got {
        Reply::HelloOk { .. } => "HelloOk",
        Reply::AppendOk { .. } => "AppendOk",
        Reply::Busy { .. } => "Busy",
        Reply::QuotaExceeded { .. } => "QuotaExceeded",
        Reply::AggregateInterval(_) => "AggregateInterval",
        Reply::ClassStats(_) => "ClassStats",
        Reply::CorrelatedPairs(_) => "CorrelatedPairs",
        Reply::Metrics { .. } => "Metrics",
        Reply::Pong => "Pong",
        Reply::Error { .. } => "Error",
        Reply::Bye => "Bye",
    };
    ClientError::Protocol(format!("expected {wanted}, got {tag}"))
}
