//! A blocking `SDNET001` client, used by the CLI load driver, the
//! integration tests, and as the reference implementation for anyone
//! speaking the protocol from another language.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use stardust_runtime::ClassStats;

use crate::protocol::{
    encode_frame, parse_frame, ErrorCode, FrameParse, MetricsFormat, QuotaKind, Reply, Request,
    WireError, DEFAULT_MAX_FRAME, FRAME_HEADER_LEN, NET_MAGIC,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket error (including read timeout).
    Io(std::io::Error),
    /// The server's bytes did not decode.
    Wire(WireError),
    /// The server answered with a typed [`Reply::Error`].
    Server {
        /// The error class.
        code: ErrorCode,
        /// Server-provided detail.
        detail: String,
    },
    /// The server said `Bye` (graceful drain) where a reply was
    /// expected.
    ServerClosed,
    /// The server answered with a reply of the wrong type.
    Protocol(String),
    /// The retry budget ran out: the server kept answering `Busy` or
    /// an append-rate quota rejection for every round the
    /// [`RetryPolicy`] allowed.
    RetriesExhausted {
        /// Backoff rounds performed before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Wire(e) => write!(f, "undecodable server bytes: {e}"),
            ClientError::Server { code, detail } => {
                write!(f, "server error {code:?}: {detail}")
            }
            ClientError::ServerClosed => f.write_str("server is draining (Bye)"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::RetriesExhausted { attempts } => {
                write!(f, "gave up after {attempts} backoff retries (server still busy)")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The server's `HelloOk` answer.
#[derive(Debug, Clone)]
pub struct HelloInfo {
    /// Tenant name.
    pub tenant: String,
    /// Namespace size: valid stream ids are `0..streams`.
    pub streams: u32,
    /// Append-rate quota in values/second (`0` = unlimited).
    pub append_rate: u64,
}

/// Outcome of a single [`Client::append`] round.
#[derive(Debug, Clone, PartialEq)]
pub enum AppendOutcome {
    /// Every value was admitted.
    Appended(u32),
    /// Backpressure: the listed indices were not admitted.
    Busy {
        /// Suggested backoff.
        retry_after_ms: u32,
        /// Rejected indices into the sent batch.
        rejected: Vec<u32>,
    },
    /// A tenant quota rejected the whole batch.
    Quota {
        /// Which quota.
        kind: QuotaKind,
        /// Suggested backoff (0 for non-time-based quotas).
        retry_after_ms: u32,
        /// Server-provided detail.
        detail: String,
    },
}

/// Deterministic bounded-exponential backoff for the busy/quota retry
/// loops of [`Client::append_all`] and [`Client::append_group_all`].
///
/// Attempt `n` sleeps an equal-jitter delay drawn from the step
/// `min(cap_ms, max(server_hint, base_ms · 2ⁿ))`: half the step
/// guaranteed, the other half seeded pseudo-randomly, so a fleet of
/// clients bounced by the same `Busy` reply fans back out instead of
/// thundering in again in lockstep — while any `(seed, attempt)` pair
/// stays reproducible for tests and drills. The server's
/// `retry_after_ms` hint floors the step but never pierces the cap,
/// and after [`Self::max_attempts`] rounds the client stops sleeping
/// and surfaces [`ClientError::RetriesExhausted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First backoff step in milliseconds; doubles every attempt.
    pub base_ms: u64,
    /// Ceiling on any single sleep, in milliseconds.
    pub cap_ms: u64,
    /// Backoff rounds before the client gives up. `0` retries never.
    pub max_attempts: u32,
    /// Jitter seed: same seed, same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { base_ms: 2, cap_ms: 1_000, max_attempts: 32, seed: 0x5EED_CAFE }
    }
}

impl RetryPolicy {
    /// The delay before retry `attempt` (0-based), given the server's
    /// `retry_after_ms` hint.
    pub fn delay_ms(&self, attempt: u32, server_hint_ms: u32) -> u64 {
        let exp = self.base_ms.saturating_mul(1u64 << attempt.min(32));
        let step = exp.max(u64::from(server_hint_ms)).clamp(1, self.cap_ms.max(1));
        let half = step / 2;
        let roll = splitmix64(
            self.seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        half + roll % (step - half + 1)
    }
}

/// SplitMix64 — a tiny, well-mixed PRNG step; one call per retry is
/// plenty, and it keeps the schedule dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Retry accounting from [`Client::append_all`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendAllStats {
    /// `Busy` replies absorbed (partial resends performed).
    pub busy_replies: u64,
    /// `QuotaExceeded(AppendRate)` waits absorbed.
    pub rate_waits: u64,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame: u32,
    retry: RetryPolicy,
}

impl Client {
    /// Connects, handshakes, and authenticates in one call.
    ///
    /// # Errors
    /// Any socket failure; [`ClientError::Server`] with
    /// [`ErrorCode::Unauthenticated`] on a bad token.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        token: &str,
    ) -> Result<(Client, HelloInfo), ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        stream.write_all(NET_MAGIC)?;
        let mut magic = [0u8; NET_MAGIC.len()];
        stream.read_exact(&mut magic)?;
        if &magic != NET_MAGIC {
            return Err(ClientError::Protocol("server did not echo the protocol magic".into()));
        }
        let mut client = Client {
            stream,
            buf: Vec::with_capacity(4096),
            max_frame: DEFAULT_MAX_FRAME,
            retry: RetryPolicy::default(),
        };
        let info = match client.request(&Request::Hello { token: token.into() })? {
            Reply::HelloOk { tenant, streams, append_rate } => {
                HelloInfo { tenant, streams, append_rate }
            }
            other => return Err(unexpected("HelloOk", &other)),
        };
        Ok((client, info))
    }

    /// Sends one request and reads exactly one reply. `Error` replies
    /// become [`ClientError::Server`]; an unsolicited `Bye` becomes
    /// [`ClientError::ServerClosed`].
    pub fn request(&mut self, req: &Request) -> Result<Reply, ClientError> {
        self.stream.write_all(&encode_frame(&req.encode()))?;
        match self.read_reply()? {
            Reply::Error { code, detail } => Err(ClientError::Server { code, detail }),
            Reply::Bye => Err(ClientError::ServerClosed),
            reply => Ok(reply),
        }
    }

    /// Reads one framed reply off the socket (blocking, ≤ 30 s).
    pub fn read_reply(&mut self) -> Result<Reply, ClientError> {
        loop {
            match parse_frame(&self.buf, self.max_frame) {
                FrameParse::Frame { consumed } => {
                    let reply = Reply::decode(&self.buf[FRAME_HEADER_LEN..consumed])
                        .map_err(ClientError::Wire)?;
                    self.buf.drain(..consumed);
                    return Ok(reply);
                }
                FrameParse::NeedMore(_) => {
                    let mut chunk = [0u8; 8192];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(ClientError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        )));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                FrameParse::TooLarge(len) => {
                    return Err(ClientError::Wire(WireError::FrameTooLarge {
                        len,
                        max: self.max_frame,
                    }))
                }
                FrameParse::BadCrc => return Err(ClientError::Wire(WireError::BadCrc)),
            }
        }
    }

    /// One append round; quota and backpressure rejections come back as
    /// data, not errors.
    pub fn append(&mut self, items: &[(u32, f64)]) -> Result<AppendOutcome, ClientError> {
        match self.request(&Request::Append { items: items.to_vec() })? {
            Reply::AppendOk { appended } => Ok(AppendOutcome::Appended(appended)),
            Reply::Busy { retry_after_ms, rejected } => {
                Ok(AppendOutcome::Busy { retry_after_ms, rejected })
            }
            Reply::QuotaExceeded { kind, retry_after_ms, detail } => {
                Ok(AppendOutcome::Quota { kind, retry_after_ms, detail })
            }
            other => Err(unexpected("AppendOk/Busy/QuotaExceeded", &other)),
        }
    }

    /// Replaces the backoff schedule used by the `*_all` retry loops.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Sleeps out one backoff round, or gives up typed once the
    /// policy's budget is spent.
    fn backoff(&self, attempt: &mut u32, server_hint_ms: u32) -> Result<(), ClientError> {
        if *attempt >= self.retry.max_attempts {
            return Err(ClientError::RetriesExhausted { attempts: *attempt });
        }
        std::thread::sleep(Duration::from_millis(self.retry.delay_ms(*attempt, server_hint_ms)));
        *attempt += 1;
        Ok(())
    }

    /// Appends every value, absorbing `Busy` partial rejections (resend
    /// only the rejected indices, after one [`RetryPolicy`] backoff
    /// round) and append-rate waits. Returns the retry accounting.
    /// Exactly-once: each value is admitted by the server exactly one
    /// time.
    ///
    /// # Errors
    /// [`ClientError::Protocol`] on a `StreamCount` quota rejection
    /// (retrying cannot fix an out-of-range id);
    /// [`ClientError::RetriesExhausted`] when the policy's attempt
    /// budget runs out; otherwise any transport/server error.
    pub fn append_all(&mut self, items: &[(u32, f64)]) -> Result<AppendAllStats, ClientError> {
        let mut stats = AppendAllStats::default();
        let mut pending: Vec<(u32, f64)> = items.to_vec();
        let mut attempt = 0u32;
        while !pending.is_empty() {
            match self.append(&pending)? {
                AppendOutcome::Appended(_) => break,
                AppendOutcome::Busy { retry_after_ms, rejected } => {
                    stats.busy_replies += 1;
                    pending =
                        rejected.iter().filter_map(|&i| pending.get(i as usize).copied()).collect();
                    self.backoff(&mut attempt, retry_after_ms)?;
                }
                AppendOutcome::Quota { kind: QuotaKind::AppendRate, retry_after_ms, .. } => {
                    stats.rate_waits += 1;
                    self.backoff(&mut attempt, retry_after_ms)?;
                }
                AppendOutcome::Quota { kind: QuotaKind::StreamCount, detail, .. } => {
                    return Err(ClientError::Protocol(format!(
                        "stream-count quota cannot be retried: {detail}"
                    )));
                }
            }
        }
        Ok(stats)
    }

    /// Pipelined append: encodes one `Append` frame per batch, writes
    /// them all in a single syscall, then reads the replies back in
    /// order. The server admits the whole run as one `try_submit`
    /// group (one shard sub-batch per shard, one coalesced WAL write)
    /// and answers each frame individually, so the outcomes map
    /// one-to-one onto `batches`.
    ///
    /// # Errors
    /// Any transport error; [`ClientError::Server`] on a typed error
    /// reply; [`ClientError::ServerClosed`] on an unsolicited `Bye`.
    /// Either aborts the remaining reads — the connection should be
    /// dropped, as unread replies may still be in flight.
    pub fn append_group(
        &mut self,
        batches: &[Vec<(u32, f64)>],
    ) -> Result<Vec<AppendOutcome>, ClientError> {
        let mut wire = Vec::new();
        for items in batches {
            wire.extend_from_slice(&encode_frame(
                &Request::Append { items: items.clone() }.encode(),
            ));
        }
        self.stream.write_all(&wire)?;
        let mut out = Vec::with_capacity(batches.len());
        for _ in batches {
            match self.read_reply()? {
                Reply::AppendOk { appended } => out.push(AppendOutcome::Appended(appended)),
                Reply::Busy { retry_after_ms, rejected } => {
                    out.push(AppendOutcome::Busy { retry_after_ms, rejected })
                }
                Reply::QuotaExceeded { kind, retry_after_ms, detail } => {
                    out.push(AppendOutcome::Quota { kind, retry_after_ms, detail })
                }
                Reply::Error { code, detail } => return Err(ClientError::Server { code, detail }),
                Reply::Bye => return Err(ClientError::ServerClosed),
                other => return Err(unexpected("AppendOk/Busy/QuotaExceeded", &other)),
            }
        }
        Ok(out)
    }

    /// Pipelined [`Client::append_all`]: keeps a whole window of
    /// batches in flight per round trip, absorbing `Busy` partial
    /// rejections (only the rejected indices of each batch are resent)
    /// and append-rate waits (the whole batch is resent — a rate-
    /// rejected frame admitted nothing). Exactly-once: each value is
    /// admitted by the server exactly one time.
    ///
    /// # Errors
    /// [`ClientError::Protocol`] on a `StreamCount` quota rejection
    /// (retrying cannot fix an out-of-range id);
    /// [`ClientError::RetriesExhausted`] when the policy's attempt
    /// budget runs out; otherwise any transport/server error.
    pub fn append_group_all(
        &mut self,
        batches: &[Vec<(u32, f64)>],
    ) -> Result<AppendAllStats, ClientError> {
        let mut stats = AppendAllStats::default();
        let mut pending: Vec<Vec<(u32, f64)>> = batches.to_vec();
        let mut attempt = 0u32;
        while !pending.is_empty() {
            let outcomes = self.append_group(&pending)?;
            let mut retry: Vec<Vec<(u32, f64)>> = Vec::new();
            let mut backoff_ms = 0u32;
            for (items, outcome) in pending.iter().zip(&outcomes) {
                match outcome {
                    AppendOutcome::Appended(_) => {}
                    AppendOutcome::Busy { retry_after_ms, rejected } => {
                        stats.busy_replies += 1;
                        backoff_ms = backoff_ms.max(*retry_after_ms);
                        let left: Vec<(u32, f64)> = rejected
                            .iter()
                            .filter_map(|&i| items.get(i as usize).copied())
                            .collect();
                        if !left.is_empty() {
                            retry.push(left);
                        }
                    }
                    AppendOutcome::Quota {
                        kind: QuotaKind::AppendRate, retry_after_ms, ..
                    } => {
                        stats.rate_waits += 1;
                        backoff_ms = backoff_ms.max(*retry_after_ms);
                        retry.push(items.clone());
                    }
                    AppendOutcome::Quota { kind: QuotaKind::StreamCount, detail, .. } => {
                        return Err(ClientError::Protocol(format!(
                            "stream-count quota cannot be retried: {detail}"
                        )));
                    }
                }
            }
            if !retry.is_empty() {
                self.backoff(&mut attempt, backoff_ms)?;
            }
            pending = retry;
        }
        Ok(stats)
    }

    /// Current composed interval of one monitored aggregate window.
    pub fn aggregate_interval(
        &mut self,
        stream: u32,
        window: u32,
    ) -> Result<Option<(f64, f64)>, ClientError> {
        match self.request(&Request::AggregateInterval { stream, window })? {
            Reply::AggregateInterval(ans) => Ok(ans),
            other => Err(unexpected("AggregateInterval", &other)),
        }
    }

    /// Cumulative per-class counters, merged across shards.
    pub fn class_stats(&mut self) -> Result<ClassStats, ClientError> {
        match self.request(&Request::ClassStats)? {
            Reply::ClassStats(s) => Ok(s),
            other => Err(unexpected("ClassStats", &other)),
        }
    }

    /// Currently correlated pairs inside this tenant's namespace, in
    /// tenant-local ids.
    pub fn correlated_pairs(&mut self) -> Result<Vec<(u32, u32, f64)>, ClientError> {
        match self.request(&Request::CorrelatedPairs)? {
            Reply::CorrelatedPairs(pairs) => Ok(pairs),
            other => Err(unexpected("CorrelatedPairs", &other)),
        }
    }

    /// Fetches the server's metrics registry in the requested format.
    pub fn metrics(&mut self, format: MetricsFormat) -> Result<String, ClientError> {
        match self.request(&Request::Metrics { format })? {
            Reply::Metrics { payload, .. } => Ok(payload),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Clean close: sends `Goodbye`, waits for `Bye`, drops the socket.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.stream.write_all(&encode_frame(&Request::Goodbye.encode()))?;
        match self.read_reply()? {
            Reply::Bye => Ok(()),
            other => Err(unexpected("Bye", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Reply) -> ClientError {
    let tag = match got {
        Reply::HelloOk { .. } => "HelloOk",
        Reply::AppendOk { .. } => "AppendOk",
        Reply::Busy { .. } => "Busy",
        Reply::QuotaExceeded { .. } => "QuotaExceeded",
        Reply::AggregateInterval(_) => "AggregateInterval",
        Reply::ClassStats(_) => "ClassStats",
        Reply::CorrelatedPairs(_) => "CorrelatedPairs",
        Reply::Metrics { .. } => "Metrics",
        Reply::Pong => "Pong",
        Reply::Error { .. } => "Error",
        Reply::Bye => "Bye",
    };
    ClientError::Protocol(format!("expected {wanted}, got {tag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_seeded() {
        let p = RetryPolicy { base_ms: 2, cap_ms: 100, max_attempts: 8, seed: 7 };
        let a: Vec<u64> = (0..12).map(|n| p.delay_ms(n, 0)).collect();
        let b: Vec<u64> = (0..12).map(|n| p.delay_ms(n, 0)).collect();
        assert_eq!(a, b, "same seed must reproduce the same schedule");
        let q = RetryPolicy { seed: 8, ..p };
        let c: Vec<u64> = (0..12).map(|n| q.delay_ms(n, 0)).collect();
        assert_ne!(a, c, "different seeds must jitter differently");
    }

    #[test]
    fn backoff_grows_exponentially_inside_the_jitter_band() {
        let p = RetryPolicy { base_ms: 2, cap_ms: 100, max_attempts: 8, seed: 7 };
        for n in 0..12u32 {
            let step = 2u64.saturating_mul(1 << n.min(32)).min(100);
            let d = p.delay_ms(n, 0);
            assert!(
                d >= step / 2 && d <= step,
                "attempt {n}: delay {d} outside the equal-jitter band [{}, {step}]",
                step / 2
            );
        }
    }

    #[test]
    fn server_hint_floors_the_step_but_never_pierces_the_cap() {
        let p = RetryPolicy { base_ms: 1, cap_ms: 64, max_attempts: 4, seed: 1 };
        let hinted = p.delay_ms(0, 40);
        assert!((20..=40).contains(&hinted), "hint 40 must floor the 1 ms base step: {hinted}");
        let capped = p.delay_ms(0, 10_000);
        assert!((32..=64).contains(&capped), "a huge hint must stay under the cap: {capped}");
        // Degenerate configs still sleep at least a millisecond.
        let tiny = RetryPolicy { base_ms: 0, cap_ms: 0, max_attempts: 1, seed: 0 };
        assert_eq!(tiny.delay_ms(0, 0), 1);
    }

    #[test]
    fn exhaustion_error_reports_the_attempt_count() {
        let e = ClientError::RetriesExhausted { attempts: 5 };
        assert_eq!(e.to_string(), "gave up after 5 backoff retries (server still busy)");
    }
}
