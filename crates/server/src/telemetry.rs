//! Server-side metrics, registered against a shared
//! [`stardust_telemetry::Registry`] so one `Metrics` request (or the
//! `stardust metrics` CLI) exports runtime and server series together.

use stardust_telemetry::{duration_buckets_ns, labeled, Counter, Gauge, Histogram, Registry};

use crate::tenant::TenantConfig;

/// Instruments shared by every connection handler.
#[derive(Debug)]
pub(crate) struct ServerTelemetry {
    /// Currently open client connections.
    pub(crate) connections_active: Gauge,
    /// Connections accepted over the server's lifetime.
    pub(crate) connections_total: Counter,
    /// Connections refused at the cap.
    pub(crate) connections_rejected: Counter,
    /// Connections reaped for idling past the timeout.
    pub(crate) idle_disconnects: Counter,
    /// Frames dropped for framing/CRC/parse errors.
    pub(crate) frame_errors: Counter,
    /// `Hello` attempts with an unknown token.
    pub(crate) auth_failures: Counter,
    /// `Busy` replies sent (shard-queue backpressure surfaced).
    pub(crate) busy_replies: Counter,
    /// Requests served (any type, any outcome).
    pub(crate) requests: Counter,
    /// End-to-end request service time (decode → reply written).
    pub(crate) request_latency: Histogram,
    /// Per-tenant counters, indexed like the tenant table.
    pub(crate) tenants: Vec<TenantTelemetry>,
}

/// Per-tenant accepted/rejected append accounting.
#[derive(Debug)]
pub(crate) struct TenantTelemetry {
    /// Values admitted to the runtime.
    pub(crate) accepted_values: Counter,
    /// Values rejected by shard-queue backpressure (`Busy`).
    pub(crate) rejected_busy: Counter,
    /// Values rejected by the append-rate quota.
    pub(crate) rejected_rate: Counter,
    /// Requests rejected for out-of-range stream ids.
    pub(crate) rejected_streams: Counter,
}

impl ServerTelemetry {
    pub(crate) fn new(reg: &Registry, tenants: &[TenantConfig]) -> ServerTelemetry {
        ServerTelemetry {
            connections_active: reg
                .gauge("stardust_server_connections_active", "Open client connections"),
            connections_total: reg
                .counter("stardust_server_connections_total", "Connections accepted"),
            connections_rejected: reg.counter(
                "stardust_server_connections_rejected_total",
                "Connections refused at the connection cap",
            ),
            idle_disconnects: reg.counter(
                "stardust_server_idle_disconnects_total",
                "Connections reaped after the idle timeout",
            ),
            frame_errors: reg.counter(
                "stardust_server_frame_errors_total",
                "Frames rejected for length/CRC/parse errors",
            ),
            auth_failures: reg
                .counter("stardust_server_auth_failures_total", "Hello attempts with bad tokens"),
            busy_replies: reg.counter(
                "stardust_server_busy_replies_total",
                "Busy replies sent under shard-queue backpressure",
            ),
            requests: reg.counter("stardust_server_requests_total", "Requests served"),
            request_latency: reg.histogram_with(
                "stardust_server_request_latency_ns",
                "Request service time, decode to reply written",
                duration_buckets_ns(),
            ),
            tenants: tenants
                .iter()
                .map(|t| {
                    let l = |name: &str| labeled(name, &[("tenant", &t.name)]);
                    TenantTelemetry {
                        accepted_values: reg.counter(
                            &l("stardust_server_tenant_accepted_values_total"),
                            "Values admitted to the runtime",
                        ),
                        rejected_busy: reg.counter(
                            &l("stardust_server_tenant_rejected_busy_values_total"),
                            "Values rejected by shard-queue backpressure",
                        ),
                        rejected_rate: reg.counter(
                            &l("stardust_server_tenant_rejected_rate_values_total"),
                            "Values rejected by the append-rate quota",
                        ),
                        rejected_streams: reg.counter(
                            &l("stardust_server_tenant_rejected_stream_requests_total"),
                            "Requests rejected for out-of-range stream ids",
                        ),
                    }
                })
                .collect(),
        }
    }
}
