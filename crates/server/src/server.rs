//! The `stardust` TCP server: thread-per-connection over
//! `std::net::TcpListener`, speaking [`crate::protocol`], with
//! per-tenant quotas and admission control mapped onto the runtime's
//! bounded shard queues.
//!
//! # Admission control
//!
//! Appends travel `namespace check → token bucket → ShardedRuntime::
//! try_submit`. `try_submit` is all-or-nothing *per shard sub-batch*:
//! a full shard rejects every value routed to it and accepts none, so
//! the server can tell the client exactly which batch indices were not
//! admitted — the [`Reply::Busy`] reply carries those indices plus a
//! backoff hint, and the client resends only them. Nothing is buffered
//! server-side: a full queue becomes a `Busy` reply, never unbounded
//! memory.
//!
//! # Group admission and buffered replies
//!
//! A pipelining client may have several frames in flight; the handler
//! decodes every complete frame out of each read chunk before replying
//! to any of them. A run of consecutive authenticated `Append` frames
//! is admitted as *one* `try_submit` group — one shard sub-batch per
//! shard for the whole run, which the runtime journals under one
//! coalesced WAL write — while each frame still gets its own quota
//! check and its own `AppendOk`/`Busy` reply (rejection is per shard
//! sub-batch, so the rejected global ids identify each frame's
//! rejected indices exactly). Every reply produced for the chunk is
//! encoded into one write buffer and flushed with a single `write_all`
//! — one syscall covers the whole pipelined window instead of one per
//! frame.
//!
//! # Timeouts
//!
//! The handler's socket read is a short tick; each tick it checks (a)
//! the drain flag, (b) an idle deadline (no traffic between frames),
//! and (c) a frame deadline (a frame that started but never finished).
//! A background reaper additionally shuts down sockets whose handler
//! has seen no traffic past the idle window plus a write grace —
//! covering handlers wedged in a blocking write to a stalled peer.
//!
//! # Graceful drain
//!
//! [`Server::shutdown`] stops the acceptor, tells every handler to say
//! `Bye` on its next tick, joins all threads, then runs
//! [`ShardedRuntime::shutdown`], which drains every queued batch and
//! flushes the WAL before returning the final event set.

use std::collections::HashSet;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stardust_core::unified::Event;
use stardust_runtime::{Batch, RuntimeError, RuntimeStats, ShardedRuntime};
use stardust_telemetry::Registry;

use crate::protocol::{
    encode_frame, parse_frame, ErrorCode, FrameParse, MetricsFormat, QuotaKind, Reply, Request,
    DEFAULT_MAX_FRAME, FRAME_HEADER_LEN, NET_MAGIC,
};
use crate::telemetry::ServerTelemetry;
use crate::tenant::{layout, TenantConfig, TenantState};

/// Backoff hint quoted in `Busy` replies.
const BUSY_RETRY_MS: u32 = 5;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum simultaneously open client connections; the acceptor
    /// answers `Error(TooManyConnections)` beyond it.
    pub max_connections: usize,
    /// Maximum frame payload the server will read.
    pub max_frame: u32,
    /// Disconnect (with `Error(IdleTimeout)`) a connection that sends
    /// nothing for this long between frames.
    pub idle_timeout: Duration,
    /// Disconnect a connection whose frame starts but does not finish
    /// within this window.
    pub read_timeout: Duration,
    /// Socket write timeout; a peer that stops reading is disconnected
    /// once a write blocks this long.
    pub write_timeout: Duration,
    /// Handler poll tick: drain-flag/deadline check cadence (also the
    /// reaper's scan cadence).
    pub tick: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 256,
            max_frame: DEFAULT_MAX_FRAME,
            idle_timeout: Duration::from_secs(60),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            tick: Duration::from_millis(25),
        }
    }
}

/// What a drained [`Server`] leaves behind.
#[derive(Debug)]
pub struct ServerReport {
    /// Every event the runtime emitted over the server's lifetime, in
    /// collector arrival order.
    pub events: Vec<Event>,
    /// Final runtime counters.
    pub stats: RuntimeStats,
}

/// Server startup errors.
#[derive(Debug)]
pub enum ServerError {
    /// Tenant layout does not match the runtime (or names/tokens
    /// collide).
    Config(String),
    /// Listener setup failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Config(msg) => write!(f, "server configuration rejected: {msg}"),
            ServerError::Io(e) => write!(f, "server socket error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Config(_) => None,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Reaper bookkeeping for one live connection.
struct ConnEntry {
    /// Clone of the handler's socket, for out-of-band shutdown.
    stream: TcpStream,
    /// Milliseconds (since server start) of the last observed traffic.
    last_seen: Arc<AtomicU64>,
    /// Set by the handler on exit; the reaper then drops the entry.
    done: Arc<AtomicBool>,
}

struct Inner {
    rt: ShardedRuntime,
    tenants: Vec<TenantState>,
    cfg: ServerConfig,
    tel: ServerTelemetry,
    registry: Registry,
    start: Instant,
    draining: AtomicBool,
    active: AtomicUsize,
    conns: Mutex<Vec<ConnEntry>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    events: Mutex<Vec<Event>>,
}

impl Inner {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A running ingest/query server. Call [`Server::shutdown`] to drain
/// it; dropping without shutting down leaks the background threads and
/// skips the runtime's WAL flush.
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
    collector: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr`, lays tenants out over the runtime's stream space,
    /// and starts the acceptor, reaper, and event-collector threads.
    ///
    /// # Errors
    /// [`ServerError::Config`] if tenant stream counts do not sum to
    /// the runtime's stream count (or names/tokens collide);
    /// [`ServerError::Io`] if the listener cannot bind.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        rt: ShardedRuntime,
        tenants: Vec<TenantConfig>,
        cfg: ServerConfig,
        registry: Registry,
    ) -> Result<Server, ServerError> {
        let states = layout(&tenants, rt.n_streams()).map_err(ServerError::Config)?;
        let tel = ServerTelemetry::new(&registry, &tenants);
        let listener = TcpListener::bind(addr).map_err(ServerError::Io)?;
        let local_addr = listener.local_addr().map_err(ServerError::Io)?;

        let inner = Arc::new(Inner {
            rt,
            tenants: states,
            cfg,
            tel,
            registry,
            start: Instant::now(),
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        });

        let collector = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("sd-net-collector".into())
                .spawn(move || collector_loop(&inner))
                .map_err(ServerError::Io)?
        };
        let reaper = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("sd-net-reaper".into())
                .spawn(move || reaper_loop(&inner))
                .map_err(ServerError::Io)?
        };
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("sd-net-accept".into())
                .spawn(move || accept_loop(&inner, listener))
                .map_err(ServerError::Io)?
        };

        Ok(Server {
            inner,
            local_addr,
            accept: Some(accept),
            reaper: Some(reaper),
            collector: Some(collector),
        })
    }

    /// The bound listen address (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of currently open client connections.
    pub fn active_connections(&self) -> usize {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// Graceful drain: stop accepting, say `Bye` on every connection,
    /// join all threads, then shut the runtime down (draining queued
    /// batches and flushing the WAL). Returns everything the runtime
    /// emitted.
    pub fn shutdown(self) -> ServerReport {
        let Server { inner, local_addr, accept, reaper, collector } = self;
        inner.draining.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(local_addr);
        if let Some(h) = accept {
            let _ = h.join();
        }
        let handlers = std::mem::take(&mut *lock(&inner.handlers));
        for h in handlers {
            let _ = h.join();
        }
        if let Some(h) = reaper {
            let _ = h.join();
        }
        if let Some(h) = collector {
            let _ = h.join();
        }
        let inner =
            Arc::try_unwrap(inner).unwrap_or_else(|_| unreachable!("all server threads joined"));
        inner.tel.connections_active.set(0.0);
        let mut events = inner.events.into_inner().unwrap_or_else(PoisonError::into_inner);
        let report = inner.rt.shutdown();
        events.extend(report.events);
        ServerReport { events, stats: report.stats }
    }
}

/// Moves runtime events into the server-side buffer on a short cadence
/// so `drain_events`' channel never backs up during long runs.
fn collector_loop(inner: &Inner) {
    loop {
        let evs = inner.rt.drain_events();
        if !evs.is_empty() {
            lock(&inner.events).extend(evs);
        }
        if inner.draining.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Backstop for wedged handlers: a socket with no inbound traffic past
/// the idle window plus the write grace is shut down out-of-band, which
/// errors the handler's blocking call and lets it exit.
fn reaper_loop(inner: &Inner) {
    let stale_ms =
        (inner.cfg.idle_timeout + inner.cfg.write_timeout + inner.cfg.tick).as_millis() as u64;
    loop {
        if inner.draining.load(Ordering::SeqCst) {
            return;
        }
        let now = inner.now_ms();
        let mut conns = lock(&inner.conns);
        conns.retain(|c| {
            if c.done.load(Ordering::SeqCst) {
                return false;
            }
            if now.saturating_sub(c.last_seen.load(Ordering::SeqCst)) > stale_ms {
                inner.tel.idle_disconnects.inc();
                let _ = c.stream.shutdown(Shutdown::Both);
                return false;
            }
            true
        });
        drop(conns);
        std::thread::sleep(inner.cfg.tick);
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    for stream in listener.incoming() {
        if inner.draining.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if inner.active.load(Ordering::SeqCst) >= inner.cfg.max_connections {
            inner.tel.connections_rejected.inc();
            reject_over_cap(inner, stream);
            continue;
        }
        inner.active.fetch_add(1, Ordering::SeqCst);
        inner.tel.connections_total.inc();
        inner.tel.connections_active.set(inner.active.load(Ordering::SeqCst) as f64);
        let last_seen = Arc::new(AtomicU64::new(inner.now_ms()));
        let done = Arc::new(AtomicBool::new(false));
        if let Ok(clone) = stream.try_clone() {
            lock(&inner.conns).push(ConnEntry {
                stream: clone,
                last_seen: Arc::clone(&last_seen),
                done: Arc::clone(&done),
            });
        }
        let handler = {
            let inner = Arc::clone(inner);
            let done = Arc::clone(&done);
            std::thread::Builder::new().name("sd-net-conn".into()).spawn(move || {
                handle_connection(&inner, stream, &last_seen);
                done.store(true, Ordering::SeqCst);
                inner.active.fetch_sub(1, Ordering::SeqCst);
                inner.tel.connections_active.set(inner.active.load(Ordering::SeqCst) as f64);
            })
        };
        match handler {
            Ok(h) => lock(&inner.handlers).push(h),
            Err(_) => {
                // Thread spawn failed: undo the accounting and drop the
                // socket; the client sees a reset.
                done.store(true, Ordering::SeqCst);
                inner.active.fetch_sub(1, Ordering::SeqCst);
                inner.tel.connections_active.set(inner.active.load(Ordering::SeqCst) as f64);
            }
        }
    }
}

/// Over-cap connections still get the handshake plus a typed error, so
/// a well-behaved client can distinguish "server full" from a crash.
fn reject_over_cap(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
    let _ = stream.write_all(NET_MAGIC);
    let reply = Reply::Error {
        code: ErrorCode::TooManyConnections,
        detail: format!("connection cap of {} reached", inner.cfg.max_connections),
    };
    let _ = stream.write_all(&encode_frame(&reply.encode()));
    let _ = stream.shutdown(Shutdown::Both);
}

fn send(stream: &mut TcpStream, reply: &Reply) -> std::io::Result<()> {
    stream.write_all(&encode_frame(&reply.encode()))
}

fn handle_connection(inner: &Inner, mut stream: TcpStream, last_seen: &AtomicU64) {
    let _ = stream.set_nodelay(true);
    if stream.set_write_timeout(Some(inner.cfg.write_timeout)).is_err() {
        return;
    }
    // Handshake: the client leads with the magic; we echo it. A silent
    // or foreign client is cut off at the idle timeout.
    if stream.set_read_timeout(Some(inner.cfg.idle_timeout)).is_err() {
        return;
    }
    let mut magic = [0u8; NET_MAGIC.len()];
    if stream.read_exact(&mut magic).is_err() || &magic != NET_MAGIC {
        inner.tel.frame_errors.inc();
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    if stream.write_all(NET_MAGIC).is_err() {
        return;
    }
    if stream.set_read_timeout(Some(inner.cfg.tick)).is_err() {
        return;
    }

    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    // Reply bytes for the current chunk, flushed in one write_all, and
    // the decoded-but-unanswered frames — both reused across chunks.
    let mut wbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut pending: Vec<Result<Request, crate::protocol::WireError>> = Vec::new();
    let mut chunk = [0u8; 8192];
    let mut tenant: Option<usize> = None;
    let mut last_activity = Instant::now();

    loop {
        if inner.draining.load(Ordering::SeqCst) {
            let _ = send(&mut stream, &Reply::Bye);
            return;
        }
        let quiet = last_activity.elapsed();
        if buf.is_empty() && quiet >= inner.cfg.idle_timeout {
            inner.tel.idle_disconnects.inc();
            let _ = send(
                &mut stream,
                &Reply::Error {
                    code: ErrorCode::IdleTimeout,
                    detail: format!("idle for {quiet:?}"),
                },
            );
            return;
        }
        if !buf.is_empty() && quiet >= inner.cfg.read_timeout {
            inner.tel.frame_errors.inc();
            let _ = send(
                &mut stream,
                &Reply::Error {
                    code: ErrorCode::BadMessage,
                    detail: "frame did not complete within the read timeout".into(),
                },
            );
            return;
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => return,
        };
        last_activity = Instant::now();
        last_seen.store(inner.now_ms(), Ordering::SeqCst);
        buf.extend_from_slice(&chunk[..n]);

        // Phase 1: slice every complete frame out of the read buffer
        // before answering any of them, so a pipelined client's whole
        // in-flight window is visible to the group-admission pass. A
        // framing error is fatal (the byte stream is unrecoverable) but
        // still answered after the frames that preceded it.
        pending.clear();
        let mut fatal: Option<Reply> = None;
        loop {
            let consumed = match parse_frame(&buf, inner.cfg.max_frame) {
                FrameParse::NeedMore(_) => break,
                FrameParse::TooLarge(len) => {
                    inner.tel.frame_errors.inc();
                    fatal = Some(Reply::Error {
                        code: ErrorCode::FrameTooLarge,
                        detail: format!(
                            "frame of {len} bytes exceeds the {}-byte cap",
                            inner.cfg.max_frame
                        ),
                    });
                    break;
                }
                FrameParse::BadCrc => {
                    inner.tel.frame_errors.inc();
                    fatal = Some(Reply::Error {
                        code: ErrorCode::BadCrc,
                        detail: "frame checksum mismatch; stream out of sync".into(),
                    });
                    break;
                }
                FrameParse::Frame { consumed } => consumed,
            };
            inner.tel.requests.inc();
            let decoded = Request::decode(&buf[FRAME_HEADER_LEN..consumed]);
            if decoded.is_err() {
                inner.tel.frame_errors.inc();
            }
            pending.push(decoded);
            buf.drain(..consumed);
        }

        // Phase 2: answer the pending frames in order, admitting each
        // run of consecutive authenticated Append frames as one
        // try_submit group. Replies accumulate in wbuf; one write_all
        // flushes the whole chunk's worth.
        wbuf.clear();
        let started = Instant::now();
        let mut close = false;
        let mut answered = 0u64;
        let mut it = pending.drain(..).peekable();
        while let Some(decoded) = it.next() {
            if close {
                // A closing reply (Goodbye, fatal error) ends the
                // conversation; later frames are never answered,
                // matching the unbuffered behavior.
                break;
            }
            match decoded {
                Ok(Request::Append { items }) if tenant.is_some() => {
                    let mut frames: Vec<Vec<(u32, f64)>> = vec![items];
                    while let Some(Ok(Request::Append { .. })) = it.peek() {
                        match it.next() {
                            Some(Ok(Request::Append { items })) => frames.push(items),
                            _ => unreachable!("peek saw an Append"),
                        }
                    }
                    let idx = tenant.expect("guarded by tenant.is_some()");
                    let (replies, c) = handle_append_group(
                        inner,
                        &inner.tenants[idx],
                        &inner.tel.tenants[idx],
                        &frames,
                    );
                    answered += replies.len() as u64;
                    for reply in &replies {
                        wbuf.extend_from_slice(&encode_frame(&reply.encode()));
                    }
                    close = c;
                }
                Ok(req) => {
                    let (reply, c) = handle_request(inner, &mut tenant, req);
                    answered += 1;
                    wbuf.extend_from_slice(&encode_frame(&reply.encode()));
                    close = c;
                }
                Err(e) => {
                    // Frame boundaries are intact, so the connection
                    // can continue past a single bad payload.
                    let reply = Reply::Error { code: ErrorCode::BadMessage, detail: e.to_string() };
                    answered += 1;
                    wbuf.extend_from_slice(&encode_frame(&reply.encode()));
                }
            }
        }
        if let Some(reply) = fatal {
            if !close {
                wbuf.extend_from_slice(&encode_frame(&reply.encode()));
                close = true;
            }
        }
        let ok = wbuf.is_empty() || stream.write_all(&wbuf).is_ok();
        // One handling pass covered `answered` frames; attribute the
        // chunk's latency to each so the histogram count stays
        // per-request.
        for _ in 0..answered {
            inner.tel.request_latency.observe_duration(started.elapsed());
        }
        if close || !ok {
            return;
        }
    }
}

/// Serves one decoded request; returns the reply and whether the
/// connection closes after it.
fn handle_request(inner: &Inner, tenant: &mut Option<usize>, req: Request) -> (Reply, bool) {
    // Pre-auth requests.
    match req {
        Request::Ping => return (Reply::Pong, false),
        Request::Goodbye => return (Reply::Bye, true),
        Request::Hello { ref token } => {
            return match inner.tenants.iter().position(|t| t.cfg.token == *token) {
                Some(i) => {
                    *tenant = Some(i);
                    let t = &inner.tenants[i].cfg;
                    (
                        Reply::HelloOk {
                            tenant: t.name.clone(),
                            streams: t.streams,
                            append_rate: t.append_rate,
                        },
                        false,
                    )
                }
                None => {
                    inner.tel.auth_failures.inc();
                    (
                        Reply::Error {
                            code: ErrorCode::Unauthenticated,
                            detail: "unknown token".into(),
                        },
                        true,
                    )
                }
            };
        }
        _ => {}
    }
    let Some(idx) = *tenant else {
        return (
            Reply::Error {
                code: ErrorCode::Unauthenticated,
                detail: "authenticate with Hello first".into(),
            },
            false,
        );
    };
    let t = &inner.tenants[idx];
    let tt = &inner.tel.tenants[idx];

    match req {
        // The connection loop admits authenticated Append runs through
        // handle_append_group directly; this arm only serves the
        // degenerate single-frame case (e.g. a frame that arrived
        // alone).
        Request::Append { items } => {
            let (mut replies, close) = handle_append_group(inner, t, tt, &[items]);
            (replies.pop().expect("one reply per frame"), close)
        }
        Request::AggregateInterval { stream, window } => match t.to_global(stream) {
            None => {
                tt.rejected_streams.inc();
                (
                    Reply::Error {
                        code: ErrorCode::UnknownStream,
                        detail: format!("stream {stream} outside 0..{}", t.cfg.streams),
                    },
                    false,
                )
            }
            Some(global) => match inner.rt.aggregate_interval(global, window as usize) {
                Ok(ans) => (Reply::AggregateInterval(ans), false),
                Err(RuntimeError::UnknownStream { .. }) => (
                    Reply::Error {
                        code: ErrorCode::UnknownStream,
                        detail: format!("stream {stream} unknown to the runtime"),
                    },
                    false,
                ),
                Err(_) => (internal_error(), true),
            },
        },
        Request::ClassStats => match inner.rt.class_stats() {
            Ok(s) => (Reply::ClassStats(s), false),
            Err(_) => (internal_error(), true),
        },
        Request::CorrelatedPairs => match inner.rt.correlated_pairs() {
            Ok(pairs) => {
                // Only pairs fully inside the tenant's namespace are
                // visible, remapped to tenant-local ids.
                let local: Vec<(u32, u32, f64)> = pairs
                    .into_iter()
                    .filter_map(|(a, b, d)| Some((t.to_local(a)?, t.to_local(b)?, d)))
                    .collect();
                (Reply::CorrelatedPairs(local), false)
            }
            Err(_) => (internal_error(), true),
        },
        Request::Metrics { format } => {
            let payload = match format {
                MetricsFormat::Prometheus => inner.registry.render_prometheus(),
                MetricsFormat::Json => inner.registry.render_json(),
            };
            (Reply::Metrics { format, payload }, false)
        }
        // Handled above.
        Request::Hello { .. } | Request::Ping | Request::Goodbye => unreachable!(),
    }
}

fn internal_error() -> Reply {
    Reply::Error { code: ErrorCode::Internal, detail: "runtime unavailable".into() }
}

/// Admits a run of `Append` frames from one connection as a single
/// `try_submit` group, answering each frame individually. Per-frame
/// quota checks happen first (a frame a quota rejects contributes
/// nothing to the group); the surviving frames are concatenated into
/// one batch, so the runtime sees one shard sub-batch per shard for
/// the whole run — one queue message, journaled under one coalesced
/// WAL write. Rejection stays all-or-nothing per shard sub-batch, so
/// the rejected global ids identify each frame's rejected indices
/// exactly, and per-frame `AppendOk`/`Busy` replies stay precise.
fn handle_append_group(
    inner: &Inner,
    t: &TenantState,
    tt: &crate::telemetry::TenantTelemetry,
    frames: &[Vec<(u32, f64)>],
) -> (Vec<Reply>, bool) {
    let mut replies: Vec<Option<Reply>> = frames.iter().map(|_| None).collect();
    let mut admitted: Vec<usize> = Vec::with_capacity(frames.len());
    let mut batch = Batch::new();
    for (k, items) in frames.iter().enumerate() {
        if let Some(&(bad, _)) = items.iter().find(|&&(s, _)| s >= t.cfg.streams) {
            tt.rejected_streams.inc();
            replies[k] = Some(Reply::QuotaExceeded {
                kind: QuotaKind::StreamCount,
                retry_after_ms: 0,
                detail: format!("stream {bad} outside the tenant's 0..{}", t.cfg.streams),
            });
            continue;
        }
        let n = items.len() as u64;
        if let Err(wait_ms) = t.bucket.try_take(n) {
            tt.rejected_rate.add(n);
            replies[k] = Some(Reply::QuotaExceeded {
                kind: QuotaKind::AppendRate,
                retry_after_ms: wait_ms,
                detail: format!("append-rate quota is {} values/s", t.cfg.append_rate),
            });
            continue;
        }
        admitted.push(k);
        for &(s, v) in items {
            batch.push(t.base + s, v);
        }
    }
    let mut close = false;
    if !admitted.is_empty() {
        match inner.rt.try_submit(&batch) {
            Ok(None) => {
                for &k in &admitted {
                    tt.accepted_values.add(frames[k].len() as u64);
                    replies[k] = Some(Reply::AppendOk { appended: frames[k].len() as u32 });
                }
            }
            Ok(Some(partial)) => {
                let rejected_globals: HashSet<u32> =
                    partial.rejected.items().iter().map(|&(s, _)| s).collect();
                for &k in &admitted {
                    let rejected: Vec<u32> = frames[k]
                        .iter()
                        .enumerate()
                        .filter(|&(_, &(s, _))| rejected_globals.contains(&(t.base + s)))
                        .map(|(i, _)| i as u32)
                        .collect();
                    if rejected.is_empty() {
                        tt.accepted_values.add(frames[k].len() as u64);
                        replies[k] = Some(Reply::AppendOk { appended: frames[k].len() as u32 });
                    } else {
                        t.bucket.refund(rejected.len() as u64);
                        tt.accepted_values.add((frames[k].len() - rejected.len()) as u64);
                        tt.rejected_busy.add(rejected.len() as u64);
                        inner.tel.busy_replies.inc();
                        replies[k] = Some(Reply::Busy { retry_after_ms: BUSY_RETRY_MS, rejected });
                    }
                }
            }
            Err(_) => {
                for &k in &admitted {
                    replies[k] = Some(internal_error());
                }
                close = true;
            }
        }
    }
    (replies.into_iter().map(|r| r.expect("every frame answered")).collect(), close)
}
