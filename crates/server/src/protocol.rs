//! The `SDNET001` wire protocol: a versioned, length-prefixed binary
//! framing with a CRC-32 per frame, reusing the checksum conventions of
//! the on-disk WAL (`crates/runtime/src/persist/`).
//!
//! ```text
//! handshake  client → server: "SDNET001"      (8 bytes, once)
//!            server → client: "SDNET001"      (8 bytes, once)
//! frame      len u32 | crc32(payload) u32 | payload     (repeated)
//! payload    tag u8 | tag-specific fields
//! ```
//!
//! All integers little-endian; `f64`s travel as their IEEE-754 bit
//! patterns (`to_bits`), so values round-trip exactly — the end-to-end
//! equivalence audit compares event sets *bit for bit*. Strings are
//! UTF-8 with a `u16` length prefix, except the metrics payload, which
//! carries a `u32` prefix (a Prometheus dump can exceed 64 KiB).
//!
//! Decoding never panics on any byte sequence: a frame that is too
//! large, fails its checksum, or does not parse produces a typed
//! [`WireError`], which the server answers with a typed
//! [`Reply::Error`] or a clean disconnect. The corruption sweep in
//! `tests/protocol.rs` proves this byte by byte, in the style of the
//! WAL damage sweep.

use stardust_runtime::{crc32, ClassStats};

/// Magic bytes both ends exchange before the first frame (protocol
/// version in the trailing digits).
pub const NET_MAGIC: &[u8; 8] = b"SDNET001";

/// Frame header length: `len u32 | crc u32`.
pub const FRAME_HEADER_LEN: usize = 8;

/// Default cap on a frame payload (1 MiB ≈ 87k appends per batch).
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

// Request tags.
const TAG_HELLO: u8 = 0x01;
const TAG_APPEND: u8 = 0x02;
const TAG_AGGREGATE: u8 = 0x03;
const TAG_CLASS_STATS: u8 = 0x04;
const TAG_CORRELATED: u8 = 0x05;
const TAG_METRICS: u8 = 0x06;
const TAG_PING: u8 = 0x07;
const TAG_GOODBYE: u8 = 0x08;

// Reply tags (high bit set).
const TAG_HELLO_OK: u8 = 0x81;
const TAG_APPEND_OK: u8 = 0x82;
const TAG_BUSY: u8 = 0x83;
const TAG_QUOTA: u8 = 0x84;
const TAG_AGGREGATE_R: u8 = 0x85;
const TAG_CLASS_STATS_R: u8 = 0x86;
const TAG_CORRELATED_R: u8 = 0x87;
const TAG_METRICS_R: u8 = 0x88;
const TAG_PONG: u8 = 0x89;
const TAG_ERROR: u8 = 0x8A;
const TAG_BYE: u8 = 0x8B;

/// A malformed frame or payload. Every variant is a protocol fact the
/// peer can be told about; none is a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Declared payload length exceeds the negotiated cap.
    FrameTooLarge {
        /// Declared length.
        len: u32,
        /// Enforced cap.
        max: u32,
    },
    /// The payload does not match its frame checksum.
    BadCrc,
    /// Unknown message tag.
    BadTag(u8),
    /// The payload ended before the fields it declares.
    Truncated(&'static str),
    /// A length-prefixed string is not valid UTF-8.
    BadString,
    /// Trailing bytes after a complete message.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::BadCrc => f.write_str("frame payload failed its CRC-32 check"),
            WireError::BadTag(t) => write!(f, "unknown message tag 0x{t:02X}"),
            WireError::Truncated(what) => write!(f, "payload truncated inside {what}"),
            WireError::BadString => f.write_str("length-prefixed string is not UTF-8"),
            WireError::TrailingBytes => f.write_str("trailing bytes after a complete message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Metrics export format carried by [`Request::Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition.
    Prometheus,
    /// The `stardust-metrics/v1` JSON document.
    Json,
}

/// Which quota a rejected request ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaKind {
    /// A stream id at or beyond the tenant's namespace size.
    StreamCount,
    /// The tenant's append-rate token bucket is empty.
    AppendRate,
}

/// Typed error codes carried by [`Reply::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The connection has not completed a successful `Hello`, or the
    /// offered token is unknown.
    Unauthenticated = 1,
    /// A frame decoded but its payload did not parse.
    BadMessage = 2,
    /// Declared frame length exceeds the server's cap.
    FrameTooLarge = 3,
    /// Frame checksum mismatch (the byte stream can no longer be
    /// trusted; the server disconnects after this reply).
    BadCrc = 4,
    /// A stream id outside the tenant's namespace on a query.
    UnknownStream = 5,
    /// The server is draining for shutdown and accepts no new work.
    Draining = 6,
    /// The connection cap was reached; retry against a quieter server.
    TooManyConnections = 7,
    /// An internal runtime failure; the connection is closed.
    Internal = 8,
    /// The connection sat idle past the server's idle timeout.
    IdleTimeout = 9,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Unauthenticated,
            2 => ErrorCode::BadMessage,
            3 => ErrorCode::FrameTooLarge,
            4 => ErrorCode::BadCrc,
            5 => ErrorCode::UnknownStream,
            6 => ErrorCode::Draining,
            7 => ErrorCode::TooManyConnections,
            8 => ErrorCode::Internal,
            9 => ErrorCode::IdleTimeout,
            _ => return None,
        })
    }
}

/// A client → server message. Stream ids are tenant-local (the server
/// offsets them into the tenant's global namespace slice).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Authenticate with a per-client token; must be the first request.
    Hello {
        /// The tenant token.
        token: String,
    },
    /// Batch-append values to named streams.
    Append {
        /// `(tenant-local stream, value)` pairs, applied in order.
        items: Vec<(u32, f64)>,
    },
    /// Current composed interval of one monitored aggregate window.
    AggregateInterval {
        /// Tenant-local stream id.
        stream: u32,
        /// Monitored window size.
        window: u32,
    },
    /// Cumulative per-class counters, merged across shards.
    ClassStats,
    /// Currently correlated pairs among the tenant's streams.
    CorrelatedPairs,
    /// Fetch the server's metrics registry.
    Metrics {
        /// Export format.
        format: MetricsFormat,
    },
    /// Liveness probe.
    Ping,
    /// Clean close; the server answers [`Reply::Bye`] and disconnects.
    Goodbye,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `Hello` accepted.
    HelloOk {
        /// Tenant name.
        tenant: String,
        /// Namespace size (valid stream ids are `0..streams`).
        streams: u32,
        /// Append-rate quota in values/second (`0` = unlimited).
        append_rate: u64,
    },
    /// Every value of the batch was admitted.
    AppendOk {
        /// Values enqueued.
        appended: u32,
    },
    /// Backpressure: one or more shard queues were full. The listed
    /// indices (into the just-sent batch) were *not* admitted; resend
    /// exactly those after `retry_after_ms`. Everything else was
    /// admitted exactly once.
    Busy {
        /// Suggested client backoff.
        retry_after_ms: u32,
        /// Indices of the rejected batch entries, ascending.
        rejected: Vec<u32>,
    },
    /// A tenant quota rejected the whole request; nothing was admitted.
    QuotaExceeded {
        /// Which quota.
        kind: QuotaKind,
        /// Suggested client backoff (0 = the quota is not time-based).
        retry_after_ms: u32,
        /// Human-readable detail.
        detail: String,
    },
    /// `AggregateInterval` answer.
    AggregateInterval(
        /// Composed `(lower, upper)` interval, if the window is warm.
        Option<(f64, f64)>,
    ),
    /// `ClassStats` answer.
    ClassStats(ClassStats),
    /// `CorrelatedPairs` answer, in tenant-local ids, sorted by
    /// `(a, b)`.
    CorrelatedPairs(Vec<(u32, u32, f64)>),
    /// `Metrics` answer.
    Metrics {
        /// Format of `payload`.
        format: MetricsFormat,
        /// The rendered registry.
        payload: String,
    },
    /// `Ping` answer.
    Pong,
    /// A typed error. The connection stays open unless the code is
    /// documented as closing (`BadCrc`, `Draining`, `Internal`,
    /// `IdleTimeout`, `TooManyConnections`, failed `Hello`).
    Error {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Goodbye acknowledged (also sent on graceful server drain).
    Bye,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_str16(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    buf.extend_from_slice(&(len as u16).to_le_bytes());
    buf.extend_from_slice(&bytes[..len]);
}

fn put_str32(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);
}

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        match self {
            Request::Hello { token } => {
                buf.push(TAG_HELLO);
                put_str16(&mut buf, token);
            }
            Request::Append { items } => {
                buf.reserve(5 + items.len() * 12);
                buf.push(TAG_APPEND);
                buf.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for &(stream, value) in items {
                    buf.extend_from_slice(&stream.to_le_bytes());
                    buf.extend_from_slice(&value.to_bits().to_le_bytes());
                }
            }
            Request::AggregateInterval { stream, window } => {
                buf.push(TAG_AGGREGATE);
                buf.extend_from_slice(&stream.to_le_bytes());
                buf.extend_from_slice(&window.to_le_bytes());
            }
            Request::ClassStats => buf.push(TAG_CLASS_STATS),
            Request::CorrelatedPairs => buf.push(TAG_CORRELATED),
            Request::Metrics { format } => {
                buf.push(TAG_METRICS);
                buf.push(match format {
                    MetricsFormat::Prometheus => 0,
                    MetricsFormat::Json => 1,
                });
            }
            Request::Ping => buf.push(TAG_PING),
            Request::Goodbye => buf.push(TAG_GOODBYE),
        }
        buf
    }

    /// Decodes a frame payload. Never panics; unknown tags, short
    /// payloads, and trailing garbage are typed errors.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let req = match r.u8("tag")? {
            TAG_HELLO => Request::Hello { token: r.str16("token")? },
            TAG_APPEND => {
                let count = r.u32("append count")?;
                // Cap the preallocation by what the payload can hold.
                let mut items = Vec::with_capacity((count as usize).min(payload.len() / 12 + 1));
                for _ in 0..count {
                    let stream = r.u32("append stream")?;
                    let value = f64::from_bits(r.u64("append value")?);
                    items.push((stream, value));
                }
                Request::Append { items }
            }
            TAG_AGGREGATE => {
                Request::AggregateInterval { stream: r.u32("stream")?, window: r.u32("window")? }
            }
            TAG_CLASS_STATS => Request::ClassStats,
            TAG_CORRELATED => Request::CorrelatedPairs,
            TAG_METRICS => Request::Metrics { format: r.metrics_format()? },
            TAG_PING => Request::Ping,
            TAG_GOODBYE => Request::Goodbye,
            other => return Err(WireError::BadTag(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Reply {
    /// Encodes the reply as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        match self {
            Reply::HelloOk { tenant, streams, append_rate } => {
                buf.push(TAG_HELLO_OK);
                put_str16(&mut buf, tenant);
                buf.extend_from_slice(&streams.to_le_bytes());
                buf.extend_from_slice(&append_rate.to_le_bytes());
            }
            Reply::AppendOk { appended } => {
                buf.push(TAG_APPEND_OK);
                buf.extend_from_slice(&appended.to_le_bytes());
            }
            Reply::Busy { retry_after_ms, rejected } => {
                buf.reserve(9 + rejected.len() * 4);
                buf.push(TAG_BUSY);
                buf.extend_from_slice(&retry_after_ms.to_le_bytes());
                buf.extend_from_slice(&(rejected.len() as u32).to_le_bytes());
                for idx in rejected {
                    buf.extend_from_slice(&idx.to_le_bytes());
                }
            }
            Reply::QuotaExceeded { kind, retry_after_ms, detail } => {
                buf.push(TAG_QUOTA);
                buf.push(match kind {
                    QuotaKind::StreamCount => 0,
                    QuotaKind::AppendRate => 1,
                });
                buf.extend_from_slice(&retry_after_ms.to_le_bytes());
                put_str16(&mut buf, detail);
            }
            Reply::AggregateInterval(interval) => {
                buf.push(TAG_AGGREGATE_R);
                match interval {
                    None => buf.push(0),
                    Some((lo, hi)) => {
                        buf.push(1);
                        buf.extend_from_slice(&lo.to_bits().to_le_bytes());
                        buf.extend_from_slice(&hi.to_bits().to_le_bytes());
                    }
                }
            }
            Reply::ClassStats(s) => {
                buf.push(TAG_CLASS_STATS_R);
                for v in [
                    s.aggregate.checks,
                    s.aggregate.candidates,
                    s.aggregate.true_alarms,
                    s.trend.candidates,
                    s.trend.matches,
                    s.correlation.reported,
                    s.correlation.true_pairs,
                ] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            Reply::CorrelatedPairs(pairs) => {
                buf.reserve(5 + pairs.len() * 16);
                buf.push(TAG_CORRELATED_R);
                buf.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
                for &(a, b, dist) in pairs {
                    buf.extend_from_slice(&a.to_le_bytes());
                    buf.extend_from_slice(&b.to_le_bytes());
                    buf.extend_from_slice(&dist.to_bits().to_le_bytes());
                }
            }
            Reply::Metrics { format, payload } => {
                buf.push(TAG_METRICS_R);
                buf.push(match format {
                    MetricsFormat::Prometheus => 0,
                    MetricsFormat::Json => 1,
                });
                put_str32(&mut buf, payload);
            }
            Reply::Pong => buf.push(TAG_PONG),
            Reply::Error { code, detail } => {
                buf.push(TAG_ERROR);
                buf.push(*code as u8);
                put_str16(&mut buf, detail);
            }
            Reply::Bye => buf.push(TAG_BYE),
        }
        buf
    }

    /// Decodes a frame payload. Never panics.
    pub fn decode(payload: &[u8]) -> Result<Reply, WireError> {
        let mut r = Reader::new(payload);
        let reply = match r.u8("tag")? {
            TAG_HELLO_OK => Reply::HelloOk {
                tenant: r.str16("tenant")?,
                streams: r.u32("streams")?,
                append_rate: r.u64("append_rate")?,
            },
            TAG_APPEND_OK => Reply::AppendOk { appended: r.u32("appended")? },
            TAG_BUSY => {
                let retry_after_ms = r.u32("retry_after_ms")?;
                let count = r.u32("rejected count")?;
                let mut rejected = Vec::with_capacity((count as usize).min(payload.len() / 4 + 1));
                for _ in 0..count {
                    rejected.push(r.u32("rejected index")?);
                }
                Reply::Busy { retry_after_ms, rejected }
            }
            TAG_QUOTA => {
                let kind = match r.u8("quota kind")? {
                    0 => QuotaKind::StreamCount,
                    1 => QuotaKind::AppendRate,
                    other => return Err(WireError::BadTag(other)),
                };
                Reply::QuotaExceeded {
                    kind,
                    retry_after_ms: r.u32("retry_after_ms")?,
                    detail: r.str16("detail")?,
                }
            }
            TAG_AGGREGATE_R => match r.u8("interval flag")? {
                0 => Reply::AggregateInterval(None),
                1 => {
                    let lo = f64::from_bits(r.u64("interval lo")?);
                    let hi = f64::from_bits(r.u64("interval hi")?);
                    Reply::AggregateInterval(Some((lo, hi)))
                }
                other => return Err(WireError::BadTag(other)),
            },
            TAG_CLASS_STATS_R => {
                let mut s = ClassStats::default();
                s.aggregate.checks = r.u64("agg checks")?;
                s.aggregate.candidates = r.u64("agg candidates")?;
                s.aggregate.true_alarms = r.u64("agg true alarms")?;
                s.trend.candidates = r.u64("trend candidates")?;
                s.trend.matches = r.u64("trend matches")?;
                s.correlation.reported = r.u64("corr reported")?;
                s.correlation.true_pairs = r.u64("corr true pairs")?;
                Reply::ClassStats(s)
            }
            TAG_CORRELATED_R => {
                let count = r.u32("pair count")?;
                let mut pairs = Vec::with_capacity((count as usize).min(payload.len() / 16 + 1));
                for _ in 0..count {
                    let a = r.u32("pair a")?;
                    let b = r.u32("pair b")?;
                    let dist = f64::from_bits(r.u64("pair distance")?);
                    pairs.push((a, b, dist));
                }
                Reply::CorrelatedPairs(pairs)
            }
            TAG_METRICS_R => {
                Reply::Metrics { format: r.metrics_format()?, payload: r.str32("metrics payload")? }
            }
            TAG_PONG => Reply::Pong,
            TAG_ERROR => {
                let code = r.u8("error code")?;
                let code = ErrorCode::from_u8(code).ok_or(WireError::BadTag(code))?;
                Reply::Error { code, detail: r.str16("error detail")? }
            }
            TAG_BYE => Reply::Bye,
            other => return Err(WireError::BadTag(other)),
        };
        r.finish()?;
        Ok(reply)
    }
}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated(what))?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated(what))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn str16(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes")) as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadString)
    }

    fn str32(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadString)
    }

    fn metrics_format(&mut self) -> Result<MetricsFormat, WireError> {
        match self.u8("metrics format")? {
            0 => Ok(MetricsFormat::Prometheus),
            1 => Ok(MetricsFormat::Json),
            other => Err(WireError::BadTag(other)),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Frames a payload as `len | crc | payload` ready for the socket.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Incremental frame parse over a receive buffer.
#[derive(Debug, PartialEq)]
pub enum FrameParse {
    /// The buffer holds no complete frame yet; at least this many more
    /// bytes are needed.
    NeedMore(usize),
    /// One complete, checksummed frame: payload is `buf[8..8 + len]`
    /// and the frame occupies `consumed` bytes of the buffer.
    Frame {
        /// Total bytes of the frame (header + payload).
        consumed: usize,
    },
    /// The declared length exceeds `max_frame` — the peer is speaking a
    /// different protocol or attacking the allocator. Unrecoverable.
    TooLarge(u32),
    /// The checksum failed — the stream lost sync. Unrecoverable.
    BadCrc,
}

/// Parses the start of `buf` as a frame without copying.
///
/// A declared length above `max_frame` is rejected *before* any
/// allocation, so a hostile 4 GiB header costs nothing.
pub fn parse_frame(buf: &[u8], max_frame: u32) -> FrameParse {
    if buf.len() < FRAME_HEADER_LEN {
        return FrameParse::NeedMore(FRAME_HEADER_LEN - buf.len());
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    if len > max_frame {
        return FrameParse::TooLarge(len);
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let total = FRAME_HEADER_LEN + len as usize;
    if buf.len() < total {
        return FrameParse::NeedMore(total - buf.len());
    }
    if crc32(&buf[FRAME_HEADER_LEN..total]) != crc {
        return FrameParse::BadCrc;
    }
    FrameParse::Frame { consumed: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let payload = Request::Append { items: vec![(0, 1.5), (3, -0.25)] }.encode();
        let framed = encode_frame(&payload);
        match parse_frame(&framed, DEFAULT_MAX_FRAME) {
            FrameParse::Frame { consumed } => {
                assert_eq!(consumed, framed.len());
                let decoded = Request::decode(&framed[FRAME_HEADER_LEN..consumed]).unwrap();
                assert_eq!(decoded, Request::Append { items: vec![(0, 1.5), (3, -0.25)] });
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn partial_frames_ask_for_more() {
        let framed = encode_frame(&Request::Ping.encode());
        for cut in 0..framed.len() {
            match parse_frame(&framed[..cut], DEFAULT_MAX_FRAME) {
                FrameParse::NeedMore(n) => assert!(n > 0 && cut + n <= framed.len()),
                other => panic!("cut at {cut}: expected NeedMore, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_and_corrupt_frames_are_typed() {
        let mut framed = encode_frame(&Request::Ping.encode());
        framed[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(parse_frame(&framed, DEFAULT_MAX_FRAME), FrameParse::TooLarge(u32::MAX));

        let mut framed = encode_frame(&Request::Ping.encode());
        let last = framed.len() - 1;
        framed[last] ^= 0x01;
        assert_eq!(parse_frame(&framed, DEFAULT_MAX_FRAME), FrameParse::BadCrc);
    }

    #[test]
    fn hostile_append_count_does_not_allocate() {
        // A 5-byte payload declaring 2^32-1 items must fail cleanly.
        let mut payload = vec![TAG_APPEND];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Request::decode(&payload), Err(WireError::Truncated(_))));
    }
}
