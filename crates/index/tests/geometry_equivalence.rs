//! Bit-identity of the chunked (and, under `--features simd`, the
//! `std::simd`) geometry primitives against the naive scalar reference.
//!
//! The `coords_*` scan primitives process bounds in fixed-width chunks;
//! the contract (see `geometry`'s module docs) is that on NaN-free,
//! negative-zero-free inputs they return **bit-for-bit** the values of
//! `geometry::scalar`. This suite pins that on 256 random boxes spanning
//! nine dimensionalities and several float-magnitude regimes (exercising
//! whole-chunk, remainder-only, and mixed chunk/remainder paths), plus a
//! deterministic adversarial fixture set: denormal extents, huge extents,
//! touching boundaries, degenerate points, and deeply nested boxes.
//!
//! The same file compiles against both feature legs, so CI's
//! feature-matrix job proves the scalar and vector paths cannot drift.

use proptest::prelude::*;
use stardust_index::geometry::{
    coords_area, coords_contain, coords_intersect, coords_margin, coords_min_dist_point_sqr,
    coords_overlap_area, coords_scan_intersecting, coords_scan_within, coords_union_area, scalar,
};

const MAX_DIMS: usize = 9;

/// Compares every primitive on one `(a, b, p)` input, bit-for-bit.
/// Returns the first mismatch as a description.
fn check_all(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64], p: &[f64]) -> Result<(), String> {
    let bits = |name: &str, got: f64, want: f64| -> Result<(), String> {
        if got.to_bits() == want.to_bits() {
            Ok(())
        } else {
            Err(format!("{name}: chunked {got:?} != scalar {want:?} (a=[{alo:?},{ahi:?}])"))
        }
    };
    bits("area", coords_area(alo, ahi), scalar::area(alo, ahi))?;
    bits("margin", coords_margin(alo, ahi), scalar::margin(alo, ahi))?;
    bits(
        "overlap_area",
        coords_overlap_area(alo, ahi, blo, bhi),
        scalar::overlap_area(alo, ahi, blo, bhi),
    )?;
    bits(
        "union_area",
        coords_union_area(alo, ahi, blo, bhi),
        scalar::union_area(alo, ahi, blo, bhi),
    )?;
    bits(
        "min_dist_point_sqr",
        coords_min_dist_point_sqr(alo, ahi, p),
        scalar::min_dist_point_sqr(alo, ahi, p),
    )?;
    if coords_intersect(alo, ahi, blo, bhi) != scalar::intersect(alo, ahi, blo, bhi) {
        return Err(format!("intersect diverged on a=[{alo:?},{ahi:?}] b=[{blo:?},{bhi:?}]"));
    }
    if coords_contain(alo, ahi, blo, bhi) != scalar::contain(alo, ahi, blo, bhi) {
        return Err(format!("contain diverged on a=[{alo:?},{ahi:?}] b=[{blo:?},{bhi:?}]"));
    }
    Ok(())
}

/// Coordinate values across magnitude regimes — everyday, near-denormal,
/// and huge — with `-0.0` normalized away (outside the bit-identity
/// contract: `max(-0.0, +0.0)` is sign-unspecified).
fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -100.0f64..100.0,
        1 => (-1.0f64..1.0).prop_map(|x| x * 1e300),
        1 => (-1.0f64..1.0).prop_map(|x| x * 1e-300),
        1 => (0.0f64..1.0).prop_map(|x| x * f64::MIN_POSITIVE),
    ]
    .prop_map(|x| if x == 0.0 { 0.0 } else { x })
}

/// Nonnegative extents in the same regimes (zero extent = degenerate box).
fn extent() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => 0.0f64..50.0,
        1 => (0.0f64..1.0).prop_map(|x| x * 1e300),
        1 => (0.0f64..1.0).prop_map(|x| x * 1e-300),
        1 => (0.0f64..1.0).prop_map(|x| x * f64::MIN_POSITIVE),
    ]
}

fn box_corners(lo: &[f64], ext: &[f64], dims: usize) -> (Vec<f64>, Vec<f64>) {
    let lo = lo[..dims].to_vec();
    let hi: Vec<f64> = lo.iter().zip(&ext[..dims]).map(|(l, e)| l + e).collect();
    (lo, hi)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// 256 random cases × 7 primitives, spanning dims 1..=9 so every
    /// chunk/remainder split of the fixed-width loop is exercised.
    #[test]
    fn chunked_bit_identical_to_scalar(
        dims in 1usize..=MAX_DIMS,
        alo in proptest::collection::vec(coord(), MAX_DIMS),
        aext in proptest::collection::vec(extent(), MAX_DIMS),
        blo in proptest::collection::vec(coord(), MAX_DIMS),
        bext in proptest::collection::vec(extent(), MAX_DIMS),
        p in proptest::collection::vec(coord(), MAX_DIMS),
    ) {
        let (alo, ahi) = box_corners(&alo, &aext, dims);
        let (blo, bhi) = box_corners(&blo, &bext, dims);
        if let Err(e) = check_all(&alo, &ahi, &blo, &bhi, &p[..dims]) {
            prop_assert!(false, "{}", e);
        }
    }

    /// The batched node-scan kernels select exactly the entries the
    /// per-entry primitives select, across the monomorphized widths
    /// (1–4, 8, 16) and the runtime-dims fallback. A node is a flat
    /// interleaved block of entries; the scan's hit list must equal the
    /// entry-by-entry scalar walk, index for index.
    #[test]
    fn node_scan_matches_per_entry_primitives(
        dims in 1usize..=MAX_DIMS,
        los in proptest::collection::vec(proptest::collection::vec(coord(), MAX_DIMS), 1..20),
        exts in proptest::collection::vec(proptest::collection::vec(extent(), MAX_DIMS), 20),
        qlo in proptest::collection::vec(coord(), MAX_DIMS),
        qext in proptest::collection::vec(extent(), MAX_DIMS),
        p in proptest::collection::vec(coord(), MAX_DIMS),
        r in 0.0f64..200.0,
    ) {
        let mut coords = Vec::with_capacity(los.len() * 2 * dims);
        for (lo, ext) in los.iter().zip(&exts) {
            let (lo, hi) = box_corners(lo, ext, dims);
            coords.extend_from_slice(&lo);
            coords.extend_from_slice(&hi);
        }
        let (qlo, qhi) = box_corners(&qlo, &qext, dims);
        let p = &p[..dims];

        let mut scan_hits = Vec::new();
        coords_scan_intersecting(&coords, dims, &qlo, &qhi, |i| scan_hits.push(i));
        let entry_hits: Vec<usize> = coords
            .chunks_exact(2 * dims)
            .enumerate()
            .filter(|(_, e)| scalar::intersect(&e[..dims], &e[dims..], &qlo, &qhi))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(&scan_hits, &entry_hits, "intersecting scan diverged (dims={})", dims);

        let mut within_hits = Vec::new();
        coords_scan_within(&coords, dims, p, r, |i| within_hits.push(i));
        let entry_within: Vec<usize> = coords
            .chunks_exact(2 * dims)
            .enumerate()
            .filter(|(_, e)| scalar::min_dist_point_sqr(&e[..dims], &e[dims..], p).sqrt() <= r)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(&within_hits, &entry_within, "within scan diverged (dims={})", dims);
    }
}

/// Deterministic adversarial fixtures: NaN-free denormal and huge-extent
/// boxes, shared boundaries, and containment chains, swept across
/// dimensionalities on both sides of the chunk width.
#[test]
fn adversarial_boxes_bit_identical() {
    let tiny = f64::MIN_POSITIVE; // smallest normal
    let sub = 5e-324; // smallest subnormal
    for dims in [1usize, 2, 3, 4, 5, 7, 8, 9, 11, 16] {
        let fixtures: Vec<(Vec<f64>, Vec<f64>)> = vec![
            // Denormal extents at a denormal origin.
            (vec![sub; dims], (0..dims).map(|i| sub * (1.0 + i as f64)).collect()),
            // Denormal extents at a normal origin (extent vanishes in the sum).
            (vec![1.0; dims], (0..dims).map(|i| 1.0 + sub * i as f64).collect()),
            // Huge extents spanning most of the finite range.
            (vec![-8.0e307; dims], vec![8.0e307; dims]),
            // Huge origin, tiny extent.
            (vec![1.0e308; dims], (0..dims).map(|i| 1.0e308 + tiny * i as f64).collect()),
            // Unit box at the origin.
            (vec![0.0; dims], vec![1.0; dims]),
            // Degenerate point.
            (vec![2.5; dims], vec![2.5; dims]),
            // Mixed magnitudes per dimension.
            (
                (0..dims).map(|i| if i % 2 == 0 { -1.0e300 } else { sub }).collect(),
                (0..dims).map(|i| if i % 2 == 0 { 1.0e300 } else { 2.0 * sub }).collect(),
            ),
            // Touching the unit box along the first axis.
            (
                (0..dims).map(|i| if i == 0 { 1.0 } else { 0.0 }).collect(),
                (0..dims).map(|i| if i == 0 { 2.0 } else { 1.0 }).collect(),
            ),
        ];
        let points: Vec<Vec<f64>> = vec![
            vec![0.5; dims],
            vec![-3.0e307; dims],
            vec![sub; dims],
            (0..dims).map(|i| i as f64 - 2.0).collect(),
        ];
        for (alo, ahi) in &fixtures {
            for (blo, bhi) in &fixtures {
                for p in &points {
                    check_all(alo, ahi, blo, bhi, p).unwrap();
                }
            }
        }
    }
}
