//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! The offline baselines (MR-Index, GeneralMatch) build their indexes over a
//! batch of features at once, and crash recovery rebuilds per-level trees
//! from snapshotted MBR sets; STR packing produces a tree with near-100%
//! node utilization in one bottom-up pass — no ChooseSubtree descents, no
//! splits, no forced reinsertion — with better query clustering than
//! one-at-a-time insertion.
//!
//! The build is level-by-level, directly into arena nodes: items are
//! ordered by recursive sort-and-tile over their rectangle centers, packed
//! into full leaves (the tail is rebalanced so every non-root node meets
//! the minimum fill), and the same order-and-pack step repeats on the node
//! MBRs of each level until a single root remains.

use crate::geometry::Rect;
use crate::tree::{Params, RStarTree};

/// Builds an R\*-tree over `items` using bottom-up STR packing.
///
/// The resulting tree satisfies all structural invariants of
/// [`RStarTree::validate`] (leaves at ~100% fill, minimum fill respected
/// via tail rebalancing) and supports subsequent inserts/removes.
///
/// # Panics
/// Panics if the items' dimensionalities disagree with `dims`.
pub fn bulk_load<T>(dims: usize, params: Params, items: Vec<(Rect, T)>) -> RStarTree<T> {
    for (r, _) in &items {
        assert_eq!(r.dims(), dims, "rectangle dimensionality mismatch");
    }
    let mut tree = RStarTree::with_params(dims, params);
    let n = items.len();
    if n == 0 {
        return tree;
    }
    let capacity = params.max_entries;
    let min = params.min_entries;

    // Order the items by recursive sort-and-tile over rect centers, then
    // pack consecutive runs into full arena leaves.
    let centers: Vec<f64> = items
        .iter()
        .flat_map(|(r, _)| (0..dims).map(|d| (r.lo()[d] + r.hi()[d]) * 0.5).collect::<Vec<_>>())
        .collect();
    let order = str_order(n, dims, capacity, &|i, d| centers[i * dims + d]);
    let mut slots: Vec<Option<(Rect, T)>> = items.into_iter().map(Some).collect();
    let mut level_nodes: Vec<u32> = Vec::new();
    let mut pos = 0;
    for size in fill_sizes(n, capacity, min) {
        let group =
            order[pos..pos + size].iter().map(|&i| slots[i].take().expect("each item packed once"));
        level_nodes.push(tree.bulk_new_leaf(group));
        pos += size;
    }

    // Repeat the order-and-pack step on node MBRs until one root remains.
    let mut level = 0;
    while level_nodes.len() > 1 {
        level += 1;
        let count = level_nodes.len();
        let centers: Vec<f64> = level_nodes
            .iter()
            .flat_map(|&id| {
                let r = tree.bulk_node_mbr(id);
                (0..dims).map(|d| (r.lo()[d] + r.hi()[d]) * 0.5).collect::<Vec<_>>()
            })
            .collect();
        let order = str_order(count, dims, capacity, &|i, d| centers[i * dims + d]);
        let mut parents = Vec::new();
        let mut pos = 0;
        for size in fill_sizes(count, capacity, min) {
            let ids: Vec<u32> = order[pos..pos + size].iter().map(|&i| level_nodes[i]).collect();
            parents.push(tree.bulk_new_inner(level, &ids));
            pos += size;
        }
        level_nodes = parents;
    }
    tree.bulk_finish(level_nodes[0], n);
    tree
}

/// The STR item order: indices `0..n` arranged so that consecutive runs of
/// `capacity` are spatially clustered. `center(i, d)` yields coordinate `d`
/// of element `i`'s center.
fn str_order(
    n: usize,
    dims: usize,
    capacity: usize,
    center: &impl Fn(usize, usize) -> f64,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    str_sort(&mut order, 0, dims, capacity, center);
    order
}

/// Recursively orders `order[..]`: sort by the current dimension's center,
/// tile into `slabs` groups, recurse on the next dimension within each.
fn str_sort(
    order: &mut [usize],
    dim: usize,
    dims: usize,
    capacity: usize,
    center: &impl Fn(usize, usize) -> f64,
) {
    if order.len() <= capacity || dim >= dims {
        return;
    }
    order
        .sort_by(|&a, &b| center(a, dim).partial_cmp(&center(b, dim)).expect("finite coordinates"));
    let n = order.len();
    let leaves = n.div_ceil(capacity);
    let remaining_dims = dims - dim;
    // Number of slabs along this dimension: ceil(leaves^(1/remaining_dims)).
    let slabs = (leaves as f64).powf(1.0 / remaining_dims as f64).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut start = 0;
    while start < n {
        let end = (start + slab_size).min(n);
        str_sort(&mut order[start..end], dim + 1, dims, capacity, center);
        start = end;
    }
}

/// Group sizes for packing `n` entries into nodes of `capacity`: full nodes
/// except possibly the last two. A short tail (`< min`) borrows from the
/// preceding full node, which stays ≥ `min` because the tree parameters
/// guarantee `capacity ≥ 2·min − 1`.
fn fill_sizes(n: usize, capacity: usize, min: usize) -> Vec<usize> {
    let mut sizes = vec![capacity; n / capacity];
    let tail = n % capacity;
    if tail > 0 {
        if tail < min && !sizes.is_empty() {
            *sizes.last_mut().expect("nonempty") -= min - tail;
            sizes.push(min);
        } else {
            sizes.push(tail);
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<(Rect, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 37) as f64;
                let y = (i / 37) as f64;
                (Rect::point(&[x, y]), i)
            })
            .collect()
    }

    #[test]
    fn bulk_small_matches_inserts() {
        let tree = bulk_load(2, Params::new(8), grid_points(5));
        assert_eq!(tree.len(), 5);
        tree.validate().expect("valid");
    }

    #[test]
    fn bulk_empty_is_empty() {
        let tree: RStarTree<usize> = bulk_load(3, Params::default(), Vec::new());
        assert!(tree.is_empty());
        tree.validate().expect("valid");
    }

    #[test]
    fn bulk_large_is_valid_and_complete() {
        let items = grid_points(1000);
        let tree = bulk_load(2, Params::new(16), items.clone());
        assert_eq!(tree.len(), 1000);
        tree.validate().expect("valid");
        // Every item findable.
        for (r, v) in items.iter().take(50) {
            assert!(tree.collect_intersecting(r).iter().any(|&(_, got)| got == v));
        }
    }

    #[test]
    fn bulk_packs_leaves_near_full() {
        use crate::tree::{ChildRef, NodeRef};

        // 1000 points at capacity 16: incremental R*-tree insertion lands
        // around 70% utilization; STR packing must hit ~100% — exactly
        // ceil(1000/16) = 63 leaves (one extra allowed for the rebalanced
        // tail) and minimal height.
        let tree = bulk_load(2, Params::new(16), grid_points(1000));
        assert!(tree.height() <= 3, "packed height {} too tall", tree.height());
        fn count_leaves<T>(node: NodeRef<'_, T>, leaves: &mut usize) {
            if node.level() == 0 {
                *leaves += 1;
                return;
            }
            for child in node.children() {
                if let ChildRef::Node(_, n) = child {
                    count_leaves(n, leaves);
                }
            }
        }
        let mut leaf_count = 0usize;
        count_leaves(tree.root_ref(), &mut leaf_count);
        let packed = 1000usize.div_ceil(16);
        assert!(leaf_count <= packed + 1, "expected ~{packed} packed leaves, found {leaf_count}");
        tree.validate().expect("valid");
    }

    #[test]
    fn bulk_query_matches_linear_scan() {
        let items = grid_points(500);
        let tree = bulk_load(2, Params::new(10), items.clone());
        let q = Rect::new(vec![3.0, 2.0], vec![9.0, 6.0]);
        let mut expect: Vec<usize> =
            items.iter().filter(|(r, _)| r.intersects(&q)).map(|&(_, v)| v).collect();
        expect.sort_unstable();
        let mut got: Vec<usize> = tree.collect_intersecting(&q).iter().map(|&(_, v)| *v).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn bulk_supports_subsequent_mutation() {
        let items = grid_points(200);
        let mut tree = bulk_load(2, Params::new(8), items.clone());
        tree.insert(Rect::point(&[100.0, 100.0]), 9999);
        assert!(tree.remove(&items[0].0, &items[0].1));
        assert_eq!(tree.len(), 200);
        tree.validate().expect("valid after mutation");
    }

    #[test]
    fn fill_sizes_respects_min_fill() {
        // Exact multiple: all groups full.
        assert_eq!(fill_sizes(32, 16, 6), vec![16, 16]);
        // Short tail (35 = 2·16 + 3, tail 3 < min 6): the previous full
        // group donates enough to bring the tail up to min.
        let sizes = fill_sizes(35, 16, 6);
        assert_eq!(sizes, vec![16, 13, 6]);
        assert_eq!(sizes.iter().sum::<usize>(), 35);
        assert!(sizes.iter().all(|&s| (6..=16).contains(&s)));
        // Tail already ≥ min: kept as-is.
        assert_eq!(fill_sizes(40, 16, 6), vec![16, 16, 8]);
        // Fewer items than min: single undersized group (becomes the root).
        assert_eq!(fill_sizes(3, 16, 6), vec![3]);
    }
}
