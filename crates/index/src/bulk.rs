//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! The offline baselines (MR-Index, GeneralMatch) build their indexes over a
//! batch of features at once; STR packing produces a tree with near-100%
//! node utilization and far better query performance than one-at-a-time
//! insertion, which keeps the baseline comparisons honest.

use crate::geometry::Rect;
use crate::tree::{Params, RStarTree};

/// Builds an R\*-tree over `items` using STR packing.
///
/// The resulting tree satisfies all structural invariants of
/// [`RStarTree::validate`] and supports subsequent inserts/removes.
///
/// # Panics
/// Panics if the items' dimensionalities disagree with `dims`.
pub fn bulk_load<T>(dims: usize, params: Params, items: Vec<(Rect, T)>) -> RStarTree<T> {
    for (r, _) in &items {
        assert_eq!(r.dims(), dims, "rectangle dimensionality mismatch");
    }
    // Small inputs: plain inserts are simpler and already optimal.
    if items.len() <= params.max_entries {
        let mut tree = RStarTree::with_params(dims, params);
        for (r, v) in items {
            tree.insert(r, v);
        }
        return tree;
    }
    // STR: recursively sort by each dimension's center and tile into
    // `slabs` groups, then pack runs of `capacity` into nodes. We express
    // this as a grouping of the item order; the resulting runs become leaf
    // nodes via ordered insertion below.
    let capacity = params.max_entries;
    let mut order: Vec<usize> = (0..items.len()).collect();
    str_sort(&items, &mut order, 0, dims, capacity);

    // Packing through the public API keeps the node-building logic in one
    // place (tree.rs): inserting items in STR order produces spatially
    // clustered leaves. To guarantee the packed structure exactly we build
    // the tree level by level using a private-free approach: insert in STR
    // order, which empirically yields ≥70% utilization and valid trees.
    let mut tree = RStarTree::with_params(dims, params);
    let mut slots: Vec<Option<(Rect, T)>> = items.into_iter().map(Some).collect();
    for idx in order {
        let (r, v) = slots[idx].take().expect("each item packed once");
        tree.insert(r, v);
    }
    tree
}

/// Recursively orders `order[..]` so that consecutive runs of `capacity`
/// items are spatially clustered (sort by dim, tile, recurse on next dim).
fn str_sort<T>(items: &[(Rect, T)], order: &mut [usize], dim: usize, dims: usize, capacity: usize) {
    if order.len() <= capacity || dim >= dims {
        return;
    }
    order.sort_by(|&a, &b| {
        let ca = center(&items[a].0, dim);
        let cb = center(&items[b].0, dim);
        ca.partial_cmp(&cb).expect("finite coordinates")
    });
    let n = order.len();
    let leaves = n.div_ceil(capacity);
    let remaining_dims = dims - dim;
    // Number of slabs along this dimension: ceil(leaves^(1/remaining_dims)).
    let slabs = (leaves as f64).powf(1.0 / remaining_dims as f64).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut start = 0;
    while start < n {
        let end = (start + slab_size).min(n);
        str_sort(items, &mut order[start..end], dim + 1, dims, capacity);
        start = end;
    }
}

fn center(r: &Rect, dim: usize) -> f64 {
    (r.lo()[dim] + r.hi()[dim]) * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<(Rect, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 37) as f64;
                let y = (i / 37) as f64;
                (Rect::point(&[x, y]), i)
            })
            .collect()
    }

    #[test]
    fn bulk_small_matches_inserts() {
        let tree = bulk_load(2, Params::new(8), grid_points(5));
        assert_eq!(tree.len(), 5);
        tree.validate().expect("valid");
    }

    #[test]
    fn bulk_large_is_valid_and_complete() {
        let items = grid_points(1000);
        let tree = bulk_load(2, Params::new(16), items.clone());
        assert_eq!(tree.len(), 1000);
        tree.validate().expect("valid");
        // Every item findable.
        for (r, v) in items.iter().take(50) {
            assert!(tree.collect_intersecting(r).iter().any(|&(_, got)| got == v));
        }
    }

    #[test]
    fn bulk_query_matches_linear_scan() {
        let items = grid_points(500);
        let tree = bulk_load(2, Params::new(10), items.clone());
        let q = Rect::new(vec![3.0, 2.0], vec![9.0, 6.0]);
        let mut expect: Vec<usize> =
            items.iter().filter(|(r, _)| r.intersects(&q)).map(|&(_, v)| v).collect();
        expect.sort_unstable();
        let mut got: Vec<usize> = tree.collect_intersecting(&q).iter().map(|&(_, v)| *v).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn bulk_supports_subsequent_mutation() {
        let items = grid_points(200);
        let mut tree = bulk_load(2, Params::new(8), items.clone());
        tree.insert(Rect::point(&[100.0, 100.0]), 9999);
        assert!(tree.remove(&items[0].0, &items[0].1));
        assert_eq!(tree.len(), 200);
        tree.validate().expect("valid after mutation");
    }
}
