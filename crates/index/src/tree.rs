//! The R\*-tree of Beckmann, Kriegel, Schneider and Seeger (SIGMOD 1990),
//! on an index-based node arena.
//!
//! Stardust maintains one R\*-tree per resolution level; every MBR produced
//! by the summarizer is inserted here and retired (deleted) once it falls
//! out of the history of interest, so the tree must support efficient
//! inserts, deletes, rectangle-intersection queries and point/radius
//! queries. The implementation follows the original paper:
//!
//! * **ChooseSubtree** — minimum *overlap* enlargement at the level above
//!   the leaves, minimum *area* enlargement elsewhere, with the published
//!   tie-breaks.
//! * **Split** — choose the split axis by minimum total margin over all
//!   candidate distributions, then the distribution with minimum overlap
//!   (ties: minimum combined area).
//! * **Forced reinsertion** — on the first overflow per level per insertion,
//!   the `p` entries farthest from the node center are reinserted instead of
//!   splitting, which is where most of the R\*-tree's query-quality advantage
//!   comes from.
//! * **Deletion** with tree condensation: underfull nodes are dissolved and
//!   their entries reinserted at their home level.
//!
//! # Arena layout
//!
//! Nodes live in one `Vec`-backed pool addressed by `u32` ids; deleted
//! nodes go on a free-list and are recycled with their `Vec` capacities
//! intact, so steady-state insert/delete churn performs no node
//! allocation. Edges are ids, not `Box` pointers — a descent follows
//! indexes into one contiguous allocation instead of chasing heap
//! pointers. Each node additionally mirrors its children's bounds in a
//! flat SoA-style `f64` array (entry `i` occupies `[2·d·i, 2·d·(i+1))` as
//! `lo` then `hi`), which turns the hot ChooseSubtree / `search_*` /
//! radius scans into tight branch-light loops over `f64` slices (the
//! `coords_*` primitives of [`crate::geometry`]). The materialized
//! [`Rect`]s are kept alongside — they back the reference-returning
//! public API (`search_*` visitors, [`NodeRef`], [`Iter`]) and exact
//! `PartialEq` matching in `remove`/`update`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::geometry::{
    coords_area, coords_margin, coords_overlap_area, coords_scan_intersecting, coords_scan_within,
    coords_union_area, Rect,
};

/// Cumulative structural-operation counters for one [`RStarTree`].
///
/// Maintained in relaxed atomics so read paths (`search_*`, which take
/// `&self`) can record node visits without locks or `&mut`, and so the
/// parallel range queries ([`RStarTree::par_collect_intersecting`]) can
/// share the tree across scoped worker threads — the tree is `Sync`
/// whenever its payload is. Uncontended relaxed increments cost about as
/// much as the plain register increment they replaced. Read with
/// [`RStarTree::counters`], or [`RStarTree::reset_counters`] for
/// per-query deltas.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TreeCounters {
    /// Data items inserted via [`RStarTree::insert`] (bulk-loaded items
    /// count here too).
    pub inserts: u64,
    /// Data items removed via [`RStarTree::remove`] / [`RStarTree::take`].
    pub removes: u64,
    /// Node splits (after forced reinsertion declined).
    pub splits: u64,
    /// Entries moved by forced reinsertion (the R\*-tree's
    /// OverflowTreatment) and deletion condensation.
    pub reinserted_entries: u64,
    /// Nodes visited by intersection / within-radius / nearest-neighbour
    /// searches.
    pub node_visits: u64,
}

impl TreeCounters {
    /// Field-wise sum, for aggregating across the per-level trees of a
    /// monitor.
    pub fn merged(self, other: TreeCounters) -> TreeCounters {
        TreeCounters {
            inserts: self.inserts + other.inserts,
            removes: self.removes + other.removes,
            splits: self.splits + other.splits,
            reinserted_entries: self.reinserted_entries + other.reinserted_entries,
            node_visits: self.node_visits + other.node_visits,
        }
    }
}

/// Interior-mutable backing store for [`TreeCounters`]: one relaxed
/// atomic per field. Counters are monotonic event tallies with no
/// cross-field invariants, so relaxed ordering (and non-atomic snapshots
/// across fields) is sound.
#[derive(Debug, Default)]
struct CounterCell {
    inserts: AtomicU64,
    removes: AtomicU64,
    splits: AtomicU64,
    reinserted_entries: AtomicU64,
    node_visits: AtomicU64,
}

impl CounterCell {
    fn snapshot(&self) -> TreeCounters {
        TreeCounters {
            inserts: self.inserts.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
            reinserted_entries: self.reinserted_entries.load(Ordering::Relaxed),
            node_visits: self.node_visits.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) -> TreeCounters {
        TreeCounters {
            inserts: self.inserts.swap(0, Ordering::Relaxed),
            removes: self.removes.swap(0, Ordering::Relaxed),
            splits: self.splits.swap(0, Ordering::Relaxed),
            reinserted_entries: self.reinserted_entries.swap(0, Ordering::Relaxed),
            node_visits: self.node_visits.swap(0, Ordering::Relaxed),
        }
    }
}

/// Adds `n` to one counter field (relaxed; see [`CounterCell`]).
#[inline]
fn bump(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Tuning parameters for an [`RStarTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per node (`m`), 40% of `M` by default.
    pub min_entries: usize,
    /// Entries removed by forced reinsertion (30% of `M` by default).
    pub reinsert_count: usize,
}

impl Params {
    /// The parameters recommended by the R\*-tree paper for a node capacity
    /// of `max_entries`: `m = 40%·M`, `p = 30%·M`.
    ///
    /// # Panics
    /// Panics if `max_entries < 4`.
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "node capacity must be at least 4");
        let min_entries = (max_entries * 2 / 5).max(2);
        let reinsert_count = (max_entries * 3 / 10).max(1);
        Params { max_entries, min_entries, reinsert_count }
    }
}

impl Default for Params {
    /// Capacity 16: measured sweet spot for the insert/delete-heavy
    /// workloads of the streaming summarizer (the O(M²) overlap criterion
    /// in ChooseSubtree dominates insertion at larger capacities).
    fn default() -> Self {
        Params::new(16)
    }
}

/// An entry moved between nodes by the insertion/deletion machinery: a
/// data item, or an edge to an arena node.
enum Entry<T> {
    /// A data item; only at level 0.
    Item(Rect, T),
    /// A subtree; the rect is the MBR of the child node.
    Child(Rect, u32),
}

impl<T> Entry<T> {
    fn rect(&self) -> &Rect {
        match self {
            Entry::Item(rect, _) | Entry::Child(rect, _) => rect,
        }
    }
}

/// One arena node. Parallel arrays: entry `i` is described by `rects[i]`,
/// its bounds mirrored flat in `coords`, and its payload in `values[i]`
/// (leaves) or `children[i]` (internal nodes).
struct Node<T> {
    /// 0 for leaves, increasing towards the root.
    level: usize,
    /// Flat SoA mirror of the entry bounds, `2·dims` values per entry
    /// (`lo` then `hi`); the hot scan loops read only this.
    coords: Vec<f64>,
    /// Materialized per-entry rectangles (same bounds as `coords`); the
    /// reference-returning public API borrows these.
    rects: Vec<Rect>,
    /// Leaf payloads; empty on internal nodes.
    values: Vec<T>,
    /// Child node ids; empty on leaves.
    children: Vec<u32>,
}

impl<T> Node<T> {
    fn new(level: usize) -> Self {
        Node {
            level,
            coords: Vec::new(),
            rects: Vec::new(),
            values: Vec::new(),
            children: Vec::new(),
        }
    }

    #[inline]
    fn count(&self) -> usize {
        self.rects.len()
    }

    /// `(lo, hi)` bound slices of entry `i` from the flat mirror.
    #[inline]
    fn bounds(&self, dims: usize, i: usize) -> (&[f64], &[f64]) {
        let w = 2 * dims;
        self.coords[i * w..(i + 1) * w].split_at(dims)
    }

    fn push_entry(&mut self, entry: Entry<T>) {
        let rect = match entry {
            Entry::Item(rect, value) => {
                debug_assert_eq!(self.level, 0, "item entry above leaf level");
                self.values.push(value);
                rect
            }
            Entry::Child(rect, id) => {
                debug_assert!(self.level > 0, "child entry at leaf level");
                self.children.push(id);
                rect
            }
        };
        self.coords.extend_from_slice(rect.lo());
        self.coords.extend_from_slice(rect.hi());
        self.rects.push(rect);
    }

    fn swap_remove_entry(&mut self, dims: usize, i: usize) -> Entry<T> {
        let w = 2 * dims;
        let last = self.count() - 1;
        if i != last {
            self.coords.copy_within(last * w..(last + 1) * w, i * w);
        }
        self.coords.truncate(last * w);
        let rect = self.rects.swap_remove(i);
        if self.level == 0 {
            Entry::Item(rect, self.values.swap_remove(i))
        } else {
            Entry::Child(rect, self.children.swap_remove(i))
        }
    }

    /// Replaces the bounds of entry `i` in both the mirror and the
    /// materialized rectangle.
    fn set_rect(&mut self, dims: usize, i: usize, rect: Rect) {
        let w = 2 * dims;
        self.coords[i * w..i * w + dims].copy_from_slice(rect.lo());
        self.coords[i * w + dims..(i + 1) * w].copy_from_slice(rect.hi());
        self.rects[i] = rect;
    }

    /// Drains every entry, leaving the node empty (capacities retained).
    fn take_entries(&mut self) -> Vec<Entry<T>> {
        self.coords.clear();
        let n = self.rects.len();
        let mut out = Vec::with_capacity(n);
        if self.level == 0 {
            for (rect, value) in self.rects.drain(..).zip(self.values.drain(..)) {
                out.push(Entry::Item(rect, value));
            }
        } else {
            for (rect, id) in self.rects.drain(..).zip(self.children.drain(..)) {
                out.push(Entry::Child(rect, id));
            }
        }
        out
    }

    /// MBR of all entries, computed from the flat mirror.
    fn mbr(&self, dims: usize) -> Rect {
        debug_assert!(self.count() > 0, "mbr of empty node");
        let w = 2 * dims;
        let mut lo = self.coords[..dims].to_vec();
        let mut hi = self.coords[dims..w].to_vec();
        for chunk in self.coords.chunks_exact(w).skip(1) {
            for d in 0..dims {
                if chunk[d] < lo[d] {
                    lo[d] = chunk[d];
                }
                if chunk[dims + d] > hi[d] {
                    hi[d] = chunk[dims + d];
                }
            }
        }
        Rect::new(lo, hi)
    }
}

/// An R\*-tree mapping rectangles to values of type `T`.
///
/// ```
/// use stardust_index::{Rect, RStarTree};
///
/// let mut tree = RStarTree::new(2);
/// for i in 0..100 {
///     let x = (i % 10) as f64;
///     let y = (i / 10) as f64;
///     tree.insert(Rect::point(&[x, y]), i);
/// }
/// let mut hits = Vec::new();
/// tree.search_intersecting(&Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]), |_, &v| {
///     hits.push(v)
/// });
/// hits.sort_unstable();
/// assert_eq!(hits, vec![0, 1, 10, 11]);
/// ```
pub struct RStarTree<T> {
    /// Node pool; ids index into this. Slots on the free-list are vacant.
    nodes: Vec<Node<T>>,
    /// Recycled node ids (emptied, capacities retained).
    free: Vec<u32>,
    root: u32,
    dims: usize,
    params: Params,
    len: usize,
    counters: CounterCell,
}

impl<T> RStarTree<T> {
    /// An empty tree over `dims`-dimensional rectangles with default
    /// parameters.
    ///
    /// # Panics
    /// Panics if `dims` is zero.
    pub fn new(dims: usize) -> Self {
        Self::with_params(dims, Params::default())
    }

    /// An empty tree with explicit parameters.
    ///
    /// # Panics
    /// Panics if `dims` is zero or the parameters are inconsistent.
    pub fn with_params(dims: usize, params: Params) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        assert!(params.min_entries >= 2, "min entries must be at least 2");
        assert!(
            params.min_entries * 2 <= params.max_entries + 1,
            "min entries too large for capacity"
        );
        assert!(
            params.reinsert_count >= 1 && params.reinsert_count <= params.max_entries / 2,
            "reinsert count out of range"
        );
        RStarTree {
            nodes: vec![Node::new(0)],
            free: Vec::new(),
            root: 0,
            dims,
            params,
            len: 0,
            counters: CounterCell::default(),
        }
    }

    #[inline]
    fn node(&self, id: u32) -> &Node<T> {
        &self.nodes[id as usize]
    }

    #[inline]
    fn node_mut(&mut self, id: u32) -> &mut Node<T> {
        &mut self.nodes[id as usize]
    }

    /// Allocates a node at `level`, recycling from the free-list when
    /// possible (the recycled node keeps its `Vec` capacities, so churn
    /// settles into zero-allocation steady state).
    fn alloc(&mut self, level: usize) -> u32 {
        if let Some(id) = self.free.pop() {
            let node = &mut self.nodes[id as usize];
            debug_assert!(node.rects.is_empty(), "free-listed node not empty");
            node.level = level;
            id
        } else {
            assert!(self.nodes.len() < u32::MAX as usize, "node arena exhausted");
            self.nodes.push(Node::new(level));
            (self.nodes.len() - 1) as u32
        }
    }

    /// Empties a node and returns its slot to the free-list.
    fn release(&mut self, id: u32) {
        let node = &mut self.nodes[id as usize];
        node.coords.clear();
        node.rects.clear();
        node.values.clear();
        node.children.clear();
        self.free.push(id);
    }

    /// Cumulative structural-operation counters since construction (or
    /// the last [`RStarTree::reset_counters`]).
    pub fn counters(&self) -> TreeCounters {
        self.counters.snapshot()
    }

    /// Returns the current counters and resets them to zero; callers
    /// use this to attribute node visits to a single query.
    pub fn reset_counters(&self) -> TreeCounters {
        self.counters.reset()
    }

    /// Records one node visit; crate-internal hook for traversals that
    /// walk the tree through [`NodeRef`] (best-first k-NN).
    pub(crate) fn note_node_visit(&self) {
        bump(&self.counters.node_visits, 1);
    }

    /// Number of data items stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the indexed rectangles.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Tree height (1 for a single leaf root).
    pub fn height(&self) -> usize {
        self.node(self.root).level + 1
    }

    /// MBR of the whole tree, `None` when empty.
    pub fn bounding_rect(&self) -> Option<Rect> {
        let root = self.node(self.root);
        if root.count() == 0 {
            None
        } else {
            Some(root.mbr(self.dims))
        }
    }

    /// Inserts a rectangle/value pair.
    ///
    /// # Panics
    /// Panics if the rectangle has the wrong dimensionality.
    pub fn insert(&mut self, rect: Rect, value: T) {
        assert_eq!(rect.dims(), self.dims, "rectangle dimensionality mismatch");
        self.len += 1;
        bump(&self.counters.inserts, 1);
        self.insert_queue(vec![(Entry::Item(rect, value), 0)]);
    }

    /// Runs the insertion machinery over a queue of (entry, home level)
    /// pairs; shared by public insert, forced reinsertion and deletion
    /// condensation.
    fn insert_queue(&mut self, mut queue: Vec<(Entry<T>, usize)>) {
        let mut reinserted = vec![false; self.node(self.root).level + 1];
        while let Some((entry, level)) = queue.pop() {
            let root_level = self.node(self.root).level;
            if reinserted.len() <= root_level {
                reinserted.resize(root_level + 1, false);
            }
            let split = self.insert_rec(self.root, entry, level, true, &mut reinserted, &mut queue);
            if let Some(sibling) = split {
                let old_root = self.root;
                let old_rect = self.node(old_root).mbr(self.dims);
                let new_root = self.alloc(root_level + 1);
                self.node_mut(new_root).push_entry(Entry::Child(old_rect, old_root));
                self.node_mut(new_root).push_entry(sibling);
                self.root = new_root;
            }
        }
    }

    /// Inserts `entry` (whose home level is `target_level`) into the
    /// subtree rooted at `id`. Returns a sibling entry if the node split.
    fn insert_rec(
        &mut self,
        id: u32,
        entry: Entry<T>,
        target_level: usize,
        is_root: bool,
        reinserted: &mut [bool],
        queue: &mut Vec<(Entry<T>, usize)>,
    ) -> Option<Entry<T>> {
        if self.node(id).level == target_level {
            self.node_mut(id).push_entry(entry);
        } else {
            let idx = self.choose_subtree(id, entry.rect());
            let child = self.node(id).children[idx];
            let split = self.insert_rec(child, entry, target_level, false, reinserted, queue);
            // The child may have grown (insert) or shrunk (reinsertion
            // removed entries), so recompute its MBR either way.
            let dims = self.dims;
            let crect = self.node(child).mbr(dims);
            self.node_mut(id).set_rect(dims, idx, crect);
            if let Some(sibling) = split {
                self.node_mut(id).push_entry(sibling);
            }
        }
        if self.node(id).count() > self.params.max_entries {
            self.overflow_treatment(id, is_root, reinserted, queue)
        } else {
            None
        }
    }

    /// R\*-tree OverflowTreatment: forced reinsertion on the first overflow
    /// per level per insertion, split otherwise.
    fn overflow_treatment(
        &mut self,
        id: u32,
        is_root: bool,
        reinserted: &mut [bool],
        queue: &mut Vec<(Entry<T>, usize)>,
    ) -> Option<Entry<T>> {
        let level = self.node(id).level;
        if !is_root && !reinserted[level] {
            reinserted[level] = true;
            let center = self.node(id).mbr(self.dims);
            // Sort by distance of entry center to node center, take the p
            // farthest for reinsertion ("far reinsert"); keeping the
            // closest entries compacts the node.
            let node = self.node(id);
            let mut order: Vec<usize> = (0..node.count()).collect();
            order.sort_by(|&a, &b| {
                let da = node.rects[a].center_dist_sqr(&center);
                let db = node.rects[b].center_dist_sqr(&center);
                da.partial_cmp(&db).expect("finite distances")
            });
            let cut = node.count() - self.params.reinsert_count;
            let far: Vec<usize> = order[cut..].to_vec();
            let mut removed = self.extract_indices(id, &far);
            // Reinsert closest-first: the last popped from the LIFO queue
            // is the closest, matching the paper's "close reinsert"
            // ordering.
            removed.reverse();
            bump(&self.counters.reinserted_entries, removed.len() as u64);
            for e in removed {
                queue.push((e, level));
            }
            None
        } else {
            bump(&self.counters.splits, 1);
            Some(self.split_node(id))
        }
    }

    /// Removes the entries at `indices` (any order) and returns them in
    /// ascending index order.
    fn extract_indices(&mut self, id: u32, indices: &[usize]) -> Vec<Entry<T>> {
        let dims = self.dims;
        let mut sorted = indices.to_vec();
        sorted.sort_unstable();
        let node = self.node_mut(id);
        let mut out = Vec::with_capacity(sorted.len());
        for &i in sorted.iter().rev() {
            out.push(node.swap_remove_entry(dims, i));
        }
        out.reverse();
        out
    }

    /// R\*-tree ChooseSubtree, scanning the flat bound mirror.
    fn choose_subtree(&self, id: u32, rect: &Rect) -> usize {
        let dims = self.dims;
        let node = self.node(id);
        debug_assert!(node.level > 0);
        let n = node.count();
        let (qlo, qhi) = (rect.lo(), rect.hi());
        let mut best = 0usize;
        if node.level == 1 {
            // Children are leaves: minimize overlap enlargement. The grown
            // bounds are materialized once per candidate; overlap deltas
            // prune early against the running best.
            let mut best_overlap = f64::INFINITY;
            let mut best_enlarge = f64::INFINITY;
            let mut best_area = f64::INFINITY;
            let mut glo = vec![0.0; dims];
            let mut ghi = vec![0.0; dims];
            for i in 0..n {
                let (ilo, ihi) = node.bounds(dims, i);
                for d in 0..dims {
                    glo[d] = ilo[d].min(qlo[d]);
                    ghi[d] = ihi[d].max(qhi[d]);
                }
                let mut overlap_delta = 0.0;
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let (jlo, jhi) = node.bounds(dims, j);
                    overlap_delta += coords_overlap_area(&glo, &ghi, jlo, jhi)
                        - coords_overlap_area(ilo, ihi, jlo, jhi);
                    if overlap_delta > best_overlap {
                        break;
                    }
                }
                let area = coords_area(ilo, ihi);
                let enlarge = coords_area(&glo, &ghi) - area;
                if overlap_delta < best_overlap
                    || (overlap_delta == best_overlap && enlarge < best_enlarge)
                    || (overlap_delta == best_overlap
                        && enlarge == best_enlarge
                        && area < best_area)
                {
                    best = i;
                    best_overlap = overlap_delta;
                    best_enlarge = enlarge;
                    best_area = area;
                }
            }
        } else {
            // Minimize area enlargement, ties by smallest area.
            let mut best_enlarge = f64::INFINITY;
            let mut best_area = f64::INFINITY;
            for i in 0..n {
                let (ilo, ihi) = node.bounds(dims, i);
                let area = coords_area(ilo, ihi);
                let enlarge = coords_union_area(ilo, ihi, qlo, qhi) - area;
                if enlarge < best_enlarge || (enlarge == best_enlarge && area < best_area) {
                    best = i;
                    best_enlarge = enlarge;
                    best_area = area;
                }
            }
        }
        best
    }

    /// R\*-tree Split: returns the new sibling as a child entry; the node
    /// keeps the first group.
    fn split_node(&mut self, id: u32) -> Entry<T> {
        let dims = self.dims;
        let min = self.params.min_entries;
        let level = self.node(id).level;
        let entries = self.node_mut(id).take_entries();
        let total = entries.len();
        debug_assert!(total > self.params.max_entries);
        let w = 2 * dims;

        // ChooseSplitAxis: minimize the sum of margins over all
        // distributions of both sort orders.
        let mut best_axis = 0usize;
        let mut best_margin = f64::INFINITY;
        for axis in 0..dims {
            let mut margin_sum = 0.0;
            for sort_by_hi in [false, true] {
                let order = sorted_order(&entries, axis, sort_by_hi);
                let (prefix, suffix) = prefix_suffix_bounds(&entries, &order, dims);
                for k in min..=total - min {
                    let p = &prefix[(k - 1) * w..k * w];
                    let s = &suffix[k * w..(k + 1) * w];
                    margin_sum += coords_margin(&p[..dims], &p[dims..])
                        + coords_margin(&s[..dims], &s[dims..]);
                }
            }
            if margin_sum < best_margin {
                best_margin = margin_sum;
                best_axis = axis;
            }
        }

        // ChooseSplitIndex on the best axis: minimize overlap, ties by area.
        let mut best: Option<(Vec<usize>, usize)> = None;
        let mut best_overlap = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for sort_by_hi in [false, true] {
            let order = sorted_order(&entries, best_axis, sort_by_hi);
            let (prefix, suffix) = prefix_suffix_bounds(&entries, &order, dims);
            for k in min..=total - min {
                let p = &prefix[(k - 1) * w..k * w];
                let s = &suffix[k * w..(k + 1) * w];
                let overlap = coords_overlap_area(&p[..dims], &p[dims..], &s[..dims], &s[dims..]);
                let area =
                    coords_area(&p[..dims], &p[dims..]) + coords_area(&s[..dims], &s[dims..]);
                if overlap < best_overlap || (overlap == best_overlap && area < best_area) {
                    best_overlap = overlap;
                    best_area = area;
                    best = Some((order.clone(), k));
                }
            }
        }
        let (order, k) = best.expect("at least one distribution");

        // Partition the entries according to the chosen distribution: the
        // first group refills this node, the second a recycled sibling.
        let sibling = self.alloc(level);
        let mut slots: Vec<Option<Entry<T>>> = entries.into_iter().map(Some).collect();
        for (pos, &idx) in order.iter().enumerate() {
            let e = slots[idx].take().expect("each entry used once");
            let target = if pos < k { id } else { sibling };
            self.node_mut(target).push_entry(e);
        }
        let rect = self.node(sibling).mbr(dims);
        Entry::Child(rect, sibling)
    }

    /// Removes one item equal to `(rect, value)`. Returns `true` if found.
    ///
    /// # Panics
    /// Panics if the rectangle has the wrong dimensionality.
    pub fn remove(&mut self, rect: &Rect, value: &T) -> bool
    where
        T: PartialEq,
    {
        self.take(rect, value).is_some()
    }

    /// Removes one item equal to `(rect, value)` and returns its value.
    ///
    /// # Panics
    /// Panics if the rectangle has the wrong dimensionality.
    pub fn take(&mut self, rect: &Rect, value: &T) -> Option<T>
    where
        T: PartialEq,
    {
        assert_eq!(rect.dims(), self.dims, "rectangle dimensionality mismatch");
        let mut orphans = Vec::new();
        let removed = self.remove_rec(self.root, rect, value, &mut orphans);
        if removed.is_none() {
            debug_assert!(orphans.is_empty());
            return None;
        }
        self.len -= 1;
        bump(&self.counters.removes, 1);
        bump(&self.counters.reinserted_entries, orphans.len() as u64);
        // Shrink the root while it is an internal node with a single child.
        while self.node(self.root).level > 0 && self.node(self.root).count() == 1 {
            let old = self.root;
            self.root = self.node(old).children[0];
            self.release(old);
        }
        if !orphans.is_empty() {
            self.insert_queue(orphans);
        }
        removed
    }

    /// Removes one matching item, returning its value; collects orphaned
    /// entries from dissolved underfull nodes into `orphans` as (entry,
    /// home level) pairs.
    fn remove_rec(
        &mut self,
        id: u32,
        rect: &Rect,
        value: &T,
        orphans: &mut Vec<(Entry<T>, usize)>,
    ) -> Option<T>
    where
        T: PartialEq,
    {
        let dims = self.dims;
        if self.node(id).level == 0 {
            let node = self.node(id);
            let pos =
                (0..node.count()).find(|&i| &node.rects[i] == rect && &node.values[i] == value);
            pos.map(|i| match self.node_mut(id).swap_remove_entry(dims, i) {
                Entry::Item(_, v) => v,
                Entry::Child(..) => unreachable!("leaf holds items"),
            })
        } else {
            let mut found = None;
            for i in 0..self.node(id).count() {
                if !self.node(id).rects[i].contains_rect(rect) {
                    continue;
                }
                let child = self.node(id).children[i];
                if let Some(v) = self.remove_rec(child, rect, value, orphans) {
                    found = Some((i, v));
                    break;
                }
            }
            let (i, taken) = found?;
            let child = self.node(id).children[i];
            if self.node(child).count() < self.params.min_entries {
                // Condensation: dissolve the underfull child, re-queue its
                // entries at their home level, and recycle the node.
                self.node_mut(id).swap_remove_entry(dims, i);
                let level = self.node(child).level;
                let entries = self.node_mut(child).take_entries();
                self.release(child);
                for e in entries {
                    orphans.push((e, level));
                }
            } else {
                let crect = self.node(child).mbr(dims);
                self.node_mut(id).set_rect(dims, i, crect);
            }
            Some(taken)
        }
    }

    /// Replaces the rectangle of the item `(old_rect, value)` with
    /// `new_rect` — the frequent-update optimization of Lee et al. (VLDB
    /// 2003), which §4 cites for accelerating streaming workloads where
    /// consecutive feature boxes barely move.
    ///
    /// When the new rectangle stays inside the hosting leaf's MBR, the
    /// entry is patched **in place** (ancestor MBRs are tightened on the
    /// way back up, no structural change); otherwise it falls back to
    /// `remove` + `insert`. Returns `false` if the item was not found.
    ///
    /// # Panics
    /// Panics on a dimensionality mismatch.
    pub fn update(&mut self, old_rect: &Rect, value: &T, new_rect: Rect) -> bool
    where
        T: PartialEq,
    {
        assert_eq!(old_rect.dims(), self.dims, "rectangle dimensionality mismatch");
        assert_eq!(new_rect.dims(), self.dims, "rectangle dimensionality mismatch");
        match self.update_rec(self.root, old_rect, value, &new_rect) {
            UpdateOutcome::NotFound => false,
            UpdateOutcome::Patched => true,
            UpdateOutcome::NeedsReinsert => {
                let owned = self.take(old_rect, value).expect("entry was just located");
                self.insert(new_rect, owned);
                true
            }
        }
    }

    /// Descends guided by `old_rect`; patches the entry in place if
    /// `new_rect` stays within the hosting leaf's MBR.
    fn update_rec(&mut self, id: u32, old_rect: &Rect, value: &T, new_rect: &Rect) -> UpdateOutcome
    where
        T: PartialEq,
    {
        let dims = self.dims;
        if self.node(id).level == 0 {
            let node = self.node(id);
            let pos =
                (0..node.count()).find(|&i| &node.rects[i] == old_rect && &node.values[i] == value);
            let Some(i) = pos else { return UpdateOutcome::NotFound };
            if !node.mbr(dims).contains_rect(new_rect) {
                return UpdateOutcome::NeedsReinsert;
            }
            self.node_mut(id).set_rect(dims, i, new_rect.clone());
            UpdateOutcome::Patched
        } else {
            for i in 0..self.node(id).count() {
                if !self.node(id).rects[i].contains_rect(old_rect) {
                    continue;
                }
                let child = self.node(id).children[i];
                match self.update_rec(child, old_rect, value, new_rect) {
                    UpdateOutcome::NotFound => continue,
                    UpdateOutcome::Patched => {
                        // The leaf may have shrunk if the old rectangle was
                        // on its boundary; tighten MBRs on the way up.
                        let crect = self.node(child).mbr(dims);
                        self.node_mut(id).set_rect(dims, i, crect);
                        return UpdateOutcome::Patched;
                    }
                    UpdateOutcome::NeedsReinsert => return UpdateOutcome::NeedsReinsert,
                }
            }
            UpdateOutcome::NotFound
        }
    }

    /// Visits every item whose rectangle intersects `query`.
    pub fn search_intersecting<'a, F>(&'a self, query: &Rect, mut visit: F)
    where
        F: FnMut(&'a Rect, &'a T),
    {
        assert_eq!(query.dims(), self.dims, "query dimensionality mismatch");
        let mut visits = 0;
        self.search_rec(self.root, query.lo(), query.hi(), &mut visits, &mut visit);
        bump(&self.counters.node_visits, visits);
    }

    /// `visits` batches the node-visit count for one atomic add per query
    /// instead of one per node — the counter is shared (the tree is
    /// queryable from several threads), but the hot path must not pay a
    /// read-modify-write per visited node.
    fn search_rec<'a, F>(
        &'a self,
        id: u32,
        qlo: &[f64],
        qhi: &[f64],
        visits: &mut u64,
        visit: &mut F,
    ) where
        F: FnMut(&'a Rect, &'a T),
    {
        *visits += 1;
        let node = &self.nodes[id as usize];
        if node.level == 0 {
            coords_scan_intersecting(&node.coords, self.dims, qlo, qhi, |i| {
                visit(&node.rects[i], &node.values[i]);
            });
        } else {
            coords_scan_intersecting(&node.coords, self.dims, qlo, qhi, |i| {
                self.search_rec(node.children[i], qlo, qhi, visits, visit);
            });
        }
    }

    /// Collects every item whose rectangle intersects `query`.
    pub fn collect_intersecting(&self, query: &Rect) -> Vec<(&Rect, &T)> {
        let mut out = Vec::new();
        self.search_intersecting(query, |r, v| out.push((r, v)));
        out
    }

    /// Visits every item whose rectangle lies within Euclidean distance `r`
    /// of `point` (`d_min(point, rect) ≤ r`) — the range query of the
    /// pattern and correlation monitors.
    pub fn search_within<'a, F>(&'a self, point: &[f64], r: f64, mut visit: F)
    where
        F: FnMut(&'a Rect, &'a T),
    {
        assert_eq!(point.len(), self.dims, "query dimensionality mismatch");
        assert!(r >= 0.0, "radius must be nonnegative");
        let mut visits = 0;
        self.within_rec(self.root, point, r, &mut visits, &mut visit);
        bump(&self.counters.node_visits, visits);
    }

    fn within_rec<'a, F>(&'a self, id: u32, point: &[f64], r: f64, visits: &mut u64, visit: &mut F)
    where
        F: FnMut(&'a Rect, &'a T),
    {
        *visits += 1;
        let node = &self.nodes[id as usize];
        if node.level == 0 {
            coords_scan_within(&node.coords, self.dims, point, r, |i| {
                visit(&node.rects[i], &node.values[i]);
            });
        } else {
            coords_scan_within(&node.coords, self.dims, point, r, |i| {
                self.within_rec(node.children[i], point, r, visits, visit);
            });
        }
    }

    /// Collects every item within distance `r` of `point`.
    pub fn collect_within(&self, point: &[f64], r: f64) -> Vec<(&Rect, &T)> {
        let mut out = Vec::new();
        self.search_within(point, r, |rect, v| out.push((rect, v)));
        out
    }

    /// [`Self::collect_intersecting`] split across up to `threads` scoped
    /// worker threads — intra-query parallelism for range queries that
    /// touch many nodes.
    ///
    /// The root's intersecting subtrees are partitioned into contiguous
    /// runs, each run is walked serially by one worker, and the per-run
    /// results are concatenated in run order. Serial depth-first search
    /// visits those same subtrees in the same order, so the result is
    /// **identical — contents and order — to the serial path at every
    /// thread count** (pinned by `par_queries_match_serial` and the
    /// runtime's chaos equivalence suite). With `threads <= 1`, a
    /// single-level tree, or fewer than two intersecting subtrees, no
    /// threads are spawned and the serial path runs directly.
    pub fn par_collect_intersecting(&self, query: &Rect, threads: usize) -> Vec<(&Rect, &T)>
    where
        T: Sync,
    {
        assert_eq!(query.dims(), self.dims, "query dimensionality mismatch");
        let root = self.node(self.root);
        if threads <= 1 || root.level == 0 {
            return self.collect_intersecting(query);
        }
        let (qlo, qhi) = (query.lo(), query.hi());
        bump(&self.counters.node_visits, 1);
        let mut subtrees: Vec<u32> = Vec::new();
        coords_scan_intersecting(&root.coords, self.dims, qlo, qhi, |i| {
            subtrees.push(root.children[i]);
        });
        self.fan_out(&subtrees, threads, |id, out| {
            let mut visits = 0;
            self.search_rec(id, qlo, qhi, &mut visits, &mut |r, v| out.push((r, v)));
            bump(&self.counters.node_visits, visits);
        })
    }

    /// [`Self::collect_within`] split across up to `threads` scoped worker
    /// threads; same partitioning and determinism contract as
    /// [`Self::par_collect_intersecting`].
    pub fn par_collect_within(&self, point: &[f64], r: f64, threads: usize) -> Vec<(&Rect, &T)>
    where
        T: Sync,
    {
        assert_eq!(point.len(), self.dims, "query dimensionality mismatch");
        assert!(r >= 0.0, "radius must be nonnegative");
        let root = self.node(self.root);
        if threads <= 1 || root.level == 0 {
            return self.collect_within(point, r);
        }
        bump(&self.counters.node_visits, 1);
        let mut subtrees: Vec<u32> = Vec::new();
        coords_scan_within(&root.coords, self.dims, point, r, |i| {
            subtrees.push(root.children[i]);
        });
        self.fan_out(&subtrees, threads, |id, out| {
            let mut visits = 0;
            self.within_rec(id, point, r, &mut visits, &mut |rect, v| out.push((rect, v)));
            bump(&self.counters.node_visits, visits);
        })
    }

    /// Walks each subtree id in `subtrees` with `walk`, spreading
    /// contiguous runs across scoped threads, and concatenates the per-run
    /// outputs in run order — exactly the serial visit order.
    fn fan_out<'a, F>(&'a self, subtrees: &[u32], threads: usize, walk: F) -> Vec<(&'a Rect, &'a T)>
    where
        T: Sync,
        F: Fn(u32, &mut Vec<(&'a Rect, &'a T)>) + Sync,
    {
        if subtrees.len() < 2 {
            let mut out = Vec::new();
            for &id in subtrees {
                walk(id, &mut out);
            }
            return out;
        }
        let run = subtrees.len().div_ceil(threads.min(subtrees.len()));
        let mut parts: Vec<Vec<(&Rect, &T)>> = Vec::with_capacity(subtrees.len().div_ceil(run));
        std::thread::scope(|scope| {
            let handles: Vec<_> = subtrees
                .chunks(run)
                .map(|ids| {
                    let walk = &walk;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for &id in ids {
                            walk(id, &mut out);
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("parallel query worker panicked"));
            }
        });
        parts.concat()
    }

    /// Iterates over all items in unspecified order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { tree: self, stack: vec![(self.root, 0)] }
    }

    /// Verifies the structural invariants of the tree; used by tests and
    /// property checks. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let root = self.node(self.root);
        if root.level > 0 && root.count() < 2 {
            return Err("internal root with fewer than 2 entries".into());
        }
        let mut count = 0;
        let mut visited = 0;
        self.validate_rec(self.root, true, &mut count, &mut visited)?;
        if count != self.len {
            return Err(format!("len {} but {} items reachable", self.len, count));
        }
        if visited + self.free.len() != self.nodes.len() {
            return Err(format!(
                "arena accounting broken: {} slots, {} reachable + {} free",
                self.nodes.len(),
                visited,
                self.free.len()
            ));
        }
        Ok(())
    }

    fn validate_rec(
        &self,
        id: u32,
        is_root: bool,
        count: &mut usize,
        visited: &mut usize,
    ) -> Result<(), String> {
        *visited += 1;
        let node = self.node(id);
        let dims = self.dims;
        if !is_root
            && (node.count() < self.params.min_entries || node.count() > self.params.max_entries)
        {
            return Err(format!(
                "node at level {} has {} entries (bounds {}..={})",
                node.level,
                node.count(),
                self.params.min_entries,
                self.params.max_entries
            ));
        }
        if node.count() > self.params.max_entries {
            return Err("root exceeds capacity".into());
        }
        if node.coords.len() != node.count() * 2 * dims {
            return Err(format!("flat mirror length mismatch at level {}", node.level));
        }
        let payloads = if node.level == 0 { node.values.len() } else { node.children.len() };
        if payloads != node.count() {
            return Err(format!("payload arity mismatch at level {}", node.level));
        }
        if node.level == 0 && !node.children.is_empty() {
            return Err("child entry at leaf level".into());
        }
        if node.level > 0 && !node.values.is_empty() {
            return Err("item entry above leaf level".into());
        }
        for i in 0..node.count() {
            let rect = &node.rects[i];
            if rect.dims() != dims {
                return Err("entry with wrong dimensionality".into());
            }
            let (lo, hi) = node.bounds(dims, i);
            if lo != rect.lo() || hi != rect.hi() {
                return Err(format!("flat mirror out of sync at level {}", node.level));
            }
            if node.level == 0 {
                *count += 1;
            } else {
                let child_id = node.children[i];
                let child = self.node(child_id);
                if child.level + 1 != node.level {
                    return Err(format!(
                        "child level {} under node level {}",
                        child.level, node.level
                    ));
                }
                if child.count() == 0 {
                    return Err("empty child node".into());
                }
                let actual = child.mbr(dims);
                if &actual != rect {
                    return Err(format!(
                        "stale child MBR at level {}: stored {:?}, actual {:?}",
                        node.level, rect, actual
                    ));
                }
                self.validate_rec(child_id, false, count, visited)?;
            }
        }
        Ok(())
    }
}

/// Crate-internal construction surface for the STR bulk loader
/// ([`crate::bulk`]): packs nodes directly into the arena, bottom-up.
impl<T> RStarTree<T> {
    /// A full leaf node from pre-grouped items; returns its id.
    pub(crate) fn bulk_new_leaf(&mut self, items: impl IntoIterator<Item = (Rect, T)>) -> u32 {
        let id = self.alloc(0);
        for (rect, value) in items {
            self.node_mut(id).push_entry(Entry::Item(rect, value));
        }
        id
    }

    /// An internal node at `level` over already-built children.
    pub(crate) fn bulk_new_inner(&mut self, level: usize, children: &[u32]) -> u32 {
        let id = self.alloc(level);
        for &child in children {
            debug_assert_eq!(self.node(child).level + 1, level);
            let rect = self.node(child).mbr(self.dims);
            self.node_mut(id).push_entry(Entry::Child(rect, child));
        }
        id
    }

    /// MBR of an arena node (for STR ordering of upper levels).
    pub(crate) fn bulk_node_mbr(&self, id: u32) -> Rect {
        self.node(id).mbr(self.dims)
    }

    /// Installs the packed root, recycling the placeholder root the tree
    /// was constructed with, and accounts the loaded items.
    pub(crate) fn bulk_finish(&mut self, root: u32, n_items: usize) {
        if root != self.root {
            let old = self.root;
            self.root = root;
            self.release(old);
        }
        self.len = n_items;
        bump(&self.counters.inserts, n_items as u64);
    }
}

impl<T> std::fmt::Debug for RStarTree<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RStarTree")
            .field("dims", &self.dims)
            .field("len", &self.len)
            .field("height", &self.height())
            .finish()
    }
}

/// Outcome of the in-place update descent.
enum UpdateOutcome {
    /// No matching item in this subtree.
    NotFound,
    /// The entry was patched in place; ancestor MBRs were refreshed.
    Patched,
    /// The entry exists, but the new rectangle escapes its leaf's MBR —
    /// delete + reinsert is required for tree quality (Lee et al.).
    NeedsReinsert,
}

fn sorted_order<T>(entries: &[Entry<T>], axis: usize, by_hi: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        let (ka, kb) = if by_hi {
            (entries[a].rect().hi()[axis], entries[b].rect().hi()[axis])
        } else {
            (entries[a].rect().lo()[axis], entries[b].rect().lo()[axis])
        };
        ka.partial_cmp(&kb).expect("finite coordinates")
    });
    order
}

/// Flat running unions over a candidate split order: chunk `i` of the
/// prefix buffer (width `2·dims`, `lo` then `hi`) bounds `order[0..=i]`,
/// chunk `i` of the suffix buffer bounds `order[i..]`.
fn prefix_suffix_bounds<T>(
    entries: &[Entry<T>],
    order: &[usize],
    dims: usize,
) -> (Vec<f64>, Vec<f64>) {
    let n = order.len();
    let w = 2 * dims;
    let mut prefix = vec![0.0; n * w];
    let mut acc_lo = entries[order[0]].rect().lo().to_vec();
    let mut acc_hi = entries[order[0]].rect().hi().to_vec();
    prefix[..dims].copy_from_slice(&acc_lo);
    prefix[dims..w].copy_from_slice(&acc_hi);
    for (pos, &i) in order.iter().enumerate().skip(1) {
        let r = entries[i].rect();
        for d in 0..dims {
            if r.lo()[d] < acc_lo[d] {
                acc_lo[d] = r.lo()[d];
            }
            if r.hi()[d] > acc_hi[d] {
                acc_hi[d] = r.hi()[d];
            }
        }
        prefix[pos * w..pos * w + dims].copy_from_slice(&acc_lo);
        prefix[pos * w + dims..(pos + 1) * w].copy_from_slice(&acc_hi);
    }
    let mut suffix = vec![0.0; n * w];
    acc_lo.copy_from_slice(entries[order[n - 1]].rect().lo());
    acc_hi.copy_from_slice(entries[order[n - 1]].rect().hi());
    suffix[(n - 1) * w..(n - 1) * w + dims].copy_from_slice(&acc_lo);
    suffix[(n - 1) * w + dims..n * w].copy_from_slice(&acc_hi);
    for pos in (0..n - 1).rev() {
        let r = entries[order[pos]].rect();
        for d in 0..dims {
            if r.lo()[d] < acc_lo[d] {
                acc_lo[d] = r.lo()[d];
            }
            if r.hi()[d] > acc_hi[d] {
                acc_hi[d] = r.hi()[d];
            }
        }
        suffix[pos * w..pos * w + dims].copy_from_slice(&acc_lo);
        suffix[pos * w + dims..(pos + 1) * w].copy_from_slice(&acc_hi);
    }
    (prefix, suffix)
}

/// Read-only handle to a tree node, used by traversal-based algorithms
/// (best-first k-NN in [`crate::knn`]).
pub struct NodeRef<'a, T> {
    tree: &'a RStarTree<T>,
    id: u32,
}

/// One child of a [`NodeRef`]: either a stored item or a subtree with its
/// bounding rectangle.
pub enum ChildRef<'a, T> {
    /// A data item at the leaf level.
    Item(&'a Rect, &'a T),
    /// An internal child with its MBR.
    Node(&'a Rect, NodeRef<'a, T>),
}

impl<'a, T> NodeRef<'a, T> {
    /// Iterates the node's children.
    pub fn children(&self) -> impl Iterator<Item = ChildRef<'a, T>> + 'a {
        let tree = self.tree;
        let node = &tree.nodes[self.id as usize];
        node.rects.iter().enumerate().map(move |(i, rect)| {
            if node.level == 0 {
                ChildRef::Item(rect, &node.values[i])
            } else {
                ChildRef::Node(rect, NodeRef { tree, id: node.children[i] })
            }
        })
    }

    /// Level of this node (0 = leaf).
    pub fn level(&self) -> usize {
        self.tree.nodes[self.id as usize].level
    }
}

impl<T> RStarTree<T> {
    /// Read-only handle to the root node.
    pub fn root_ref(&self) -> NodeRef<'_, T> {
        NodeRef { tree: self, id: self.root }
    }
}

/// Depth-first iterator over the items of an [`RStarTree`].
pub struct Iter<'a, T> {
    tree: &'a RStarTree<T>,
    /// (node id, next entry index) frames.
    stack: Vec<(u32, usize)>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (&'a Rect, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        let tree = self.tree;
        loop {
            let (id, idx) = self.stack.last_mut()?;
            let node = &tree.nodes[*id as usize];
            if *idx >= node.count() {
                self.stack.pop();
                continue;
            }
            let i = *idx;
            *idx += 1;
            if node.level == 0 {
                return Some((&node.rects[i], &node.values[i]));
            }
            self.stack.push((node.children[i], 0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random f64 in [0, 1) via splitmix64.
    fn rng(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn random_rect(seed: &mut u64, dims: usize) -> Rect {
        let lo: Vec<f64> = (0..dims).map(|_| rng(seed) * 100.0).collect();
        let hi: Vec<f64> = lo.iter().map(|l| l + rng(seed) * 5.0).collect();
        Rect::new(lo, hi)
    }

    #[test]
    fn empty_tree() {
        let tree: RStarTree<u32> = RStarTree::new(3);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert!(tree.bounding_rect().is_none());
        assert!(tree.validate().is_ok());
        assert_eq!(tree.collect_intersecting(&Rect::point(&[0.0, 0.0, 0.0])).len(), 0);
    }

    #[test]
    fn insert_and_query_small() {
        let mut tree = RStarTree::new(2);
        tree.insert(Rect::point(&[1.0, 1.0]), "a");
        tree.insert(Rect::point(&[5.0, 5.0]), "b");
        tree.insert(Rect::new(vec![0.0, 0.0], vec![2.0, 2.0]), "c");
        assert_eq!(tree.len(), 3);
        let hits = tree.collect_intersecting(&Rect::new(vec![0.5, 0.5], vec![1.5, 1.5]));
        let mut vals: Vec<&str> = hits.iter().map(|(_, v)| **v).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec!["a", "c"]);
    }

    #[test]
    fn grows_and_validates_with_many_inserts() {
        let mut tree = RStarTree::with_params(2, Params::new(8));
        let mut seed = 42;
        for i in 0..500 {
            tree.insert(random_rect(&mut seed, 2), i);
        }
        assert_eq!(tree.len(), 500);
        assert!(tree.height() > 2);
        tree.validate().expect("valid after inserts");
    }

    #[test]
    fn query_matches_linear_scan() {
        let mut tree = RStarTree::with_params(3, Params::new(10));
        let mut seed = 7;
        let mut items = Vec::new();
        for i in 0..300 {
            let r = random_rect(&mut seed, 3);
            items.push((r.clone(), i));
            tree.insert(r, i);
        }
        for _ in 0..20 {
            let q = random_rect(&mut seed, 3);
            let mut expect: Vec<i32> =
                items.iter().filter(|(r, _)| r.intersects(&q)).map(|&(_, v)| v).collect();
            expect.sort_unstable();
            let mut got: Vec<i32> =
                tree.collect_intersecting(&q).iter().map(|&(_, v)| *v).collect();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn within_query_matches_linear_scan() {
        let mut tree = RStarTree::with_params(2, Params::new(8));
        let mut seed = 99;
        let mut items = Vec::new();
        for i in 0..200 {
            let r = random_rect(&mut seed, 2);
            items.push((r.clone(), i));
            tree.insert(r, i);
        }
        for _ in 0..10 {
            let p = [rng(&mut seed) * 100.0, rng(&mut seed) * 100.0];
            let radius = rng(&mut seed) * 20.0;
            let mut expect: Vec<i32> = items
                .iter()
                .filter(|(r, _)| r.min_dist_point(&p) <= radius)
                .map(|&(_, v)| v)
                .collect();
            expect.sort_unstable();
            let mut got: Vec<i32> =
                tree.collect_within(&p, radius).iter().map(|&(_, v)| *v).collect();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn remove_then_queries_shrink() {
        let mut tree = RStarTree::with_params(2, Params::new(6));
        let mut seed = 5;
        let mut items = Vec::new();
        for i in 0..200 {
            let r = random_rect(&mut seed, 2);
            items.push((r.clone(), i));
            tree.insert(r, i);
        }
        // Remove every other item.
        for (r, v) in items.iter().step_by(2) {
            assert!(tree.remove(r, v), "item {v} should be removable");
        }
        assert_eq!(tree.len(), 100);
        tree.validate().expect("valid after removals");
        // Removed items are gone; kept items remain.
        for (i, (r, v)) in items.iter().enumerate() {
            let found = tree.collect_intersecting(r).iter().any(|&(_, got)| got == v);
            assert_eq!(found, i % 2 == 1, "item {v}");
        }
    }

    #[test]
    fn remove_everything_empties_tree() {
        let mut tree = RStarTree::with_params(2, Params::new(4));
        let mut seed = 11;
        let mut items = Vec::new();
        for i in 0..80 {
            let r = random_rect(&mut seed, 2);
            items.push((r.clone(), i));
            tree.insert(r, i);
        }
        for (r, v) in &items {
            assert!(tree.remove(r, v));
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        tree.validate().expect("valid when emptied");
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut tree = RStarTree::new(2);
        tree.insert(Rect::point(&[1.0, 1.0]), 1);
        assert!(!tree.remove(&Rect::point(&[2.0, 2.0]), &1));
        assert!(!tree.remove(&Rect::point(&[1.0, 1.0]), &2));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn duplicate_rect_distinct_values() {
        let mut tree = RStarTree::new(2);
        let r = Rect::point(&[3.0, 3.0]);
        tree.insert(r.clone(), 1);
        tree.insert(r.clone(), 2);
        assert!(tree.remove(&r, &1));
        let hits = tree.collect_intersecting(&r);
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0].1, 2);
    }

    #[test]
    fn iter_visits_everything_once() {
        let mut tree = RStarTree::with_params(2, Params::new(5));
        let mut seed = 3;
        for i in 0..137 {
            tree.insert(random_rect(&mut seed, 2), i);
        }
        let mut seen: Vec<i32> = tree.iter().map(|(_, &v)| v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..137).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_insert_remove_stays_valid() {
        let mut tree = RStarTree::with_params(2, Params::new(8));
        let mut seed = 21;
        let mut live: Vec<(Rect, i32)> = Vec::new();
        for round in 0..40 {
            for i in 0..20 {
                let r = random_rect(&mut seed, 2);
                let v = round * 100 + i;
                live.push((r.clone(), v));
                tree.insert(r, v);
            }
            // Remove ~half, oldest first (the Stardust retirement pattern).
            for _ in 0..10 {
                let (r, v) = live.remove(0);
                assert!(tree.remove(&r, &v));
            }
            tree.validate().unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
        assert_eq!(tree.len(), live.len());
    }

    /// Steady-state churn recycles node slots through the free-list
    /// instead of growing the arena without bound.
    #[test]
    fn arena_reuses_released_nodes() {
        let mut tree = RStarTree::with_params(2, Params::new(4));
        let mut seed = 57;
        let mut live: Vec<(Rect, i32)> = Vec::new();
        // Warm up to a steady population.
        for i in 0..200 {
            let r = random_rect(&mut seed, 2);
            live.push((r.clone(), i));
            tree.insert(r, i);
        }
        let warm_slots = tree.nodes.len();
        // Churn many times the warm population through the tree.
        for i in 200..2200 {
            let r = random_rect(&mut seed, 2);
            live.push((r.clone(), i));
            tree.insert(r, i);
            let (old_r, old_v) = live.remove(0);
            assert!(tree.remove(&old_r, &old_v));
        }
        tree.validate().expect("valid after churn");
        assert_eq!(tree.len(), 200);
        // The arena may grow a little past the warm size (population shape
        // shifts), but nothing like the thousands of nodes churned through.
        assert!(
            tree.nodes.len() < warm_slots * 3,
            "arena grew from {warm_slots} to {} slots over churn",
            tree.nodes.len()
        );
    }

    #[test]
    fn high_dimensional_inserts() {
        let mut tree = RStarTree::with_params(16, Params::new(12));
        let mut seed = 77;
        for i in 0..300 {
            tree.insert(random_rect(&mut seed, 16), i);
        }
        tree.validate().expect("valid in 16 dims");
        // Query the full space returns everything.
        let everything = tree.collect_intersecting(&Rect::new(vec![-1e9; 16], vec![1e9; 16])).len();
        assert_eq!(everything, 300);
    }

    #[test]
    fn take_returns_the_value() {
        let mut tree = RStarTree::new(2);
        tree.insert(Rect::point(&[1.0, 2.0]), "payload".to_string());
        assert_eq!(tree.take(&Rect::point(&[9.0, 9.0]), &"payload".to_string()), None);
        assert_eq!(
            tree.take(&Rect::point(&[1.0, 2.0]), &"payload".to_string()),
            Some("payload".to_string())
        );
        assert!(tree.is_empty());
    }

    #[test]
    fn update_in_place_small_move() {
        let mut tree = RStarTree::with_params(2, Params::new(8));
        let mut seed = 42;
        let mut rects = Vec::new();
        for i in 0..120 {
            let r = random_rect(&mut seed, 2);
            rects.push(r.clone());
            tree.insert(r, i);
        }
        // Nudge every item slightly (typical streaming feature drift).
        for (i, r) in rects.iter_mut().enumerate() {
            let lo: Vec<f64> = r.lo().iter().map(|v| v + 0.01).collect();
            let hi: Vec<f64> = r.hi().iter().map(|v| v + 0.01).collect();
            let moved = Rect::new(lo, hi);
            assert!(tree.update(r, &(i as i32), moved.clone()), "item {i}");
            *r = moved;
        }
        assert_eq!(tree.len(), 120);
        tree.validate().expect("valid after in-place updates");
        for (i, r) in rects.iter().enumerate() {
            assert!(
                tree.collect_intersecting(r).iter().any(|&(_, v)| *v == i as i32),
                "item {i} findable at its new position"
            );
        }
    }

    #[test]
    fn update_falls_back_to_reinsert_on_big_move() {
        let mut tree = RStarTree::with_params(2, Params::new(6));
        let mut seed = 3;
        for i in 0..80 {
            tree.insert(random_rect(&mut seed, 2), i);
        }
        let target = Rect::point(&[5.0, 5.0]);
        tree.insert(target.clone(), 999);
        let far = Rect::point(&[1e4, 1e4]);
        assert!(tree.update(&target, &999, far.clone()));
        tree.validate().expect("valid after relocating update");
        assert!(tree.collect_intersecting(&far).iter().any(|&(_, v)| *v == 999));
        assert!(!tree.collect_intersecting(&target).iter().any(|&(_, v)| *v == 999));
        assert_eq!(tree.len(), 81);
    }

    #[test]
    fn update_missing_item_is_false() {
        let mut tree = RStarTree::new(2);
        tree.insert(Rect::point(&[0.0, 0.0]), 1);
        assert!(!tree.update(&Rect::point(&[1.0, 1.0]), &1, Rect::point(&[2.0, 2.0])));
        assert!(!tree.update(&Rect::point(&[0.0, 0.0]), &2, Rect::point(&[2.0, 2.0])));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn params_defaults_follow_paper() {
        let p = Params::new(32);
        assert_eq!(p.min_entries, 12); // 40%
        assert_eq!(p.reinsert_count, 9); // 30%
    }

    #[test]
    fn counters_track_operations() {
        let mut tree = RStarTree::with_params(2, Params::new(4));
        let mut seed = 13;
        let mut items = Vec::new();
        for i in 0..200 {
            let r = random_rect(&mut seed, 2);
            items.push((r.clone(), i));
            tree.insert(r, i);
        }
        let c = tree.counters();
        assert_eq!(c.inserts, 200);
        assert_eq!(c.removes, 0);
        // Capacity 4 with 200 items must have split and reinserted.
        assert!(c.splits > 0, "expected splits, got {c:?}");
        assert!(c.reinserted_entries > 0, "expected reinsertions, got {c:?}");
        assert_eq!(c.node_visits, 0, "no searches yet");

        let before = tree.counters();
        tree.collect_intersecting(&Rect::new(vec![0.0, 0.0], vec![50.0, 50.0]));
        let after = tree.counters();
        assert!(after.node_visits > before.node_visits, "search visits nodes");
        // Searches never mutate structure.
        assert_eq!(after.inserts, before.inserts);
        assert_eq!(after.splits, before.splits);

        for (r, v) in &items {
            assert!(tree.remove(r, v));
        }
        assert_eq!(tree.counters().removes, 200);

        let drained = tree.reset_counters();
        assert_eq!(drained.removes, 200);
        assert_eq!(tree.counters(), TreeCounters::default());
    }

    #[test]
    fn counters_merge_fieldwise() {
        let a = TreeCounters {
            inserts: 1,
            removes: 2,
            splits: 3,
            reinserted_entries: 4,
            node_visits: 5,
        };
        let b = TreeCounters {
            inserts: 10,
            removes: 20,
            splits: 30,
            reinserted_entries: 40,
            node_visits: 50,
        };
        let m = a.merged(b);
        assert_eq!(
            m,
            TreeCounters {
                inserts: 11,
                removes: 22,
                splits: 33,
                reinserted_entries: 44,
                node_visits: 55,
            }
        );
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dims_rejected() {
        let mut tree = RStarTree::new(2);
        tree.insert(Rect::point(&[1.0, 2.0, 3.0]), 0);
    }

    /// The parallel range queries must return the serial result exactly —
    /// same items, same order — at every thread count, including counts
    /// exceeding the number of intersecting subtrees.
    #[test]
    fn par_queries_match_serial() {
        let mut seed = 7u64;
        let mut rng = move || {
            seed = seed.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        for dims in [2usize, 8] {
            let mut tree = RStarTree::new(dims);
            for i in 0..600u64 {
                let lo: Vec<f64> = (0..dims).map(|_| rng() * 100.0).collect();
                let hi: Vec<f64> = lo.iter().map(|l| l + rng() * 3.0).collect();
                tree.insert(Rect::new(lo, hi), i);
            }
            let q = Rect::new(vec![20.0; dims], vec![70.0; dims]);
            let serial = tree.collect_intersecting(&q);
            let point = vec![50.0; dims];
            let serial_within = tree.collect_within(&point, 25.0);
            assert!(!serial.is_empty(), "query should hit something");
            for threads in [1usize, 2, 3, 4, 64] {
                assert_eq!(tree.par_collect_intersecting(&q, threads), serial, "t={threads}");
                assert_eq!(tree.par_collect_within(&point, 25.0, threads), serial_within);
            }
        }
    }
}
