//! The R\*-tree of Beckmann, Kriegel, Schneider and Seeger (SIGMOD 1990).
//!
//! Stardust maintains one R\*-tree per resolution level; every MBR produced
//! by the summarizer is inserted here and retired (deleted) once it falls
//! out of the history of interest, so the tree must support efficient
//! inserts, deletes, rectangle-intersection queries and point/radius
//! queries. The implementation follows the original paper:
//!
//! * **ChooseSubtree** — minimum *overlap* enlargement at the level above
//!   the leaves, minimum *area* enlargement elsewhere, with the published
//!   tie-breaks.
//! * **Split** — choose the split axis by minimum total margin over all
//!   candidate distributions, then the distribution with minimum overlap
//!   (ties: minimum combined area).
//! * **Forced reinsertion** — on the first overflow per level per insertion,
//!   the `p` entries farthest from the node center are reinserted instead of
//!   splitting, which is where most of the R\*-tree's query-quality advantage
//!   comes from.
//! * **Deletion** with tree condensation: underfull nodes are dissolved and
//!   their entries reinserted at their home level.

use std::cell::Cell;

use crate::geometry::Rect;

/// Cumulative structural-operation counters for one [`RStarTree`].
///
/// Maintained in `Cell`s so read paths (`search_*`, which take `&self`)
/// can record node visits without locks or `&mut`; the tree therefore
/// stays `Send` (one shard owns one tree — exactly the runtime's
/// threading model) while costing a plain register increment per event.
/// Read with [`RStarTree::counters`], or [`RStarTree::reset_counters`]
/// for per-query deltas.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TreeCounters {
    /// Data items inserted via [`RStarTree::insert`].
    pub inserts: u64,
    /// Data items removed via [`RStarTree::remove`] / [`RStarTree::take`].
    pub removes: u64,
    /// Node splits (after forced reinsertion declined).
    pub splits: u64,
    /// Entries moved by forced reinsertion (the R\*-tree's
    /// OverflowTreatment) and deletion condensation.
    pub reinserted_entries: u64,
    /// Nodes visited by intersection / within-radius searches.
    pub node_visits: u64,
}

impl TreeCounters {
    /// Field-wise sum, for aggregating across the per-level trees of a
    /// monitor.
    pub fn merged(self, other: TreeCounters) -> TreeCounters {
        TreeCounters {
            inserts: self.inserts + other.inserts,
            removes: self.removes + other.removes,
            splits: self.splits + other.splits,
            reinserted_entries: self.reinserted_entries + other.reinserted_entries,
            node_visits: self.node_visits + other.node_visits,
        }
    }
}

/// Applies `f` to the counter cell (a copy-update-store on a `Copy`
/// struct; the optimizer reduces it to one increment).
#[inline]
fn bump(cell: &Cell<TreeCounters>, f: impl FnOnce(&mut TreeCounters)) {
    let mut c = cell.get();
    f(&mut c);
    cell.set(c);
}

/// Tuning parameters for an [`RStarTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per node (`m`), 40% of `M` by default.
    pub min_entries: usize,
    /// Entries removed by forced reinsertion (30% of `M` by default).
    pub reinsert_count: usize,
}

impl Params {
    /// The parameters recommended by the R\*-tree paper for a node capacity
    /// of `max_entries`: `m = 40%·M`, `p = 30%·M`.
    ///
    /// # Panics
    /// Panics if `max_entries < 4`.
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "node capacity must be at least 4");
        let min_entries = (max_entries * 2 / 5).max(2);
        let reinsert_count = (max_entries * 3 / 10).max(1);
        Params { max_entries, min_entries, reinsert_count }
    }
}

impl Default for Params {
    /// Capacity 16: measured sweet spot for the insert/delete-heavy
    /// workloads of the streaming summarizer (the O(M²) overlap criterion
    /// in ChooseSubtree dominates insertion at larger capacities).
    fn default() -> Self {
        Params::new(16)
    }
}

enum Entry<T> {
    /// A data item; only at level 0.
    Item { rect: Rect, value: T },
    /// A subtree; the rect is the MBR of the child node.
    Child { rect: Rect, node: Box<Node<T>> },
}

impl<T> Entry<T> {
    fn rect(&self) -> &Rect {
        match self {
            Entry::Item { rect, .. } | Entry::Child { rect, .. } => rect,
        }
    }
}

struct Node<T> {
    /// 0 for leaves, increasing towards the root.
    level: usize,
    entries: Vec<Entry<T>>,
}

impl<T> Node<T> {
    fn mbr(&self) -> Rect {
        let mut it = self.entries.iter();
        let first = it.next().expect("mbr of empty node").rect().clone();
        it.fold(first, |mut acc, e| {
            acc.union_in_place(e.rect());
            acc
        })
    }
}

/// An R\*-tree mapping rectangles to values of type `T`.
///
/// ```
/// use stardust_index::{Rect, RStarTree};
///
/// let mut tree = RStarTree::new(2);
/// for i in 0..100 {
///     let x = (i % 10) as f64;
///     let y = (i / 10) as f64;
///     tree.insert(Rect::point(&[x, y]), i);
/// }
/// let mut hits = Vec::new();
/// tree.search_intersecting(&Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]), |_, &v| {
///     hits.push(v)
/// });
/// hits.sort_unstable();
/// assert_eq!(hits, vec![0, 1, 10, 11]);
/// ```
pub struct RStarTree<T> {
    root: Box<Node<T>>,
    dims: usize,
    params: Params,
    len: usize,
    counters: Cell<TreeCounters>,
}

impl<T> RStarTree<T> {
    /// An empty tree over `dims`-dimensional rectangles with default
    /// parameters.
    ///
    /// # Panics
    /// Panics if `dims` is zero.
    pub fn new(dims: usize) -> Self {
        Self::with_params(dims, Params::default())
    }

    /// An empty tree with explicit parameters.
    ///
    /// # Panics
    /// Panics if `dims` is zero or the parameters are inconsistent.
    pub fn with_params(dims: usize, params: Params) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        assert!(params.min_entries >= 2, "min entries must be at least 2");
        assert!(
            params.min_entries * 2 <= params.max_entries + 1,
            "min entries too large for capacity"
        );
        assert!(
            params.reinsert_count >= 1 && params.reinsert_count <= params.max_entries / 2,
            "reinsert count out of range"
        );
        RStarTree {
            root: Box::new(Node { level: 0, entries: Vec::new() }),
            dims,
            params,
            len: 0,
            counters: Cell::new(TreeCounters::default()),
        }
    }

    /// Cumulative structural-operation counters since construction (or
    /// the last [`RStarTree::reset_counters`]).
    pub fn counters(&self) -> TreeCounters {
        self.counters.get()
    }

    /// Returns the current counters and resets them to zero; callers
    /// use this to attribute node visits to a single query.
    pub fn reset_counters(&self) -> TreeCounters {
        self.counters.replace(TreeCounters::default())
    }

    /// Number of data items stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the indexed rectangles.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Tree height (1 for a single leaf root).
    pub fn height(&self) -> usize {
        self.root.level + 1
    }

    /// MBR of the whole tree, `None` when empty.
    pub fn bounding_rect(&self) -> Option<Rect> {
        if self.root.entries.is_empty() {
            None
        } else {
            Some(self.root.mbr())
        }
    }

    /// Inserts a rectangle/value pair.
    ///
    /// # Panics
    /// Panics if the rectangle has the wrong dimensionality.
    pub fn insert(&mut self, rect: Rect, value: T) {
        assert_eq!(rect.dims(), self.dims, "rectangle dimensionality mismatch");
        self.len += 1;
        bump(&self.counters, |c| c.inserts += 1);
        self.insert_queue(vec![(Entry::Item { rect, value }, 0)]);
    }

    /// Runs the insertion machinery over a queue of (entry, home level)
    /// pairs; shared by public insert, forced reinsertion and deletion
    /// condensation.
    fn insert_queue(&mut self, mut queue: Vec<(Entry<T>, usize)>) {
        let mut reinserted = vec![false; self.root.level + 1];
        while let Some((entry, level)) = queue.pop() {
            if reinserted.len() <= self.root.level {
                reinserted.resize(self.root.level + 1, false);
            }
            let split = insert_rec(
                &mut self.root,
                entry,
                level,
                true,
                &mut reinserted,
                &mut queue,
                &self.params,
                &self.counters,
            );
            if let Some(sibling) = split {
                let new_level = self.root.level + 1;
                let old_root = std::mem::replace(
                    &mut self.root,
                    Box::new(Node { level: new_level, entries: Vec::new() }),
                );
                let old_rect = old_root.mbr();
                self.root.entries.push(Entry::Child { rect: old_rect, node: old_root });
                self.root.entries.push(sibling);
            }
        }
    }

    /// Removes one item equal to `(rect, value)`. Returns `true` if found.
    ///
    /// # Panics
    /// Panics if the rectangle has the wrong dimensionality.
    pub fn remove(&mut self, rect: &Rect, value: &T) -> bool
    where
        T: PartialEq,
    {
        self.take(rect, value).is_some()
    }

    /// Removes one item equal to `(rect, value)` and returns its value.
    ///
    /// # Panics
    /// Panics if the rectangle has the wrong dimensionality.
    pub fn take(&mut self, rect: &Rect, value: &T) -> Option<T>
    where
        T: PartialEq,
    {
        assert_eq!(rect.dims(), self.dims, "rectangle dimensionality mismatch");
        let mut orphans = Vec::new();
        let removed = remove_rec(&mut self.root, rect, value, &mut orphans, &self.params);
        if removed.is_none() {
            debug_assert!(orphans.is_empty());
            return None;
        }
        self.len -= 1;
        bump(&self.counters, |c| {
            c.removes += 1;
            c.reinserted_entries += orphans.len() as u64;
        });
        // Shrink the root while it is an internal node with a single child.
        while self.root.level > 0 && self.root.entries.len() == 1 {
            let Some(Entry::Child { node, .. }) = self.root.entries.pop() else {
                unreachable!("internal node holds child entries")
            };
            self.root = node;
        }
        if !orphans.is_empty() {
            self.insert_queue(orphans);
        }
        removed
    }

    /// Replaces the rectangle of the item `(old_rect, value)` with
    /// `new_rect` — the frequent-update optimization of Lee et al. (VLDB
    /// 2003), which §4 cites for accelerating streaming workloads where
    /// consecutive feature boxes barely move.
    ///
    /// When the new rectangle stays inside the hosting leaf's MBR, the
    /// entry is patched **in place** (ancestor MBRs are tightened on the
    /// way back up, no structural change); otherwise it falls back to
    /// `remove` + `insert`. Returns `false` if the item was not found.
    ///
    /// # Panics
    /// Panics on a dimensionality mismatch.
    pub fn update(&mut self, old_rect: &Rect, value: &T, new_rect: Rect) -> bool
    where
        T: PartialEq,
    {
        assert_eq!(old_rect.dims(), self.dims, "rectangle dimensionality mismatch");
        assert_eq!(new_rect.dims(), self.dims, "rectangle dimensionality mismatch");
        match update_rec(&mut self.root, old_rect, value, &new_rect) {
            UpdateOutcome::NotFound => false,
            UpdateOutcome::Patched => true,
            UpdateOutcome::NeedsReinsert => {
                let owned = self.take(old_rect, value).expect("entry was just located");
                self.insert(new_rect, owned);
                true
            }
        }
    }

    /// Visits every item whose rectangle intersects `query`.
    pub fn search_intersecting<'a, F>(&'a self, query: &Rect, mut visit: F)
    where
        F: FnMut(&'a Rect, &'a T),
    {
        assert_eq!(query.dims(), self.dims, "query dimensionality mismatch");
        search_rec(&self.root, query, &mut visit, &self.counters);
    }

    /// Collects every item whose rectangle intersects `query`.
    pub fn collect_intersecting(&self, query: &Rect) -> Vec<(&Rect, &T)> {
        let mut out = Vec::new();
        self.search_intersecting(query, |r, v| out.push((r, v)));
        out
    }

    /// Visits every item whose rectangle lies within Euclidean distance `r`
    /// of `point` (`d_min(point, rect) ≤ r`) — the range query of the
    /// pattern and correlation monitors.
    pub fn search_within<'a, F>(&'a self, point: &[f64], r: f64, mut visit: F)
    where
        F: FnMut(&'a Rect, &'a T),
    {
        assert_eq!(point.len(), self.dims, "query dimensionality mismatch");
        assert!(r >= 0.0, "radius must be nonnegative");
        within_rec(&self.root, point, r, &mut visit, &self.counters);
    }

    /// Collects every item within distance `r` of `point`.
    pub fn collect_within(&self, point: &[f64], r: f64) -> Vec<(&Rect, &T)> {
        let mut out = Vec::new();
        self.search_within(point, r, |rect, v| out.push((rect, v)));
        out
    }

    /// Iterates over all items in unspecified order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { stack: vec![self.root.entries.iter()] }
    }

    /// Verifies the structural invariants of the tree; used by tests and
    /// property checks. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.root.level > 0 && self.root.entries.len() < 2 {
            return Err("internal root with fewer than 2 entries".into());
        }
        let mut count = 0;
        validate_rec(&self.root, true, &self.params, self.dims, &mut count)?;
        if count != self.len {
            return Err(format!("len {} but {} items reachable", self.len, count));
        }
        Ok(())
    }
}

impl<T> std::fmt::Debug for RStarTree<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RStarTree")
            .field("dims", &self.dims)
            .field("len", &self.len)
            .field("height", &self.height())
            .finish()
    }
}

/// Read-only handle to a tree node, used by traversal-based algorithms
/// (best-first k-NN in [`crate::knn`]).
pub struct NodeRef<'a, T> {
    node: &'a Node<T>,
}

/// One child of a [`NodeRef`]: either a stored item or a subtree with its
/// bounding rectangle.
pub enum ChildRef<'a, T> {
    /// A data item at the leaf level.
    Item(&'a Rect, &'a T),
    /// An internal child with its MBR.
    Node(&'a Rect, NodeRef<'a, T>),
}

impl<'a, T> NodeRef<'a, T> {
    /// Iterates the node's children.
    pub fn children(&self) -> impl Iterator<Item = ChildRef<'a, T>> + 'a {
        self.node.entries.iter().map(|e| match e {
            Entry::Item { rect, value } => ChildRef::Item(rect, value),
            Entry::Child { rect, node } => ChildRef::Node(rect, NodeRef { node }),
        })
    }

    /// Level of this node (0 = leaf).
    pub fn level(&self) -> usize {
        self.node.level
    }
}

impl<T> RStarTree<T> {
    /// Read-only handle to the root node.
    pub fn root_ref(&self) -> NodeRef<'_, T> {
        NodeRef { node: &self.root }
    }
}

/// Depth-first iterator over the items of an [`RStarTree`].
pub struct Iter<'a, T> {
    stack: Vec<std::slice::Iter<'a, Entry<T>>>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (&'a Rect, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let top = self.stack.last_mut()?;
            match top.next() {
                None => {
                    self.stack.pop();
                }
                Some(Entry::Item { rect, value }) => return Some((rect, value)),
                Some(Entry::Child { node, .. }) => self.stack.push(node.entries.iter()),
            }
        }
    }
}

fn search_rec<'a, T, F>(
    node: &'a Node<T>,
    query: &Rect,
    visit: &mut F,
    counters: &Cell<TreeCounters>,
) where
    F: FnMut(&'a Rect, &'a T),
{
    bump(counters, |c| c.node_visits += 1);
    for entry in &node.entries {
        match entry {
            Entry::Item { rect, value } => {
                if rect.intersects(query) {
                    visit(rect, value);
                }
            }
            Entry::Child { rect, node } => {
                if rect.intersects(query) {
                    search_rec(node, query, visit, counters);
                }
            }
        }
    }
}

fn within_rec<'a, T, F>(
    node: &'a Node<T>,
    point: &[f64],
    r: f64,
    visit: &mut F,
    counters: &Cell<TreeCounters>,
) where
    F: FnMut(&'a Rect, &'a T),
{
    bump(counters, |c| c.node_visits += 1);
    for entry in &node.entries {
        match entry {
            Entry::Item { rect, value } => {
                if rect.min_dist_point(point) <= r {
                    visit(rect, value);
                }
            }
            Entry::Child { rect, node } => {
                if rect.min_dist_point(point) <= r {
                    within_rec(node, point, r, visit, counters);
                }
            }
        }
    }
}

/// Inserts `entry` (whose home level is `target_level`) into the subtree
/// rooted at `node`. Returns a sibling entry if `node` was split.
#[allow(clippy::too_many_arguments)]
fn insert_rec<T>(
    node: &mut Node<T>,
    entry: Entry<T>,
    target_level: usize,
    is_root: bool,
    reinserted: &mut [bool],
    queue: &mut Vec<(Entry<T>, usize)>,
    params: &Params,
    counters: &Cell<TreeCounters>,
) -> Option<Entry<T>> {
    if node.level == target_level {
        node.entries.push(entry);
    } else {
        let idx = choose_subtree(node, entry.rect());
        let split = {
            let Entry::Child { rect, node: child } = &mut node.entries[idx] else {
                unreachable!("non-leaf nodes hold child entries")
            };
            let split =
                insert_rec(child, entry, target_level, false, reinserted, queue, params, counters);
            // The child may have grown (insert) or shrunk (reinsertion
            // removed entries), so recompute its MBR either way.
            *rect = child.mbr();
            split
        };
        if let Some(sibling) = split {
            node.entries.push(sibling);
        }
    }
    if node.entries.len() > params.max_entries {
        overflow_treatment(node, is_root, reinserted, queue, params, counters)
    } else {
        None
    }
}

/// R\*-tree OverflowTreatment: forced reinsertion on the first overflow per
/// level per insertion, split otherwise.
fn overflow_treatment<T>(
    node: &mut Node<T>,
    is_root: bool,
    reinserted: &mut [bool],
    queue: &mut Vec<(Entry<T>, usize)>,
    params: &Params,
    counters: &Cell<TreeCounters>,
) -> Option<Entry<T>> {
    if !is_root && !reinserted[node.level] {
        reinserted[node.level] = true;
        let center = node.mbr();
        // Sort by distance of entry center to node center, take the p
        // farthest for reinsertion ("far reinsert"); keeping the closest
        // entries compacts the node.
        let mut order: Vec<usize> = (0..node.entries.len()).collect();
        order.sort_by(|&a, &b| {
            let da = node.entries[a].rect().center_dist_sqr(&center);
            let db = node.entries[b].rect().center_dist_sqr(&center);
            da.partial_cmp(&db).expect("finite distances")
        });
        let cut = node.entries.len() - params.reinsert_count;
        let far: Vec<usize> = order[cut..].to_vec();
        let mut removed = extract_indices(&mut node.entries, &far);
        let level = node.level;
        // Reinsert closest-first: the last popped from the LIFO queue is the
        // closest, matching the paper's "close reinsert" ordering.
        removed.reverse();
        bump(counters, |c| c.reinserted_entries += removed.len() as u64);
        for e in removed {
            queue.push((e, level));
        }
        None
    } else {
        bump(counters, |c| c.splits += 1);
        Some(split_node(node, params))
    }
}

/// Removes the entries at `indices` (any order) and returns them in
/// ascending index order.
fn extract_indices<T>(entries: &mut Vec<Entry<T>>, indices: &[usize]) -> Vec<Entry<T>> {
    let mut sorted = indices.to_vec();
    sorted.sort_unstable();
    let mut out = Vec::with_capacity(sorted.len());
    for &i in sorted.iter().rev() {
        out.push(entries.swap_remove(i));
    }
    out.reverse();
    out
}

/// R\*-tree ChooseSubtree.
fn choose_subtree<T>(node: &Node<T>, rect: &Rect) -> usize {
    debug_assert!(node.level > 0);
    if node.level == 1 {
        // Children are leaves: minimize overlap enlargement. The grown
        // rectangle is materialized once per candidate; overlap deltas
        // prune early against the running best.
        let mut best = 0usize;
        let mut best_overlap = f64::INFINITY;
        let mut best_enlarge = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        let mut grown = rect.clone();
        for (i, e) in node.entries.iter().enumerate() {
            grown.clone_from(e.rect());
            grown.union_in_place(rect);
            let mut overlap_delta = 0.0;
            for (j, other) in node.entries.iter().enumerate() {
                if i == j {
                    continue;
                }
                overlap_delta +=
                    grown.overlap_area(other.rect()) - e.rect().overlap_area(other.rect());
                if overlap_delta > best_overlap {
                    break;
                }
            }
            let enlarge = grown.area() - e.rect().area();
            let area = e.rect().area();
            if overlap_delta < best_overlap
                || (overlap_delta == best_overlap && enlarge < best_enlarge)
                || (overlap_delta == best_overlap && enlarge == best_enlarge && area < best_area)
            {
                best = i;
                best_overlap = overlap_delta;
                best_enlarge = enlarge;
                best_area = area;
            }
        }
        best
    } else {
        // Minimize area enlargement, ties by smallest area.
        let mut best = 0usize;
        let mut best_enlarge = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (i, e) in node.entries.iter().enumerate() {
            let enlarge = e.rect().enlargement(rect);
            let area = e.rect().area();
            if enlarge < best_enlarge || (enlarge == best_enlarge && area < best_area) {
                best = i;
                best_enlarge = enlarge;
                best_area = area;
            }
        }
        best
    }
}

/// R\*-tree Split: returns the new sibling as a child entry; `node` keeps
/// the first group.
fn split_node<T>(node: &mut Node<T>, params: &Params) -> Entry<T> {
    let entries = std::mem::take(&mut node.entries);
    let total = entries.len();
    let min = params.min_entries;
    debug_assert!(total > params.max_entries);
    let dims = entries[0].rect().dims();

    // ChooseSplitAxis: minimize the sum of margins over all distributions
    // of both sort orders.
    let mut best_axis = 0usize;
    let mut best_margin = f64::INFINITY;
    for axis in 0..dims {
        let mut margin_sum = 0.0;
        for sort_by_hi in [false, true] {
            let order = sorted_order(&entries, axis, sort_by_hi);
            let (prefix, suffix) = prefix_suffix_rects(&entries, &order);
            for k in min..=total - min {
                margin_sum += prefix[k - 1].margin() + suffix[k].margin();
            }
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // ChooseSplitIndex on the best axis: minimize overlap, ties by area.
    let mut best: Option<(Vec<usize>, usize)> = None;
    let mut best_overlap = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for sort_by_hi in [false, true] {
        let order = sorted_order(&entries, best_axis, sort_by_hi);
        let (prefix, suffix) = prefix_suffix_rects(&entries, &order);
        for k in min..=total - min {
            let overlap = prefix[k - 1].overlap_area(&suffix[k]);
            let area = prefix[k - 1].area() + suffix[k].area();
            if overlap < best_overlap || (overlap == best_overlap && area < best_area) {
                best_overlap = overlap;
                best_area = area;
                best = Some((order.clone(), k));
            }
        }
    }
    let (order, k) = best.expect("at least one distribution");

    // Partition the entries according to the chosen distribution.
    let mut slots: Vec<Option<Entry<T>>> = entries.into_iter().map(Some).collect();
    let mut group1 = Vec::with_capacity(k);
    let mut group2 = Vec::with_capacity(total - k);
    for (pos, &idx) in order.iter().enumerate() {
        let e = slots[idx].take().expect("each entry used once");
        if pos < k {
            group1.push(e);
        } else {
            group2.push(e);
        }
    }
    node.entries = group1;
    let sibling = Node { level: node.level, entries: group2 };
    let rect = sibling.mbr();
    Entry::Child { rect, node: Box::new(sibling) }
}

fn sorted_order<T>(entries: &[Entry<T>], axis: usize, by_hi: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        let (ka, kb) = if by_hi {
            (entries[a].rect().hi()[axis], entries[b].rect().hi()[axis])
        } else {
            (entries[a].rect().lo()[axis], entries[b].rect().lo()[axis])
        };
        ka.partial_cmp(&kb).expect("finite coordinates")
    });
    order
}

/// `prefix[i]` = MBR of `order[0..=i]`, `suffix[i]` = MBR of `order[i..]`.
fn prefix_suffix_rects<T>(entries: &[Entry<T>], order: &[usize]) -> (Vec<Rect>, Vec<Rect>) {
    let n = order.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = entries[order[0]].rect().clone();
    prefix.push(acc.clone());
    for &i in &order[1..] {
        acc.union_in_place(entries[i].rect());
        prefix.push(acc.clone());
    }
    let mut suffix = vec![entries[order[n - 1]].rect().clone(); n];
    for pos in (0..n - 1).rev() {
        let mut r = entries[order[pos]].rect().clone();
        r.union_in_place(&suffix[pos + 1]);
        suffix[pos] = r;
    }
    (prefix, suffix)
}

/// Removes one matching item, returning its value; collects orphaned
/// entries from dissolved underfull nodes into `orphans` as (entry, home
/// level) pairs.
fn remove_rec<T: PartialEq>(
    node: &mut Node<T>,
    rect: &Rect,
    value: &T,
    orphans: &mut Vec<(Entry<T>, usize)>,
    params: &Params,
) -> Option<T> {
    if node.level == 0 {
        let pos = node.entries.iter().position(|e| match e {
            Entry::Item { rect: r, value: v } => r == rect && v == value,
            Entry::Child { .. } => unreachable!("leaf holds items"),
        });
        pos.map(|i| match node.entries.swap_remove(i) {
            Entry::Item { value, .. } => value,
            Entry::Child { .. } => unreachable!("leaf holds items"),
        })
    } else {
        let mut found = None;
        for (i, entry) in node.entries.iter_mut().enumerate() {
            let Entry::Child { rect: crect, node: child } = entry else {
                unreachable!("internal node holds child entries")
            };
            if !crect.contains_rect(rect) {
                continue;
            }
            if let Some(v) = remove_rec(child, rect, value, orphans, params) {
                found = Some((i, v));
                break;
            }
        }
        let (i, taken) = found?;
        let underfull = {
            let Entry::Child { node: child, .. } = &node.entries[i] else { unreachable!() };
            child.entries.len() < params.min_entries
        };
        if underfull {
            let Entry::Child { node: child, .. } = node.entries.swap_remove(i) else {
                unreachable!()
            };
            let level = child.level;
            for e in child.entries {
                orphans.push((e, level));
            }
        } else {
            let Entry::Child { rect: crect, node: child } = &mut node.entries[i] else {
                unreachable!()
            };
            *crect = child.mbr();
        }
        Some(taken)
    }
}

/// Outcome of the in-place update descent.
enum UpdateOutcome {
    /// No matching item in this subtree.
    NotFound,
    /// The entry was patched in place; ancestor MBRs were refreshed.
    Patched,
    /// The entry exists, but the new rectangle escapes its leaf's MBR —
    /// delete + reinsert is required for tree quality (Lee et al.).
    NeedsReinsert,
}

/// Descends guided by `old_rect`; patches the entry in place if `new_rect`
/// stays within the hosting leaf's MBR.
fn update_rec<T: PartialEq>(
    node: &mut Node<T>,
    old_rect: &Rect,
    value: &T,
    new_rect: &Rect,
) -> UpdateOutcome {
    if node.level == 0 {
        let pos = node.entries.iter().position(|e| match e {
            Entry::Item { rect: r, value: v } => r == old_rect && v == value,
            Entry::Child { .. } => unreachable!("leaf holds items"),
        });
        let Some(i) = pos else { return UpdateOutcome::NotFound };
        if !node.mbr().contains_rect(new_rect) {
            return UpdateOutcome::NeedsReinsert;
        }
        let Entry::Item { rect, .. } = &mut node.entries[i] else { unreachable!() };
        *rect = new_rect.clone();
        UpdateOutcome::Patched
    } else {
        for entry in node.entries.iter_mut() {
            let Entry::Child { rect: crect, node: child } = entry else {
                unreachable!("internal node holds child entries")
            };
            if !crect.contains_rect(old_rect) {
                continue;
            }
            match update_rec(child, old_rect, value, new_rect) {
                UpdateOutcome::NotFound => continue,
                UpdateOutcome::Patched => {
                    // The leaf may have shrunk if the old rectangle was on
                    // its boundary; tighten MBRs on the way up.
                    *crect = child.mbr();
                    return UpdateOutcome::Patched;
                }
                UpdateOutcome::NeedsReinsert => return UpdateOutcome::NeedsReinsert,
            }
        }
        UpdateOutcome::NotFound
    }
}

fn validate_rec<T>(
    node: &Node<T>,
    is_root: bool,
    params: &Params,
    dims: usize,
    count: &mut usize,
) -> Result<(), String> {
    if !is_root
        && (node.entries.len() < params.min_entries || node.entries.len() > params.max_entries)
    {
        return Err(format!(
            "node at level {} has {} entries (bounds {}..={})",
            node.level,
            node.entries.len(),
            params.min_entries,
            params.max_entries
        ));
    }
    if node.entries.len() > params.max_entries {
        return Err("root exceeds capacity".into());
    }
    for entry in &node.entries {
        if entry.rect().dims() != dims {
            return Err("entry with wrong dimensionality".into());
        }
        match entry {
            Entry::Item { .. } => {
                if node.level != 0 {
                    return Err("item entry above leaf level".into());
                }
                *count += 1;
            }
            Entry::Child { rect, node: child } => {
                if node.level == 0 {
                    return Err("child entry at leaf level".into());
                }
                if child.level + 1 != node.level {
                    return Err(format!(
                        "child level {} under node level {}",
                        child.level, node.level
                    ));
                }
                if child.entries.is_empty() {
                    return Err("empty child node".into());
                }
                let actual = child.mbr();
                if &actual != rect {
                    return Err(format!(
                        "stale child MBR at level {}: stored {:?}, actual {:?}",
                        node.level, rect, actual
                    ));
                }
                validate_rec(child, false, params, dims, count)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random f64 in [0, 1) via splitmix64.
    fn rng(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn random_rect(seed: &mut u64, dims: usize) -> Rect {
        let lo: Vec<f64> = (0..dims).map(|_| rng(seed) * 100.0).collect();
        let hi: Vec<f64> = lo.iter().map(|l| l + rng(seed) * 5.0).collect();
        Rect::new(lo, hi)
    }

    #[test]
    fn empty_tree() {
        let tree: RStarTree<u32> = RStarTree::new(3);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert!(tree.bounding_rect().is_none());
        assert!(tree.validate().is_ok());
        assert_eq!(tree.collect_intersecting(&Rect::point(&[0.0, 0.0, 0.0])).len(), 0);
    }

    #[test]
    fn insert_and_query_small() {
        let mut tree = RStarTree::new(2);
        tree.insert(Rect::point(&[1.0, 1.0]), "a");
        tree.insert(Rect::point(&[5.0, 5.0]), "b");
        tree.insert(Rect::new(vec![0.0, 0.0], vec![2.0, 2.0]), "c");
        assert_eq!(tree.len(), 3);
        let hits = tree.collect_intersecting(&Rect::new(vec![0.5, 0.5], vec![1.5, 1.5]));
        let mut vals: Vec<&str> = hits.iter().map(|(_, v)| **v).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec!["a", "c"]);
    }

    #[test]
    fn grows_and_validates_with_many_inserts() {
        let mut tree = RStarTree::with_params(2, Params::new(8));
        let mut seed = 42;
        for i in 0..500 {
            tree.insert(random_rect(&mut seed, 2), i);
        }
        assert_eq!(tree.len(), 500);
        assert!(tree.height() > 2);
        tree.validate().expect("valid after inserts");
    }

    #[test]
    fn query_matches_linear_scan() {
        let mut tree = RStarTree::with_params(3, Params::new(10));
        let mut seed = 7;
        let mut items = Vec::new();
        for i in 0..300 {
            let r = random_rect(&mut seed, 3);
            items.push((r.clone(), i));
            tree.insert(r, i);
        }
        for _ in 0..20 {
            let q = random_rect(&mut seed, 3);
            let mut expect: Vec<i32> =
                items.iter().filter(|(r, _)| r.intersects(&q)).map(|&(_, v)| v).collect();
            expect.sort_unstable();
            let mut got: Vec<i32> =
                tree.collect_intersecting(&q).iter().map(|&(_, v)| *v).collect();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn within_query_matches_linear_scan() {
        let mut tree = RStarTree::with_params(2, Params::new(8));
        let mut seed = 99;
        let mut items = Vec::new();
        for i in 0..200 {
            let r = random_rect(&mut seed, 2);
            items.push((r.clone(), i));
            tree.insert(r, i);
        }
        for _ in 0..10 {
            let p = [rng(&mut seed) * 100.0, rng(&mut seed) * 100.0];
            let radius = rng(&mut seed) * 20.0;
            let mut expect: Vec<i32> = items
                .iter()
                .filter(|(r, _)| r.min_dist_point(&p) <= radius)
                .map(|&(_, v)| v)
                .collect();
            expect.sort_unstable();
            let mut got: Vec<i32> =
                tree.collect_within(&p, radius).iter().map(|&(_, v)| *v).collect();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn remove_then_queries_shrink() {
        let mut tree = RStarTree::with_params(2, Params::new(6));
        let mut seed = 5;
        let mut items = Vec::new();
        for i in 0..200 {
            let r = random_rect(&mut seed, 2);
            items.push((r.clone(), i));
            tree.insert(r, i);
        }
        // Remove every other item.
        for (r, v) in items.iter().step_by(2) {
            assert!(tree.remove(r, v), "item {v} should be removable");
        }
        assert_eq!(tree.len(), 100);
        tree.validate().expect("valid after removals");
        // Removed items are gone; kept items remain.
        for (i, (r, v)) in items.iter().enumerate() {
            let found = tree.collect_intersecting(r).iter().any(|&(_, got)| got == v);
            assert_eq!(found, i % 2 == 1, "item {v}");
        }
    }

    #[test]
    fn remove_everything_empties_tree() {
        let mut tree = RStarTree::with_params(2, Params::new(4));
        let mut seed = 11;
        let mut items = Vec::new();
        for i in 0..80 {
            let r = random_rect(&mut seed, 2);
            items.push((r.clone(), i));
            tree.insert(r, i);
        }
        for (r, v) in &items {
            assert!(tree.remove(r, v));
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        tree.validate().expect("valid when emptied");
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut tree = RStarTree::new(2);
        tree.insert(Rect::point(&[1.0, 1.0]), 1);
        assert!(!tree.remove(&Rect::point(&[2.0, 2.0]), &1));
        assert!(!tree.remove(&Rect::point(&[1.0, 1.0]), &2));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn duplicate_rect_distinct_values() {
        let mut tree = RStarTree::new(2);
        let r = Rect::point(&[3.0, 3.0]);
        tree.insert(r.clone(), 1);
        tree.insert(r.clone(), 2);
        assert!(tree.remove(&r, &1));
        let hits = tree.collect_intersecting(&r);
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0].1, 2);
    }

    #[test]
    fn iter_visits_everything_once() {
        let mut tree = RStarTree::with_params(2, Params::new(5));
        let mut seed = 3;
        for i in 0..137 {
            tree.insert(random_rect(&mut seed, 2), i);
        }
        let mut seen: Vec<i32> = tree.iter().map(|(_, &v)| v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..137).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_insert_remove_stays_valid() {
        let mut tree = RStarTree::with_params(2, Params::new(8));
        let mut seed = 21;
        let mut live: Vec<(Rect, i32)> = Vec::new();
        for round in 0..40 {
            for i in 0..20 {
                let r = random_rect(&mut seed, 2);
                let v = round * 100 + i;
                live.push((r.clone(), v));
                tree.insert(r, v);
            }
            // Remove ~half, oldest first (the Stardust retirement pattern).
            for _ in 0..10 {
                let (r, v) = live.remove(0);
                assert!(tree.remove(&r, &v));
            }
            tree.validate().unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
        assert_eq!(tree.len(), live.len());
    }

    #[test]
    fn high_dimensional_inserts() {
        let mut tree = RStarTree::with_params(16, Params::new(12));
        let mut seed = 77;
        for i in 0..300 {
            tree.insert(random_rect(&mut seed, 16), i);
        }
        tree.validate().expect("valid in 16 dims");
        // Query the full space returns everything.
        let everything = tree.collect_intersecting(&Rect::new(vec![-1e9; 16], vec![1e9; 16])).len();
        assert_eq!(everything, 300);
    }

    #[test]
    fn take_returns_the_value() {
        let mut tree = RStarTree::new(2);
        tree.insert(Rect::point(&[1.0, 2.0]), "payload".to_string());
        assert_eq!(tree.take(&Rect::point(&[9.0, 9.0]), &"payload".to_string()), None);
        assert_eq!(
            tree.take(&Rect::point(&[1.0, 2.0]), &"payload".to_string()),
            Some("payload".to_string())
        );
        assert!(tree.is_empty());
    }

    #[test]
    fn update_in_place_small_move() {
        let mut tree = RStarTree::with_params(2, Params::new(8));
        let mut seed = 42;
        let mut rects = Vec::new();
        for i in 0..120 {
            let r = random_rect(&mut seed, 2);
            rects.push(r.clone());
            tree.insert(r, i);
        }
        // Nudge every item slightly (typical streaming feature drift).
        for (i, r) in rects.iter_mut().enumerate() {
            let lo: Vec<f64> = r.lo().iter().map(|v| v + 0.01).collect();
            let hi: Vec<f64> = r.hi().iter().map(|v| v + 0.01).collect();
            let moved = Rect::new(lo, hi);
            assert!(tree.update(r, &(i as i32), moved.clone()), "item {i}");
            *r = moved;
        }
        assert_eq!(tree.len(), 120);
        tree.validate().expect("valid after in-place updates");
        for (i, r) in rects.iter().enumerate() {
            assert!(
                tree.collect_intersecting(r).iter().any(|&(_, v)| *v == i as i32),
                "item {i} findable at its new position"
            );
        }
    }

    #[test]
    fn update_falls_back_to_reinsert_on_big_move() {
        let mut tree = RStarTree::with_params(2, Params::new(6));
        let mut seed = 3;
        for i in 0..80 {
            tree.insert(random_rect(&mut seed, 2), i);
        }
        let target = Rect::point(&[5.0, 5.0]);
        tree.insert(target.clone(), 999);
        let far = Rect::point(&[1e4, 1e4]);
        assert!(tree.update(&target, &999, far.clone()));
        tree.validate().expect("valid after relocating update");
        assert!(tree.collect_intersecting(&far).iter().any(|&(_, v)| *v == 999));
        assert!(!tree.collect_intersecting(&target).iter().any(|&(_, v)| *v == 999));
        assert_eq!(tree.len(), 81);
    }

    #[test]
    fn update_missing_item_is_false() {
        let mut tree = RStarTree::new(2);
        tree.insert(Rect::point(&[0.0, 0.0]), 1);
        assert!(!tree.update(&Rect::point(&[1.0, 1.0]), &1, Rect::point(&[2.0, 2.0])));
        assert!(!tree.update(&Rect::point(&[0.0, 0.0]), &2, Rect::point(&[2.0, 2.0])));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn params_defaults_follow_paper() {
        let p = Params::new(32);
        assert_eq!(p.min_entries, 12); // 40%
        assert_eq!(p.reinsert_count, 9); // 30%
    }

    #[test]
    fn counters_track_operations() {
        let mut tree = RStarTree::with_params(2, Params::new(4));
        let mut seed = 13;
        let mut items = Vec::new();
        for i in 0..200 {
            let r = random_rect(&mut seed, 2);
            items.push((r.clone(), i));
            tree.insert(r, i);
        }
        let c = tree.counters();
        assert_eq!(c.inserts, 200);
        assert_eq!(c.removes, 0);
        // Capacity 4 with 200 items must have split and reinserted.
        assert!(c.splits > 0, "expected splits, got {c:?}");
        assert!(c.reinserted_entries > 0, "expected reinsertions, got {c:?}");
        assert_eq!(c.node_visits, 0, "no searches yet");

        let before = tree.counters();
        tree.collect_intersecting(&Rect::new(vec![0.0, 0.0], vec![50.0, 50.0]));
        let after = tree.counters();
        assert!(after.node_visits > before.node_visits, "search visits nodes");
        // Searches never mutate structure.
        assert_eq!(after.inserts, before.inserts);
        assert_eq!(after.splits, before.splits);

        for (r, v) in &items {
            assert!(tree.remove(r, v));
        }
        assert_eq!(tree.counters().removes, 200);

        let drained = tree.reset_counters();
        assert_eq!(drained.removes, 200);
        assert_eq!(tree.counters(), TreeCounters::default());
    }

    #[test]
    fn counters_merge_fieldwise() {
        let a = TreeCounters {
            inserts: 1,
            removes: 2,
            splits: 3,
            reinserted_entries: 4,
            node_visits: 5,
        };
        let b = TreeCounters {
            inserts: 10,
            removes: 20,
            splits: 30,
            reinserted_entries: 40,
            node_visits: 50,
        };
        let m = a.merged(b);
        assert_eq!(
            m,
            TreeCounters {
                inserts: 11,
                removes: 22,
                splits: 33,
                reinserted_entries: 44,
                node_visits: 55,
            }
        );
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dims_rejected() {
        let mut tree = RStarTree::new(2);
        tree.insert(Rect::point(&[1.0, 2.0, 3.0]), 0);
    }
}
