//! R\*-tree spatial index substrate for the Stardust framework.
//!
//! The paper (§4) indexes the MBRs produced at every resolution level in an
//! R\*-tree ("We use the R\*-Tree family of index structures for indexing
//! MBRs at each level"). This crate is a from-scratch implementation of the
//! R\*-tree of Beckmann et al. (SIGMOD 1990) with:
//!
//! * overlap-minimizing ChooseSubtree, margin-driven split, and forced
//!   reinsertion ([`tree`]),
//! * deletion with tree condensation, required by the summarizer's sliding
//!   history (features older than `N` are retired),
//! * rectangle-intersection and point/radius range queries, the primitives
//!   behind Algorithms 2–4,
//! * STR bulk loading ([`bulk`]) used by the offline baselines,
//! * best-first k-NN search ([`knn`], Roussopoulos et al. \[17\]).
//!
//! The geometry scan primitives process bounds in fixed-width chunks the
//! optimizer can vectorize; building with `--features simd` (nightly)
//! swaps in explicit `std::simd` kernels with bit-identical results (see
//! [`geometry`] for the determinism contract).
#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod bulk;
pub mod geometry;
pub mod knn;
pub mod tree;

pub use bulk::bulk_load;
pub use geometry::Rect;
pub use knn::{nearest_k, Neighbor};
pub use tree::{Params, RStarTree, TreeCounters};
