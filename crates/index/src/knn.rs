//! Best-first k-nearest-neighbour search (Roussopoulos, Kelley & Vincent —
//! the paper's reference \[17\], whose `d_min` metric also drives the
//! hierarchical radius refinement of Algorithm 3).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::geometry::Rect;
use crate::tree::RStarTree;

/// A k-NN result: rectangle, value, and its `d_min` distance to the query
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor<'a, T> {
    /// The stored rectangle.
    pub rect: &'a Rect,
    /// The stored value.
    pub value: &'a T,
    /// Minimum Euclidean distance from the query point to the rectangle.
    pub distance: f64,
}

/// Min-heap entry ordered by distance.
struct HeapEntry<I> {
    dist: f64,
    item: I,
}

impl<I> PartialEq for HeapEntry<I> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl<I> Eq for HeapEntry<I> {}
impl<I> PartialOrd for HeapEntry<I> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<I> Ord for HeapEntry<I> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want smallest distance on
        // top. Distances are finite by construction.
        other.dist.partial_cmp(&self.dist).expect("finite distances")
    }
}

/// The `k` items nearest to `point` by `d_min`, closest first. Ties are
/// broken arbitrarily; fewer than `k` items are returned if the tree is
/// smaller.
///
/// # Panics
/// Panics on a dimensionality mismatch.
pub fn nearest_k<'a, T>(tree: &'a RStarTree<T>, point: &[f64], k: usize) -> Vec<Neighbor<'a, T>> {
    assert_eq!(point.len(), tree.dims(), "query dimensionality mismatch");
    if k == 0 || tree.is_empty() {
        return Vec::new();
    }
    // Best-first search over a frontier of (distance, node-or-item).
    enum Frontier<'a, T> {
        Node(crate::tree::NodeRef<'a, T>),
        Item(&'a Rect, &'a T),
    }
    let mut heap: BinaryHeap<HeapEntry<Frontier<'a, T>>> = BinaryHeap::new();
    heap.push(HeapEntry { dist: 0.0, item: Frontier::Node(tree.root_ref()) });
    let mut out = Vec::with_capacity(k);
    while let Some(HeapEntry { dist, item }) = heap.pop() {
        match item {
            Frontier::Item(rect, value) => {
                out.push(Neighbor { rect, value, distance: dist });
                if out.len() == k {
                    break;
                }
            }
            Frontier::Node(node) => {
                tree.note_node_visit();
                for child in node.children() {
                    match child {
                        crate::tree::ChildRef::Item(rect, value) => {
                            heap.push(HeapEntry {
                                dist: rect.min_dist_point(point),
                                item: Frontier::Item(rect, value),
                            });
                        }
                        crate::tree::ChildRef::Node(rect, node) => {
                            heap.push(HeapEntry {
                                dist: rect.min_dist_point(point),
                                item: Frontier::Node(node),
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Params;

    fn grid_tree(n: usize) -> RStarTree<usize> {
        let mut tree = RStarTree::with_params(2, Params::new(8));
        for i in 0..n {
            let x = (i % 20) as f64;
            let y = (i / 20) as f64;
            tree.insert(Rect::point(&[x, y]), i);
        }
        tree
    }

    #[test]
    fn nearest_one_is_exact() {
        let tree = grid_tree(400);
        let nn = nearest_k(&tree, &[7.2, 3.4], 1);
        assert_eq!(nn.len(), 1);
        assert_eq!(*nn[0].value, 3 * 20 + 7); // (7, 3)
    }

    #[test]
    fn k_results_sorted_and_match_bruteforce() {
        let tree = grid_tree(400);
        let q = [4.6, 9.1];
        let got = nearest_k(&tree, &q, 10);
        assert_eq!(got.len(), 10);
        for pair in got.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
        // Brute force kth distance.
        let mut dists: Vec<f64> = (0..400)
            .map(|i| {
                let x = (i % 20) as f64 - q[0];
                let y = (i / 20) as f64 - q[1];
                (x * x + y * y).sqrt()
            })
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (n, d) in got.iter().zip(&dists) {
            assert!((n.distance - d).abs() < 1e-9);
        }
    }

    #[test]
    fn fewer_items_than_k() {
        let tree = grid_tree(3);
        let got = nearest_k(&tree, &[0.0, 0.0], 10);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn nearest_k_bumps_node_visit_counter() {
        let tree = grid_tree(400);
        tree.reset_counters();
        let got = nearest_k(&tree, &[7.2, 3.4], 5);
        assert_eq!(got.len(), 5);
        let delta = tree.counters();
        // Best-first search expands at least a root-to-leaf path.
        assert!(
            delta.node_visits >= tree.height() as u64,
            "k-NN visited {} nodes, height {}",
            delta.node_visits,
            tree.height()
        );
        // Searches never mutate structure.
        assert_eq!(delta.inserts, 0);
        assert_eq!(delta.removes, 0);
        assert_eq!(delta.splits, 0);
        assert_eq!(delta.reinserted_entries, 0);
    }

    #[test]
    fn empty_and_zero_k() {
        let tree: RStarTree<usize> = RStarTree::new(2);
        assert!(nearest_k(&tree, &[0.0, 0.0], 5).is_empty());
        let tree = grid_tree(10);
        assert!(nearest_k(&tree, &[0.0, 0.0], 0).is_empty());
    }
}
