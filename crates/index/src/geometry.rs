//! Axis-aligned rectangles and the metrics the R\*-tree optimizes.
//!
//! The R\*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990) chooses
//! subtrees and splits by a combination of *area*, *margin* (perimeter) and
//! *overlap*; this module implements those primitives plus the point/rect
//! distance functions used by range queries and by the hierarchical radius
//! refinement of the pattern-query algorithms.
//!
//! The primitives exist in two forms sharing one implementation: methods on
//! [`Rect`], and the `coords_*` functions over raw `(lo, hi)` coordinate
//! slices. The slice form is what the arena tree's flat SoA scans call —
//! `tree.rs` and `bulk.rs` never reimplement a metric, so every scan loop
//! computes bit-identical values to the `Rect` API.
//!
//! # Vectorization and the determinism contract
//!
//! The `coords_*` primitives process bounds in fixed-width chunks of
//! [`LANE_WIDTH`] dimensions. Each chunk is evaluated *element-wise*
//! (subtractions, clamps, min/max, comparisons — the branch-light part the
//! compiler can turn into SIMD lanes), and the final horizontal reduction
//! (product, sum, or any-separated) runs **in dimension order**, exactly
//! like the naive loop. That split is what makes the chunked code
//! bit-identical to the reference implementations in [`scalar`]: per-element
//! IEEE operations are deterministic, and the reduction order is never
//! reassociated. The `simd` cargo feature (nightly, `std::simd`) swaps the
//! element-wise part for explicit `f64x4` operations with the same
//! structure; the property suite in `tests/geometry_equivalence.rs` pins
//! all three paths together on random and adversarial boxes.
//!
//! Inputs are assumed NaN-free with no negative zeros (the [`Rect`]
//! constructor enforces ordered, non-NaN corners); outside that domain the
//! chunked and scalar paths may legitimately disagree (e.g. `max(-0.0,
//! +0.0)` is sign-unspecified).

/// Fixed chunk width, in `f64` dimensions, used by the chunked scan
/// primitives: 4 lanes = one 256-bit AVX2 register, or two 128-bit SSE2 /
/// NEON registers — wide enough to cover the 8-d feature boxes the
/// summarizer indexes in two chunks, and harmless for 2-d boxes (which
/// fall through to the remainder loop).
pub const LANE_WIDTH: usize = 4;

/// Naive scalar reference implementations of the `coords_*` primitives.
///
/// These are the semantics the chunked (and `simd`-feature) fast paths
/// must reproduce **bit-for-bit** on NaN-free inputs; the equivalence
/// property suite compares against them directly. They are also the
/// clearest statement of what each metric computes, so they double as
/// documentation.
pub mod scalar {
    /// Reference for [`super::coords_area`]: ordered product of extents.
    #[inline]
    pub fn area(lo: &[f64], hi: &[f64]) -> f64 {
        let mut acc = 1.0;
        for i in 0..lo.len() {
            acc *= hi[i] - lo[i];
        }
        acc
    }

    /// Reference for [`super::coords_margin`]: ordered sum of extents.
    #[inline]
    pub fn margin(lo: &[f64], hi: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in 0..lo.len() {
            acc += hi[i] - lo[i];
        }
        acc
    }

    /// Reference for [`super::coords_intersect`]: no separating axis.
    #[inline]
    pub fn intersect(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> bool {
        for i in 0..alo.len() {
            if alo[i] > bhi[i] || blo[i] > ahi[i] {
                return false;
            }
        }
        true
    }

    /// Reference for [`super::coords_contain`]: `b` inside `a` on every
    /// axis.
    #[inline]
    pub fn contain(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> bool {
        for i in 0..alo.len() {
            if alo[i] > blo[i] || bhi[i] > ahi[i] {
                return false;
            }
        }
        true
    }

    /// Reference for [`super::coords_overlap_area`]: ordered product of
    /// intersection extents, zero as soon as any axis is empty.
    #[inline]
    pub fn overlap_area(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
        let mut acc = 1.0;
        for i in 0..alo.len() {
            let lo = alo[i].max(blo[i]);
            let hi = ahi[i].min(bhi[i]);
            if hi <= lo {
                return 0.0;
            }
            acc *= hi - lo;
        }
        acc
    }

    /// Reference for [`super::coords_union_area`]: ordered product of
    /// union extents.
    #[inline]
    pub fn union_area(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
        let mut acc = 1.0;
        for i in 0..alo.len() {
            acc *= ahi[i].max(bhi[i]) - alo[i].min(blo[i]);
        }
        acc
    }

    /// Reference for [`super::coords_min_dist_point_sqr`]: ordered sum of
    /// squared per-axis clamp distances.
    #[inline]
    pub fn min_dist_point_sqr(lo: &[f64], hi: &[f64], p: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in 0..lo.len() {
            let x = p[i];
            let d = if x < lo[i] {
                lo[i] - x
            } else if x > hi[i] {
                x - hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }
}

/// Chunked element-wise implementations (default build): plain std code
/// shaped so the optimizer vectorizes each [`LANE_WIDTH`]-wide block, with
/// in-order horizontal reductions for bit-identity with [`scalar`].
#[cfg(not(feature = "simd"))]
mod lanes {
    use super::LANE_WIDTH as W;

    #[inline]
    pub fn area(lo: &[f64], hi: &[f64]) -> f64 {
        let (lc, lt) = lo.as_chunks::<W>();
        let (hc, ht) = hi.as_chunks::<W>();
        let mut acc = 1.0;
        for (l, h) in lc.iter().zip(hc) {
            let mut e = [0.0; W];
            for i in 0..W {
                e[i] = h[i] - l[i];
            }
            for &x in &e {
                acc *= x;
            }
        }
        for (l, h) in lt.iter().zip(ht) {
            acc *= h - l;
        }
        acc
    }

    #[inline]
    pub fn margin(lo: &[f64], hi: &[f64]) -> f64 {
        let (lc, lt) = lo.as_chunks::<W>();
        let (hc, ht) = hi.as_chunks::<W>();
        let mut acc = 0.0;
        for (l, h) in lc.iter().zip(hc) {
            let mut e = [0.0; W];
            for i in 0..W {
                e[i] = h[i] - l[i];
            }
            for &x in &e {
                acc += x;
            }
        }
        for (l, h) in lt.iter().zip(ht) {
            acc += h - l;
        }
        acc
    }

    #[inline]
    pub fn intersect(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> bool {
        let (alc, alt) = alo.as_chunks::<W>();
        let (ahc, aht) = ahi.as_chunks::<W>();
        let (blc, blt) = blo.as_chunks::<W>();
        let (bhc, bht) = bhi.as_chunks::<W>();
        // Each chunk's separation test is element-wise (vectorizable);
        // chunks short-circuit. Early exit cannot change the boolean
        // result — the reduction is order-free — so bit-identity with the
        // scalar reference is unaffected.
        for (((al, ah), bl), bh) in alc.iter().zip(ahc).zip(blc).zip(bhc) {
            let mut s = false;
            for i in 0..W {
                s |= al[i] > bh[i];
                s |= bl[i] > ah[i];
            }
            if s {
                return false;
            }
        }
        for i in 0..alt.len() {
            if alt[i] > bht[i] || blt[i] > aht[i] {
                return false;
            }
        }
        true
    }

    #[inline]
    pub fn contain(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> bool {
        let (alc, alt) = alo.as_chunks::<W>();
        let (ahc, aht) = ahi.as_chunks::<W>();
        let (blc, blt) = blo.as_chunks::<W>();
        let (bhc, bht) = bhi.as_chunks::<W>();
        // Early exit per chunk, as in `intersect`: order-free reduction.
        for (((al, ah), bl), bh) in alc.iter().zip(ahc).zip(blc).zip(bhc) {
            let mut s = false;
            for i in 0..W {
                s |= al[i] > bl[i];
                s |= bh[i] > ah[i];
            }
            if s {
                return false;
            }
        }
        for i in 0..alt.len() {
            if alt[i] > blt[i] || bht[i] > aht[i] {
                return false;
            }
        }
        true
    }

    #[inline]
    pub fn overlap_area(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
        let (alc, alt) = alo.as_chunks::<W>();
        let (ahc, aht) = ahi.as_chunks::<W>();
        let (blc, blt) = blo.as_chunks::<W>();
        let (bhc, bht) = bhi.as_chunks::<W>();
        let mut acc = 1.0;
        let mut empty = false;
        for (((al, ah), bl), bh) in alc.iter().zip(ahc).zip(blc).zip(bhc) {
            let mut e = [0.0; W];
            for i in 0..W {
                let lo = al[i].max(bl[i]);
                let hi = ah[i].min(bh[i]);
                empty |= hi <= lo;
                e[i] = hi - lo;
            }
            for &x in &e {
                acc *= x;
            }
        }
        for i in 0..alt.len() {
            let lo = alt[i].max(blt[i]);
            let hi = aht[i].min(bht[i]);
            empty |= hi <= lo;
            acc *= hi - lo;
        }
        if empty {
            0.0
        } else {
            acc
        }
    }

    #[inline]
    pub fn union_area(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
        let (alc, alt) = alo.as_chunks::<W>();
        let (ahc, aht) = ahi.as_chunks::<W>();
        let (blc, blt) = blo.as_chunks::<W>();
        let (bhc, bht) = bhi.as_chunks::<W>();
        let mut acc = 1.0;
        for (((al, ah), bl), bh) in alc.iter().zip(ahc).zip(blc).zip(bhc) {
            let mut e = [0.0; W];
            for i in 0..W {
                e[i] = ah[i].max(bh[i]) - al[i].min(bl[i]);
            }
            for &x in &e {
                acc *= x;
            }
        }
        for i in 0..alt.len() {
            acc *= aht[i].max(bht[i]) - alt[i].min(blt[i]);
        }
        acc
    }

    #[inline]
    pub fn min_dist_point_sqr(lo: &[f64], hi: &[f64], p: &[f64]) -> f64 {
        let (lc, lt) = lo.as_chunks::<W>();
        let (hc, ht) = hi.as_chunks::<W>();
        let (pc, pt) = p.as_chunks::<W>();
        let mut acc = 0.0;
        for ((l, h), q) in lc.iter().zip(hc).zip(pc) {
            let mut e = [0.0; W];
            for i in 0..W {
                let below = (l[i] - q[i]).max(0.0);
                let above = (q[i] - h[i]).max(0.0);
                let d = below + above;
                e[i] = d * d;
            }
            for &x in &e {
                acc += x;
            }
        }
        for i in 0..lt.len() {
            let below = (lt[i] - pt[i]).max(0.0);
            let above = (pt[i] - ht[i]).max(0.0);
            let d = below + above;
            acc += d * d;
        }
        acc
    }
}

/// Explicit `std::simd` implementations (nightly, `--features simd`):
/// identical chunk structure to the default build — element-wise `f64x4`
/// operations, in-order horizontal reductions — so results stay
/// bit-identical to [`scalar`].
#[cfg(feature = "simd")]
mod lanes {
    use super::LANE_WIDTH as W;
    use std::simd::cmp::SimdPartialOrd;
    use std::simd::f64x4;
    use std::simd::num::SimdFloat;

    #[inline]
    fn load(c: &[f64; W]) -> f64x4 {
        f64x4::from_array(*c)
    }

    #[inline]
    pub fn area(lo: &[f64], hi: &[f64]) -> f64 {
        let (lc, lt) = lo.as_chunks::<W>();
        let (hc, ht) = hi.as_chunks::<W>();
        let mut acc = 1.0;
        for (l, h) in lc.iter().zip(hc) {
            let e = (load(h) - load(l)).to_array();
            for &x in &e {
                acc *= x;
            }
        }
        for (l, h) in lt.iter().zip(ht) {
            acc *= h - l;
        }
        acc
    }

    #[inline]
    pub fn margin(lo: &[f64], hi: &[f64]) -> f64 {
        let (lc, lt) = lo.as_chunks::<W>();
        let (hc, ht) = hi.as_chunks::<W>();
        let mut acc = 0.0;
        for (l, h) in lc.iter().zip(hc) {
            let e = (load(h) - load(l)).to_array();
            for &x in &e {
                acc += x;
            }
        }
        for (l, h) in lt.iter().zip(ht) {
            acc += h - l;
        }
        acc
    }

    #[inline]
    pub fn intersect(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> bool {
        let (alc, alt) = alo.as_chunks::<W>();
        let (ahc, aht) = ahi.as_chunks::<W>();
        let (blc, blt) = blo.as_chunks::<W>();
        let (bhc, bht) = bhi.as_chunks::<W>();
        // Chunks short-circuit, as in the default build: early exit
        // cannot change an order-free boolean reduction.
        for (((al, ah), bl), bh) in alc.iter().zip(ahc).zip(blc).zip(bhc) {
            let sep = load(al).simd_gt(load(bh)) | load(bl).simd_gt(load(ah));
            if sep.any() {
                return false;
            }
        }
        for i in 0..alt.len() {
            if alt[i] > bht[i] || blt[i] > aht[i] {
                return false;
            }
        }
        true
    }

    #[inline]
    pub fn contain(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> bool {
        let (alc, alt) = alo.as_chunks::<W>();
        let (ahc, aht) = ahi.as_chunks::<W>();
        let (blc, blt) = blo.as_chunks::<W>();
        let (bhc, bht) = bhi.as_chunks::<W>();
        for (((al, ah), bl), bh) in alc.iter().zip(ahc).zip(blc).zip(bhc) {
            let out = load(al).simd_gt(load(bl)) | load(bh).simd_gt(load(ah));
            if out.any() {
                return false;
            }
        }
        for i in 0..alt.len() {
            if alt[i] > blt[i] || bht[i] > aht[i] {
                return false;
            }
        }
        true
    }

    #[inline]
    pub fn overlap_area(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
        let (alc, alt) = alo.as_chunks::<W>();
        let (ahc, aht) = ahi.as_chunks::<W>();
        let (blc, blt) = blo.as_chunks::<W>();
        let (bhc, bht) = bhi.as_chunks::<W>();
        let mut acc = 1.0;
        let mut empty = false;
        for (((al, ah), bl), bh) in alc.iter().zip(ahc).zip(blc).zip(bhc) {
            let glo = load(al).simd_max(load(bl));
            let ghi = load(ah).simd_min(load(bh));
            empty |= ghi.simd_le(glo).any();
            let e = (ghi - glo).to_array();
            for &x in &e {
                acc *= x;
            }
        }
        for i in 0..alt.len() {
            let lo = alt[i].max(blt[i]);
            let hi = aht[i].min(bht[i]);
            empty |= hi <= lo;
            acc *= hi - lo;
        }
        if empty {
            0.0
        } else {
            acc
        }
    }

    #[inline]
    pub fn union_area(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
        let (alc, alt) = alo.as_chunks::<W>();
        let (ahc, aht) = ahi.as_chunks::<W>();
        let (blc, blt) = blo.as_chunks::<W>();
        let (bhc, bht) = bhi.as_chunks::<W>();
        let mut acc = 1.0;
        for (((al, ah), bl), bh) in alc.iter().zip(ahc).zip(blc).zip(bhc) {
            let e = (load(ah).simd_max(load(bh)) - load(al).simd_min(load(bl))).to_array();
            for &x in &e {
                acc *= x;
            }
        }
        for i in 0..alt.len() {
            acc *= aht[i].max(bht[i]) - alt[i].min(blt[i]);
        }
        acc
    }

    #[inline]
    pub fn min_dist_point_sqr(lo: &[f64], hi: &[f64], p: &[f64]) -> f64 {
        let (lc, lt) = lo.as_chunks::<W>();
        let (hc, ht) = hi.as_chunks::<W>();
        let (pc, pt) = p.as_chunks::<W>();
        let zero = f64x4::splat(0.0);
        let mut acc = 0.0;
        for ((l, h), q) in lc.iter().zip(hc).zip(pc) {
            let lv = load(l);
            let hv = load(h);
            let qv = load(q);
            let d = (lv - qv).simd_max(zero) + (qv - hv).simd_max(zero);
            let e = (d * d).to_array();
            for &x in &e {
                acc += x;
            }
        }
        for i in 0..lt.len() {
            let below = (lt[i] - pt[i]).max(0.0);
            let above = (pt[i] - ht[i]).max(0.0);
            let d = below + above;
            acc += d * d;
        }
        acc
    }
}

/// Volume (product of extents) of the box `[lo, hi]`. Zero for degenerate
/// boxes.
#[inline]
pub fn coords_area(lo: &[f64], hi: &[f64]) -> f64 {
    debug_assert_eq!(lo.len(), hi.len());
    lanes::area(lo, hi)
}

/// Margin (sum of extents; half-perimeter generalized to d dimensions) of
/// the box `[lo, hi]`. The R\*-tree split axis minimizes this.
#[inline]
pub fn coords_margin(lo: &[f64], hi: &[f64]) -> f64 {
    debug_assert_eq!(lo.len(), hi.len());
    lanes::margin(lo, hi)
}

/// `true` if the boxes `[alo, ahi]` and `[blo, bhi]` share at least a
/// boundary point.
#[inline]
pub fn coords_intersect(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> bool {
    debug_assert_eq!(alo.len(), blo.len());
    lanes::intersect(alo, ahi, blo, bhi)
}

/// `true` if the box `[blo, bhi]` lies fully inside `[alo, ahi]`.
#[inline]
pub fn coords_contain(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> bool {
    debug_assert_eq!(alo.len(), blo.len());
    lanes::contain(alo, ahi, blo, bhi)
}

/// Volume of the intersection of two boxes, zero if disjoint.
#[inline]
pub fn coords_overlap_area(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
    debug_assert_eq!(alo.len(), blo.len());
    lanes::overlap_area(alo, ahi, blo, bhi)
}

/// Area of the union of two boxes without materializing it.
#[inline]
pub fn coords_union_area(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
    debug_assert_eq!(alo.len(), blo.len());
    lanes::union_area(alo, ahi, blo, bhi)
}

/// Squared minimum Euclidean distance from point `p` to the box
/// `[lo, hi]` — the square of `d_min(p, B)` of Roussopoulos et al. Zero if
/// `p` is inside. Callers needing the distance itself take `.sqrt()`.
#[inline]
pub fn coords_min_dist_point_sqr(lo: &[f64], hi: &[f64], p: &[f64]) -> f64 {
    debug_assert_eq!(lo.len(), p.len());
    lanes::min_dist_point_sqr(lo, hi, p)
}

/// Batched node scan: tests every entry of a node's interleaved SoA
/// bounds block (entry `i` occupies `coords[2*dims*i .. 2*dims*(i+1))`,
/// `dims` los then `dims` his) against the query box `[qlo, qhi]`, and
/// invokes `on_hit` with each intersecting entry's index, in entry order.
///
/// Selection-identical to calling [`coords_intersect`] per entry: the
/// per-dimension comparisons are the same and the OR-reduction over
/// separations is order-free. The win is structural — query bounds and
/// slice bookkeeping are hoisted out of the per-entry loop, and the common
/// dimensionalities get monomorphized bodies the compiler fully unrolls
/// (and, for the branch-free fixed-width paths, vectorizes): one node scan
/// is a single tight loop instead of `entries` separate primitive calls.
#[inline]
pub fn coords_scan_intersecting<F: FnMut(usize)>(
    coords: &[f64],
    dims: usize,
    qlo: &[f64],
    qhi: &[f64],
    on_hit: F,
) {
    debug_assert_eq!(qlo.len(), dims);
    debug_assert_eq!(qhi.len(), dims);
    match dims {
        1 => scan_intersecting_fixed::<1, F>(coords, qlo, qhi, on_hit),
        2 => scan_intersecting_fixed::<2, F>(coords, qlo, qhi, on_hit),
        3 => scan_intersecting_fixed::<3, F>(coords, qlo, qhi, on_hit),
        4 => scan_intersecting_fixed::<4, F>(coords, qlo, qhi, on_hit),
        8 => scan_intersecting_fixed::<8, F>(coords, qlo, qhi, on_hit),
        16 => scan_intersecting_fixed::<16, F>(coords, qlo, qhi, on_hit),
        _ => scan_intersecting_generic(coords, dims, qlo, qhi, on_hit),
    }
}

/// Fixed-dimensionality body of [`coords_scan_intersecting`]. Branch-free
/// across dimensions (`|`-joined comparisons, no early exit) so rejecting
/// an entry costs no data-dependent branches — on query workloads the
/// separating axis is effectively random, and a mispredict per entry is
/// dearer than the handful of extra compares.
#[inline]
fn scan_intersecting_fixed<const D: usize, F: FnMut(usize)>(
    coords: &[f64],
    qlo: &[f64],
    qhi: &[f64],
    mut on_hit: F,
) {
    let qlo: &[f64; D] = qlo.try_into().expect("query dims mismatch");
    let qhi: &[f64; D] = qhi.try_into().expect("query dims mismatch");
    for (i, entry) in coords.chunks_exact(2 * D).enumerate() {
        let (lo, hi) = entry.split_at(D);
        let mut sep = false;
        for j in 0..D {
            sep = sep | (lo[j] > qhi[j]) | (qlo[j] > hi[j]);
        }
        if !sep {
            on_hit(i);
        }
    }
}

/// Runtime-dimensionality fallback of [`coords_scan_intersecting`]:
/// defers to the per-entry primitive (chunked or `std::simd`, per the
/// build) so uncommon dimensionalities keep the lane-width fast path.
fn scan_intersecting_generic<F: FnMut(usize)>(
    coords: &[f64],
    dims: usize,
    qlo: &[f64],
    qhi: &[f64],
    mut on_hit: F,
) {
    for (i, entry) in coords.chunks_exact(2 * dims).enumerate() {
        if coords_intersect(&entry[..dims], &entry[dims..], qlo, qhi) {
            on_hit(i);
        }
    }
}

/// Batched within-radius node scan over the same interleaved SoA layout as
/// [`coords_scan_intersecting`]: invokes `on_hit` with the index of every
/// entry whose box lies within Euclidean distance `r` of `point`
/// (`d_min(point, B) ≤ r`), in entry order.
///
/// Bit-identical selection to per-entry
/// `coords_min_dist_point_sqr(..).sqrt() <= r`: per-axis clamp distances
/// are accumulated in dimension order with the exact formulation of the
/// chunked primitive, so the squared distance — and therefore the
/// comparison — carries the same bits.
#[inline]
pub fn coords_scan_within<F: FnMut(usize)>(
    coords: &[f64],
    dims: usize,
    point: &[f64],
    r: f64,
    on_hit: F,
) {
    debug_assert_eq!(point.len(), dims);
    match dims {
        1 => scan_within_fixed::<1, F>(coords, point, r, on_hit),
        2 => scan_within_fixed::<2, F>(coords, point, r, on_hit),
        3 => scan_within_fixed::<3, F>(coords, point, r, on_hit),
        4 => scan_within_fixed::<4, F>(coords, point, r, on_hit),
        8 => scan_within_fixed::<8, F>(coords, point, r, on_hit),
        16 => scan_within_fixed::<16, F>(coords, point, r, on_hit),
        _ => scan_within_generic(coords, dims, point, r, on_hit),
    }
}

/// Fixed-dimensionality body of [`coords_scan_within`]. The per-axis
/// distance uses the branch-free `max(0.0)` clamp of the chunked
/// primitive — for a valid box (`lo ≤ hi`) at most one side is positive,
/// so `below + above` is exactly the scalar clamp distance — and the
/// accumulation stays in dimension order for bit-identity.
#[inline]
fn scan_within_fixed<const D: usize, F: FnMut(usize)>(
    coords: &[f64],
    point: &[f64],
    r: f64,
    mut on_hit: F,
) {
    let point: &[f64; D] = point.try_into().expect("query dims mismatch");
    for (i, entry) in coords.chunks_exact(2 * D).enumerate() {
        let (lo, hi) = entry.split_at(D);
        let mut acc = 0.0;
        for j in 0..D {
            let below = (lo[j] - point[j]).max(0.0);
            let above = (point[j] - hi[j]).max(0.0);
            let d = below + above;
            acc += d * d;
        }
        if acc.sqrt() <= r {
            on_hit(i);
        }
    }
}

/// Runtime-dimensionality fallback of [`coords_scan_within`].
fn scan_within_generic<F: FnMut(usize)>(
    coords: &[f64],
    dims: usize,
    point: &[f64],
    r: f64,
    mut on_hit: F,
) {
    for (i, entry) in coords.chunks_exact(2 * dims).enumerate() {
        if coords_min_dist_point_sqr(&entry[..dims], &entry[dims..], point).sqrt() <= r {
            on_hit(i);
        }
    }
}

/// An axis-aligned hyper-rectangle with `f64` coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// Builds a rectangle from low/high corners.
    ///
    /// # Panics
    /// Panics if the corners differ in length, are empty, or are inverted.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        assert!(!lo.is_empty(), "rectangles need at least one dimension");
        for (l, h) in lo.iter().zip(&hi) {
            assert!(l <= h, "inverted rectangle: lo {l} > hi {h}");
        }
        Rect { lo: lo.into_boxed_slice(), hi: hi.into_boxed_slice() }
    }

    /// A degenerate rectangle at point `p`.
    pub fn point(p: &[f64]) -> Self {
        assert!(!p.is_empty(), "rectangles need at least one dimension");
        Rect { lo: p.into(), hi: p.into() }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Low corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// High corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Center point.
    pub fn center(&self) -> Vec<f64> {
        self.lo.iter().zip(self.hi.iter()).map(|(l, h)| (l + h) * 0.5).collect()
    }

    /// Volume (product of extents). Zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        coords_area(&self.lo, &self.hi)
    }

    /// Margin: the sum of extents (half-perimeter generalized to d
    /// dimensions). The R\*-tree split axis minimizes this.
    #[inline]
    pub fn margin(&self) -> f64 {
        coords_margin(&self.lo, &self.hi)
    }

    /// The smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dims(), other.dims());
        let lo = self.lo.iter().zip(other.lo.iter()).map(|(a, b)| a.min(*b)).collect();
        let hi = self.hi.iter().zip(other.hi.iter()).map(|(a, b)| a.max(*b)).collect();
        Rect { lo, hi }
    }

    /// Grows `self` in place to contain `other`.
    pub fn union_in_place(&mut self, other: &Rect) {
        debug_assert_eq!(self.dims(), other.dims());
        for i in 0..self.lo.len() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// Area of `self ∪ other` without materializing the union.
    #[inline]
    pub fn union_area(&self, other: &Rect) -> f64 {
        coords_union_area(&self.lo, &self.hi, &other.lo, &other.hi)
    }

    /// Extra area `area(self ∪ other) − area(self)` needed to include
    /// `other`; the ChooseSubtree criterion for internal levels.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union_area(other) - self.area()
    }

    /// Volume of the intersection, zero if disjoint.
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        coords_overlap_area(&self.lo, &self.hi, &other.lo, &other.hi)
    }

    /// `true` if the rectangles share at least a boundary point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        coords_intersect(&self.lo, &self.hi, &other.lo, &other.hi)
    }

    /// `true` if `other` lies fully inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        coords_contain(&self.lo, &self.hi, &other.lo, &other.hi)
    }

    /// `true` if point `p` lies inside `self`.
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(self.dims(), p.len());
        self.lo.iter().zip(self.hi.iter()).zip(p).all(|((l, h), x)| l <= x && x <= h)
    }

    /// Minimum Euclidean distance from `p` to the rectangle — `d_min(p, B)`
    /// of Roussopoulos et al. Zero if `p` is inside.
    #[inline]
    pub fn min_dist_point(&self, p: &[f64]) -> f64 {
        coords_min_dist_point_sqr(&self.lo, &self.hi, p).sqrt()
    }

    /// Minimum Euclidean distance between two rectangles; zero if they
    /// intersect.
    pub fn min_dist_rect(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        let mut acc = 0.0;
        for i in 0..self.lo.len() {
            let d = if other.hi[i] < self.lo[i] {
                self.lo[i] - other.hi[i]
            } else if other.lo[i] > self.hi[i] {
                other.lo[i] - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc.sqrt()
    }

    /// Squared distance between the centers of two rectangles; the R\*-tree
    /// reinsertion heuristic sorts by this.
    pub fn center_dist_sqr(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        let mut acc = 0.0;
        for i in 0..self.lo.len() {
            let c1 = (self.lo[i] + self.hi[i]) * 0.5;
            let c2 = (other.lo[i] + other.hi[i]) * 0.5;
            acc += (c1 - c2) * (c1 - c2);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn r(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn area_and_margin() {
        let b = r(&[0.0, 0.0], &[2.0, 3.0]);
        assert!((b.area() - 6.0).abs() < EPS);
        assert!((b.margin() - 5.0).abs() < EPS);
    }

    #[test]
    fn union_covers_both() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[2.0, -1.0], &[3.0, 0.5]);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u.lo(), &[0.0, -1.0]);
        assert_eq!(u.hi(), &[3.0, 1.0]);
    }

    #[test]
    fn union_in_place_matches_union() {
        let mut a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[-1.0, 0.5], &[0.5, 2.0]);
        let u = a.union(&b);
        a.union_in_place(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = r(&[0.0, 0.0], &[4.0, 4.0]);
        let b = r(&[1.0, 1.0], &[2.0, 2.0]);
        assert!(a.enlargement(&b).abs() < EPS);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn overlap_of_disjoint_is_zero() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[2.0, 2.0], &[3.0, 3.0]);
        assert_eq!(a.overlap_area(&b), 0.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn overlap_of_nested_is_inner_area() {
        let a = r(&[0.0, 0.0], &[4.0, 4.0]);
        let b = r(&[1.0, 1.0], &[2.0, 3.0]);
        assert!((a.overlap_area(&b) - b.area()).abs() < EPS);
    }

    #[test]
    fn touching_rectangles_intersect_with_zero_overlap() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[1.0, 0.0], &[2.0, 1.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn min_dist_point_cases() {
        let b = r(&[0.0, 0.0], &[2.0, 2.0]);
        assert_eq!(b.min_dist_point(&[1.0, 1.0]), 0.0);
        assert!((b.min_dist_point(&[3.0, 1.0]) - 1.0).abs() < EPS);
        assert!((b.min_dist_point(&[3.0, 3.0]) - 2f64.sqrt()).abs() < EPS);
    }

    #[test]
    fn min_dist_rect_cases() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[3.0, 0.0], &[4.0, 1.0]);
        assert!((a.min_dist_rect(&b) - 2.0).abs() < EPS);
        let c = r(&[0.5, 0.5], &[5.0, 5.0]);
        assert_eq!(a.min_dist_rect(&c), 0.0);
    }

    #[test]
    fn center_dist() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        let b = r(&[4.0, 0.0], &[6.0, 2.0]);
        assert!((a.center_dist_sqr(&b) - 16.0).abs() < EPS);
    }

    #[test]
    fn point_rect_is_degenerate() {
        let p = Rect::point(&[1.0, -2.0, 3.0]);
        assert_eq!(p.area(), 0.0);
        assert!(p.contains_point(&[1.0, -2.0, 3.0]));
    }

    #[test]
    #[should_panic(expected = "inverted rectangle")]
    fn inverted_rejected() {
        let _ = r(&[1.0], &[0.0]);
    }

    /// The slice primitives and the `Rect` methods are one implementation;
    /// pin the delegation with value checks on both forms.
    #[test]
    fn coords_helpers_match_rect_methods() {
        let a = r(&[0.0, 1.0], &[3.0, 4.0]);
        let b = r(&[2.0, 0.0], &[5.0, 2.0]);
        assert_eq!(coords_area(a.lo(), a.hi()), a.area());
        assert_eq!(coords_margin(a.lo(), a.hi()), a.margin());
        assert_eq!(coords_overlap_area(a.lo(), a.hi(), b.lo(), b.hi()), a.overlap_area(&b));
        assert_eq!(coords_union_area(a.lo(), a.hi(), b.lo(), b.hi()), a.union_area(&b));
        assert_eq!(coords_intersect(a.lo(), a.hi(), b.lo(), b.hi()), a.intersects(&b));
        assert_eq!(coords_contain(a.lo(), a.hi(), b.lo(), b.hi()), a.contains_rect(&b));
        let p = [6.0, 3.0];
        assert_eq!(coords_min_dist_point_sqr(a.lo(), a.hi(), &p).sqrt(), a.min_dist_point(&p));
    }

    #[test]
    fn coords_overlap_handles_touching_and_disjoint() {
        // Touching along one axis: overlap is zero (hi == lo short-circuit).
        assert_eq!(coords_overlap_area(&[0.0, 0.0], &[1.0, 1.0], &[1.0, 0.0], &[2.0, 1.0]), 0.0);
        // Fully disjoint.
        assert_eq!(coords_overlap_area(&[0.0], &[1.0], &[5.0], &[6.0]), 0.0);
        // Proper overlap: 1×1 square.
        let got = coords_overlap_area(&[0.0, 0.0], &[2.0, 2.0], &[1.0, 1.0], &[3.0, 3.0]);
        assert!((got - 1.0).abs() < EPS);
    }

    #[test]
    fn coords_min_dist_point_sqr_cases() {
        let (lo, hi) = ([0.0, 0.0], [2.0, 2.0]);
        assert_eq!(coords_min_dist_point_sqr(&lo, &hi, &[1.0, 1.0]), 0.0);
        assert!((coords_min_dist_point_sqr(&lo, &hi, &[3.0, 3.0]) - 2.0).abs() < EPS);
        assert!((coords_min_dist_point_sqr(&lo, &hi, &[-1.0, 1.0]) - 1.0).abs() < EPS);
    }

    /// Smoke-level pin of chunked-vs-scalar bit-identity on a box wider
    /// than one chunk; the exhaustive 256-case suite lives in
    /// `tests/geometry_equivalence.rs`.
    #[test]
    fn chunked_matches_scalar_reference() {
        let alo: Vec<f64> = (0..11).map(|i| i as f64 * 0.37 - 2.0).collect();
        let ahi: Vec<f64> = alo.iter().map(|l| l + 1.25).collect();
        let blo: Vec<f64> = (0..11).map(|i| (i as f64 * 0.91).sin()).collect();
        let bhi: Vec<f64> = blo.iter().map(|l| l + 0.75).collect();
        let p: Vec<f64> = (0..11).map(|i| (i as f64 * 1.3).cos() * 3.0).collect();
        assert_eq!(coords_area(&alo, &ahi).to_bits(), scalar::area(&alo, &ahi).to_bits());
        assert_eq!(coords_margin(&alo, &ahi).to_bits(), scalar::margin(&alo, &ahi).to_bits());
        assert_eq!(
            coords_intersect(&alo, &ahi, &blo, &bhi),
            scalar::intersect(&alo, &ahi, &blo, &bhi)
        );
        assert_eq!(coords_contain(&alo, &ahi, &blo, &bhi), scalar::contain(&alo, &ahi, &blo, &bhi));
        assert_eq!(
            coords_overlap_area(&alo, &ahi, &blo, &bhi).to_bits(),
            scalar::overlap_area(&alo, &ahi, &blo, &bhi).to_bits()
        );
        assert_eq!(
            coords_union_area(&alo, &ahi, &blo, &bhi).to_bits(),
            scalar::union_area(&alo, &ahi, &blo, &bhi).to_bits()
        );
        assert_eq!(
            coords_min_dist_point_sqr(&alo, &ahi, &p).to_bits(),
            scalar::min_dist_point_sqr(&alo, &ahi, &p).to_bits()
        );
    }
}
