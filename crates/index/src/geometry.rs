//! Axis-aligned rectangles and the metrics the R\*-tree optimizes.
//!
//! The R\*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990) chooses
//! subtrees and splits by a combination of *area*, *margin* (perimeter) and
//! *overlap*; this module implements those primitives plus the point/rect
//! distance functions used by range queries and by the hierarchical radius
//! refinement of the pattern-query algorithms.
//!
//! The primitives exist in two forms sharing one implementation: methods on
//! [`Rect`], and the `coords_*` functions over raw `(lo, hi)` coordinate
//! slices. The slice form is what the arena tree's flat SoA scans call —
//! `tree.rs` and `bulk.rs` never reimplement a metric, so every scan loop
//! computes bit-identical values to the `Rect` API.

/// Volume (product of extents) of the box `[lo, hi]`. Zero for degenerate
/// boxes.
#[inline]
pub fn coords_area(lo: &[f64], hi: &[f64]) -> f64 {
    debug_assert_eq!(lo.len(), hi.len());
    let mut acc = 1.0;
    for i in 0..lo.len() {
        acc *= hi[i] - lo[i];
    }
    acc
}

/// Margin (sum of extents; half-perimeter generalized to d dimensions) of
/// the box `[lo, hi]`. The R\*-tree split axis minimizes this.
#[inline]
pub fn coords_margin(lo: &[f64], hi: &[f64]) -> f64 {
    debug_assert_eq!(lo.len(), hi.len());
    let mut acc = 0.0;
    for i in 0..lo.len() {
        acc += hi[i] - lo[i];
    }
    acc
}

/// `true` if the boxes `[alo, ahi]` and `[blo, bhi]` share at least a
/// boundary point.
#[inline]
pub fn coords_intersect(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> bool {
    debug_assert_eq!(alo.len(), blo.len());
    for i in 0..alo.len() {
        if alo[i] > bhi[i] || blo[i] > ahi[i] {
            return false;
        }
    }
    true
}

/// `true` if the box `[blo, bhi]` lies fully inside `[alo, ahi]`.
#[inline]
pub fn coords_contain(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> bool {
    debug_assert_eq!(alo.len(), blo.len());
    for i in 0..alo.len() {
        if alo[i] > blo[i] || bhi[i] > ahi[i] {
            return false;
        }
    }
    true
}

/// Volume of the intersection of two boxes, zero if disjoint.
#[inline]
pub fn coords_overlap_area(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
    debug_assert_eq!(alo.len(), blo.len());
    let mut acc = 1.0;
    for i in 0..alo.len() {
        let lo = alo[i].max(blo[i]);
        let hi = ahi[i].min(bhi[i]);
        if hi <= lo {
            return 0.0;
        }
        acc *= hi - lo;
    }
    acc
}

/// Area of the union of two boxes without materializing it.
#[inline]
pub fn coords_union_area(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
    debug_assert_eq!(alo.len(), blo.len());
    let mut acc = 1.0;
    for i in 0..alo.len() {
        acc *= ahi[i].max(bhi[i]) - alo[i].min(blo[i]);
    }
    acc
}

/// Squared minimum Euclidean distance from point `p` to the box
/// `[lo, hi]` — the square of `d_min(p, B)` of Roussopoulos et al. Zero if
/// `p` is inside. Callers needing the distance itself take `.sqrt()`.
#[inline]
pub fn coords_min_dist_point_sqr(lo: &[f64], hi: &[f64], p: &[f64]) -> f64 {
    debug_assert_eq!(lo.len(), p.len());
    let mut acc = 0.0;
    for i in 0..lo.len() {
        let x = p[i];
        let d = if x < lo[i] {
            lo[i] - x
        } else if x > hi[i] {
            x - hi[i]
        } else {
            0.0
        };
        acc += d * d;
    }
    acc
}

/// An axis-aligned hyper-rectangle with `f64` coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// Builds a rectangle from low/high corners.
    ///
    /// # Panics
    /// Panics if the corners differ in length, are empty, or are inverted.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        assert!(!lo.is_empty(), "rectangles need at least one dimension");
        for (l, h) in lo.iter().zip(&hi) {
            assert!(l <= h, "inverted rectangle: lo {l} > hi {h}");
        }
        Rect { lo: lo.into_boxed_slice(), hi: hi.into_boxed_slice() }
    }

    /// A degenerate rectangle at point `p`.
    pub fn point(p: &[f64]) -> Self {
        assert!(!p.is_empty(), "rectangles need at least one dimension");
        Rect { lo: p.into(), hi: p.into() }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Low corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// High corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Center point.
    pub fn center(&self) -> Vec<f64> {
        self.lo.iter().zip(self.hi.iter()).map(|(l, h)| (l + h) * 0.5).collect()
    }

    /// Volume (product of extents). Zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        coords_area(&self.lo, &self.hi)
    }

    /// Margin: the sum of extents (half-perimeter generalized to d
    /// dimensions). The R\*-tree split axis minimizes this.
    #[inline]
    pub fn margin(&self) -> f64 {
        coords_margin(&self.lo, &self.hi)
    }

    /// The smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dims(), other.dims());
        let lo = self.lo.iter().zip(other.lo.iter()).map(|(a, b)| a.min(*b)).collect();
        let hi = self.hi.iter().zip(other.hi.iter()).map(|(a, b)| a.max(*b)).collect();
        Rect { lo, hi }
    }

    /// Grows `self` in place to contain `other`.
    pub fn union_in_place(&mut self, other: &Rect) {
        debug_assert_eq!(self.dims(), other.dims());
        for i in 0..self.lo.len() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// Area of `self ∪ other` without materializing the union.
    #[inline]
    pub fn union_area(&self, other: &Rect) -> f64 {
        coords_union_area(&self.lo, &self.hi, &other.lo, &other.hi)
    }

    /// Extra area `area(self ∪ other) − area(self)` needed to include
    /// `other`; the ChooseSubtree criterion for internal levels.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union_area(other) - self.area()
    }

    /// Volume of the intersection, zero if disjoint.
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        coords_overlap_area(&self.lo, &self.hi, &other.lo, &other.hi)
    }

    /// `true` if the rectangles share at least a boundary point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        coords_intersect(&self.lo, &self.hi, &other.lo, &other.hi)
    }

    /// `true` if `other` lies fully inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        coords_contain(&self.lo, &self.hi, &other.lo, &other.hi)
    }

    /// `true` if point `p` lies inside `self`.
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(self.dims(), p.len());
        self.lo.iter().zip(self.hi.iter()).zip(p).all(|((l, h), x)| l <= x && x <= h)
    }

    /// Minimum Euclidean distance from `p` to the rectangle — `d_min(p, B)`
    /// of Roussopoulos et al. Zero if `p` is inside.
    #[inline]
    pub fn min_dist_point(&self, p: &[f64]) -> f64 {
        coords_min_dist_point_sqr(&self.lo, &self.hi, p).sqrt()
    }

    /// Minimum Euclidean distance between two rectangles; zero if they
    /// intersect.
    pub fn min_dist_rect(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        let mut acc = 0.0;
        for i in 0..self.lo.len() {
            let d = if other.hi[i] < self.lo[i] {
                self.lo[i] - other.hi[i]
            } else if other.lo[i] > self.hi[i] {
                other.lo[i] - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc.sqrt()
    }

    /// Squared distance between the centers of two rectangles; the R\*-tree
    /// reinsertion heuristic sorts by this.
    pub fn center_dist_sqr(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        let mut acc = 0.0;
        for i in 0..self.lo.len() {
            let c1 = (self.lo[i] + self.hi[i]) * 0.5;
            let c2 = (other.lo[i] + other.hi[i]) * 0.5;
            acc += (c1 - c2) * (c1 - c2);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn r(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn area_and_margin() {
        let b = r(&[0.0, 0.0], &[2.0, 3.0]);
        assert!((b.area() - 6.0).abs() < EPS);
        assert!((b.margin() - 5.0).abs() < EPS);
    }

    #[test]
    fn union_covers_both() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[2.0, -1.0], &[3.0, 0.5]);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u.lo(), &[0.0, -1.0]);
        assert_eq!(u.hi(), &[3.0, 1.0]);
    }

    #[test]
    fn union_in_place_matches_union() {
        let mut a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[-1.0, 0.5], &[0.5, 2.0]);
        let u = a.union(&b);
        a.union_in_place(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = r(&[0.0, 0.0], &[4.0, 4.0]);
        let b = r(&[1.0, 1.0], &[2.0, 2.0]);
        assert!(a.enlargement(&b).abs() < EPS);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn overlap_of_disjoint_is_zero() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[2.0, 2.0], &[3.0, 3.0]);
        assert_eq!(a.overlap_area(&b), 0.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn overlap_of_nested_is_inner_area() {
        let a = r(&[0.0, 0.0], &[4.0, 4.0]);
        let b = r(&[1.0, 1.0], &[2.0, 3.0]);
        assert!((a.overlap_area(&b) - b.area()).abs() < EPS);
    }

    #[test]
    fn touching_rectangles_intersect_with_zero_overlap() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[1.0, 0.0], &[2.0, 1.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn min_dist_point_cases() {
        let b = r(&[0.0, 0.0], &[2.0, 2.0]);
        assert_eq!(b.min_dist_point(&[1.0, 1.0]), 0.0);
        assert!((b.min_dist_point(&[3.0, 1.0]) - 1.0).abs() < EPS);
        assert!((b.min_dist_point(&[3.0, 3.0]) - 2f64.sqrt()).abs() < EPS);
    }

    #[test]
    fn min_dist_rect_cases() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[3.0, 0.0], &[4.0, 1.0]);
        assert!((a.min_dist_rect(&b) - 2.0).abs() < EPS);
        let c = r(&[0.5, 0.5], &[5.0, 5.0]);
        assert_eq!(a.min_dist_rect(&c), 0.0);
    }

    #[test]
    fn center_dist() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        let b = r(&[4.0, 0.0], &[6.0, 2.0]);
        assert!((a.center_dist_sqr(&b) - 16.0).abs() < EPS);
    }

    #[test]
    fn point_rect_is_degenerate() {
        let p = Rect::point(&[1.0, -2.0, 3.0]);
        assert_eq!(p.area(), 0.0);
        assert!(p.contains_point(&[1.0, -2.0, 3.0]));
    }

    #[test]
    #[should_panic(expected = "inverted rectangle")]
    fn inverted_rejected() {
        let _ = r(&[1.0], &[0.0]);
    }

    /// The slice primitives and the `Rect` methods are one implementation;
    /// pin the delegation with value checks on both forms.
    #[test]
    fn coords_helpers_match_rect_methods() {
        let a = r(&[0.0, 1.0], &[3.0, 4.0]);
        let b = r(&[2.0, 0.0], &[5.0, 2.0]);
        assert_eq!(coords_area(a.lo(), a.hi()), a.area());
        assert_eq!(coords_margin(a.lo(), a.hi()), a.margin());
        assert_eq!(coords_overlap_area(a.lo(), a.hi(), b.lo(), b.hi()), a.overlap_area(&b));
        assert_eq!(coords_union_area(a.lo(), a.hi(), b.lo(), b.hi()), a.union_area(&b));
        assert_eq!(coords_intersect(a.lo(), a.hi(), b.lo(), b.hi()), a.intersects(&b));
        assert_eq!(coords_contain(a.lo(), a.hi(), b.lo(), b.hi()), a.contains_rect(&b));
        let p = [6.0, 3.0];
        assert_eq!(coords_min_dist_point_sqr(a.lo(), a.hi(), &p).sqrt(), a.min_dist_point(&p));
    }

    #[test]
    fn coords_overlap_handles_touching_and_disjoint() {
        // Touching along one axis: overlap is zero (hi == lo short-circuit).
        assert_eq!(coords_overlap_area(&[0.0, 0.0], &[1.0, 1.0], &[1.0, 0.0], &[2.0, 1.0]), 0.0);
        // Fully disjoint.
        assert_eq!(coords_overlap_area(&[0.0], &[1.0], &[5.0], &[6.0]), 0.0);
        // Proper overlap: 1×1 square.
        let got = coords_overlap_area(&[0.0, 0.0], &[2.0, 2.0], &[1.0, 1.0], &[3.0, 3.0]);
        assert!((got - 1.0).abs() < EPS);
    }

    #[test]
    fn coords_min_dist_point_sqr_cases() {
        let (lo, hi) = ([0.0, 0.0], [2.0, 2.0]);
        assert_eq!(coords_min_dist_point_sqr(&lo, &hi, &[1.0, 1.0]), 0.0);
        assert!((coords_min_dist_point_sqr(&lo, &hi, &[3.0, 3.0]) - 2.0).abs() < EPS);
        assert!((coords_min_dist_point_sqr(&lo, &hi, &[-1.0, 1.0]) - 1.0).abs() < EPS);
    }
}
