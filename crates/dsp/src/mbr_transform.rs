//! Transforming minimum bounding rectangles through the wavelet transform.
//!
//! When the summarizer trades accuracy for space by grouping `c` consecutive
//! feature vectors into an MBR, computing the next level's feature requires
//! pushing a *rectangle* (not a point) through one analysis step. Appendix A
//! gives two algorithms:
//!
//! * **Online I** — transform all `2^{f'}` corners of the rectangle and take
//!   the tightest enclosing box. Exact for the rectangle (tightest possible
//!   output box) but Θ(2^{f'}·f).
//! * **Online II** (Lemma A.2) — transform only the low and high corners,
//!   using the δ-split `h̃ = (h̃+δ) − δ` so monotonicity holds even when the
//!   filter has negative taps. Θ(f), at the cost of a looser box.
//!
//! Both are *conservative*: the output box contains the transform of every
//! point in the input box, so downstream pruning never causes a false
//! dismissal.

use crate::filter::FilterBank;

/// An axis-aligned hyper-rectangle in feature space, the `B` of the paper:
/// `B[2i]`/`B[2i+1]` are the low/high coordinates of dimension `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Bounds {
    /// A degenerate rectangle containing the single point `p`.
    pub fn point(p: &[f64]) -> Self {
        Bounds { lo: p.to_vec(), hi: p.to_vec() }
    }

    /// A rectangle from explicit low/high coordinates.
    ///
    /// # Panics
    /// Panics if the vectors differ in length, are empty, or `lo > hi` in
    /// some dimension.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "lo/hi dimensionality mismatch");
        assert!(!lo.is_empty(), "bounds need at least one dimension");
        for (l, h) in lo.iter().zip(&hi) {
            assert!(l <= h, "inverted bounds: lo {l} > hi {h}");
        }
        Bounds { lo, hi }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Low corner.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// High corner.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Center point.
    pub fn center(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(l, h)| (l + h) * 0.5).collect()
    }

    /// Extent `hi − lo` per dimension.
    pub fn widths(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).collect()
    }

    /// `true` if `p` lies inside (with tolerance `eps`).
    pub fn contains(&self, p: &[f64], eps: f64) -> bool {
        p.len() == self.dims()
            && p.iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(x, (l, h))| *x >= l - eps && *x <= h + eps)
    }

    /// `true` if `other` lies fully inside `self` (with tolerance `eps`).
    pub fn contains_bounds(&self, other: &Bounds, eps: f64) -> bool {
        self.contains(&other.lo, eps) && self.contains(&other.hi, eps)
    }

    /// Grows the rectangle to include `p`.
    ///
    /// # Panics
    /// Panics if `p` has the wrong dimensionality.
    pub fn extend(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dims(), "point dimensionality mismatch");
        for (i, &x) in p.iter().enumerate() {
            if x < self.lo[i] {
                self.lo[i] = x;
            }
            if x > self.hi[i] {
                self.hi[i] = x;
            }
        }
    }

    /// The concatenation `[self, other]` as a rectangle in `R^{d1+d2}`;
    /// represents all signals whose first half lies in `self` and second
    /// half in `other`.
    pub fn concat(&self, other: &Bounds) -> Bounds {
        let mut lo = self.lo.clone();
        lo.extend_from_slice(&other.lo);
        let mut hi = self.hi.clone();
        hi.extend_from_slice(&other.hi);
        Bounds { lo, hi }
    }

    /// Scales every coordinate by `s ≥ 0` (normalization is linear).
    ///
    /// # Panics
    /// Panics if `s` is negative.
    pub fn scale(&self, s: f64) -> Bounds {
        assert!(s >= 0.0, "scale factor must be nonnegative");
        Bounds {
            lo: self.lo.iter().map(|v| v * s).collect(),
            hi: self.hi.iter().map(|v| v * s).collect(),
        }
    }

    /// Enlarges the rectangle by `r` on both sides of every dimension
    /// (the query-MBR enlargement of Algorithm 4).
    ///
    /// # Panics
    /// Panics if `r` is negative.
    pub fn enlarge(&self, r: f64) -> Bounds {
        assert!(r >= 0.0, "enlargement must be nonnegative");
        Bounds {
            lo: self.lo.iter().map(|v| v - r).collect(),
            hi: self.hi.iter().map(|v| v + r).collect(),
        }
    }

    /// Minimum Euclidean distance from point `p` to this rectangle
    /// (`d_min(p, B)` of Roussopoulos et al., used by the hierarchical
    /// radius refinement).
    pub fn min_dist(&self, p: &[f64]) -> f64 {
        assert_eq!(p.len(), self.dims(), "point dimensionality mismatch");
        let mut acc = 0.0;
        for (x, (l, h)) in p.iter().zip(self.lo.iter().zip(&self.hi)) {
            let d = if x < l {
                l - x
            } else if x > h {
                x - h
            } else {
                0.0
            };
            acc += d * d;
        }
        acc.sqrt()
    }

    /// **Online II** (Lemma A.2): one analysis step applied to the
    /// rectangle, using only the low and high corners and the δ-split.
    ///
    /// Returns a rectangle in `R^{d/2}` containing `analyze(x)` for every
    /// `x` in `self`.
    ///
    /// # Panics
    /// Panics if the dimensionality is odd.
    pub fn analyze_online2(&self, bank: &FilterBank) -> Bounds {
        let d = bank.delta();
        if d == 0.0 {
            // Nonnegative filter (Haar): corners transform monotonically.
            return Bounds { lo: bank.analyze(&self.lo), hi: bank.analyze(&self.hi) };
        }
        // Equations 16–17.
        let lo_plus = bank.analyze_shifted(&self.lo, d);
        let hi_plus = bank.analyze_shifted(&self.hi, d);
        let lo_delta = bank.analyze_delta(&self.lo, d);
        let hi_delta = bank.analyze_delta(&self.hi, d);
        let lo: Vec<f64> = lo_plus.iter().zip(&hi_delta).map(|(a, b)| a - b).collect();
        let hi: Vec<f64> = hi_plus.iter().zip(&lo_delta).map(|(a, b)| a - b).collect();
        Bounds { lo, hi }
    }

    /// **Online I**: one analysis step applied to the rectangle by
    /// transforming all `2^d` corners and taking the tightest enclosing box.
    ///
    /// # Panics
    /// Panics if the dimensionality exceeds 24 (corner enumeration would be
    /// intractable) or is odd.
    pub fn analyze_online1(&self, bank: &FilterBank) -> Bounds {
        let d = self.dims();
        assert!(d <= 24, "Online I enumerates 2^d corners; d={d} is intractable");
        let mut corner = vec![0.0; d];
        let mut out: Option<Bounds> = None;
        for mask in 0u64..(1u64 << d) {
            for i in 0..d {
                corner[i] = if mask >> i & 1 == 1 { self.hi[i] } else { self.lo[i] };
            }
            let t = bank.analyze(&corner);
            match &mut out {
                None => out = Some(Bounds::point(&t)),
                Some(b) => b.extend(&t),
            }
        }
        out.expect("at least one corner")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    fn sample_bounds() -> Bounds {
        Bounds::new(vec![-1.0, 0.0, 2.0, -3.0], vec![1.0, 0.5, 2.0, 4.0])
    }

    /// Deterministic interior points of a rectangle for conservativeness checks.
    fn interior_points(b: &Bounds, n: usize) -> Vec<Vec<f64>> {
        let d = b.dims();
        (0..n)
            .map(|k| {
                (0..d)
                    .map(|i| {
                        // low-discrepancy-ish fractions in [0,1]
                        let t = ((k * 31 + i * 17) % 97) as f64 / 96.0;
                        b.lo()[i] + t * (b.hi()[i] - b.lo()[i])
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn point_bounds_have_zero_width() {
        let b = Bounds::point(&[1.0, 2.0]);
        assert_eq!(b.widths(), vec![0.0, 0.0]);
        assert!(b.contains(&[1.0, 2.0], 0.0));
    }

    #[test]
    fn extend_grows_monotonically() {
        let mut b = Bounds::point(&[0.0, 0.0]);
        b.extend(&[1.0, -2.0]);
        b.extend(&[-0.5, 3.0]);
        assert_eq!(b.lo(), &[-0.5, -2.0]);
        assert_eq!(b.hi(), &[1.0, 3.0]);
    }

    #[test]
    fn min_dist_inside_is_zero_outside_positive() {
        let b = sample_bounds();
        assert_eq!(b.min_dist(&[0.0, 0.25, 2.0, 0.0]), 0.0);
        let d = b.min_dist(&[2.0, 0.25, 2.0, 0.0]);
        assert!((d - 1.0).abs() < EPS);
    }

    #[test]
    fn online2_haar_contains_all_interior_transforms() {
        let bank = FilterBank::haar();
        let b = sample_bounds();
        let out = b.analyze_online2(&bank);
        for p in interior_points(&b, 64) {
            let t = bank.analyze(&p);
            assert!(out.contains(&t, EPS), "{t:?} outside {out:?}");
        }
    }

    #[test]
    fn online2_db2_contains_all_interior_transforms() {
        let bank = FilterBank::db2();
        let b = sample_bounds();
        let out = b.analyze_online2(&bank);
        for p in interior_points(&b, 64) {
            let t = bank.analyze(&p);
            assert!(out.contains(&t, EPS), "{t:?} outside {out:?}");
        }
    }

    #[test]
    fn online1_is_tighter_than_online2() {
        let bank = FilterBank::db2();
        let b = sample_bounds();
        let tight = b.analyze_online1(&bank);
        let loose = b.analyze_online2(&bank);
        assert!(loose.contains_bounds(&tight, EPS));
        // And strictly looser in at least one dimension for this filter/box.
        let lw: f64 = loose.widths().iter().sum();
        let tw: f64 = tight.widths().iter().sum();
        assert!(lw >= tw - EPS);
    }

    #[test]
    fn online1_equals_online2_for_haar() {
        // With nonnegative taps both reduce to corner transforms.
        let bank = FilterBank::haar();
        let b = sample_bounds();
        let a = b.analyze_online1(&bank);
        let c = b.analyze_online2(&bank);
        for i in 0..a.dims() {
            assert!((a.lo()[i] - c.lo()[i]).abs() < EPS);
            assert!((a.hi()[i] - c.hi()[i]).abs() < EPS);
        }
    }

    #[test]
    fn degenerate_box_transforms_to_exact_point() {
        let bank = FilterBank::db2();
        let p = [0.3, -1.0, 2.2, 0.9];
        let b = Bounds::point(&p);
        let out = b.analyze_online2(&bank);
        let exact = bank.analyze(&p);
        for i in 0..exact.len() {
            assert!((out.lo()[i] - exact[i]).abs() < EPS);
            assert!((out.hi()[i] - exact[i]).abs() < EPS);
        }
    }

    #[test]
    fn haar_width_growth_bounded_by_two() {
        // A.1: unitary rotation stretches each projection at most 2x the
        // total original extent; for Haar one step sums pairs, so each output
        // width is at most (w[2i]+w[2i+1])/√2 ≤ √2 · max-pair-width.
        let bank = FilterBank::haar();
        let b = sample_bounds();
        let out = b.analyze_online2(&bank);
        let w_in = b.widths();
        let w_out = out.widths();
        for (i, w) in w_out.iter().enumerate() {
            let pair = w_in[2 * i] + w_in[2 * i + 1];
            assert!(*w <= pair / std::f64::consts::SQRT_2 + EPS);
        }
    }

    #[test]
    fn concat_preserves_corners() {
        let a = Bounds::new(vec![0.0], vec![1.0]);
        let b = Bounds::new(vec![2.0], vec![3.0]);
        let c = a.concat(&b);
        assert_eq!(c.lo(), &[0.0, 2.0]);
        assert_eq!(c.hi(), &[1.0, 3.0]);
    }

    #[test]
    fn scale_and_enlarge() {
        let b = Bounds::new(vec![-2.0, 1.0], vec![2.0, 3.0]);
        let s = b.scale(0.5);
        assert_eq!(s.lo(), &[-1.0, 0.5]);
        assert_eq!(s.hi(), &[1.0, 1.5]);
        let e = b.enlarge(1.0);
        assert_eq!(e.lo(), &[-3.0, 0.0]);
        assert_eq!(e.hi(), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inverted bounds")]
    fn inverted_bounds_rejected() {
        let _ = Bounds::new(vec![1.0], vec![0.0]);
    }
}
