//! Sliding-window discrete Fourier transform over basic windows.
//!
//! This is the summary substrate of the StatStream baseline (Zhu & Shasha,
//! VLDB 2002): the history of a stream is divided into `n_b` *basic windows*
//! of length `bw`; per-item work accumulates the current basic window's
//! partial DFT sums (Θ(f) per item), and each time a basic window completes
//! the sliding-window DFT over the whole history is updated in Θ(f) with a
//! phase rotation — a *batch* update.
//!
//! Conventions: the unitary DFT `X_k = (1/√w) Σ_t x[t] e^{-i2πkt/w}`, so
//! Parseval gives `Σ_k |X_k|² = Σ_t x[t]²`. For a real signal, coefficients
//! `k` and `w−k` are conjugate, so the energy captured by keeping
//! `k = 1..=f/2` is doubled; Euclidean distance on the kept coefficients
//! lower-bounds `1/√2` times the distance between the z-normalized windows
//! (see [`feature_distance_lower_bound`]).

use std::collections::VecDeque;
use std::f64::consts::TAU;

use crate::complex::Complex;

/// Direct unitary DFT coefficient `X_k` of `x`.
pub fn dft_coefficient(x: &[f64], k: usize) -> Complex {
    let w = x.len() as f64;
    let mut acc = Complex::ZERO;
    for (t, &v) in x.iter().enumerate() {
        acc += Complex::cis(-TAU * k as f64 * t as f64 / w) * v;
    }
    acc.scale(1.0 / w.sqrt())
}

/// The z-normalized DFT feature of a full window, computed directly; used
/// by tests and the linear-scan ground truth.
///
/// Returns `f` real dimensions: `[Re X̂_1, Im X̂_1, …, Re X̂_{f/2}, Im X̂_{f/2}]`
/// where `X̂` is the unitary DFT of the z-normalized window. Returns `None`
/// if the window has zero variance (z-norm undefined).
///
/// # Panics
/// Panics if `f` is zero or odd, or `f/2` ≥ `x.len()/2`.
pub fn znorm_dft_feature(x: &[f64], f: usize) -> Option<Vec<f64>> {
    assert!(f > 0 && f.is_multiple_of(2), "feature dimensionality must be even and positive");
    assert!(f / 2 < x.len() / 2 + 1, "too many coefficients for window length");
    let w = x.len() as f64;
    let mean = x.iter().sum::<f64>() / w;
    let energy: f64 = x.iter().map(|v| (v - mean) * (v - mean)).sum();
    if energy <= 0.0 {
        return None;
    }
    let scale = 1.0 / energy.sqrt();
    let mut out = Vec::with_capacity(f);
    for k in 1..=f / 2 {
        // Mean subtraction only affects k = 0, so transform x directly.
        let c = dft_coefficient(x, k).scale(scale);
        out.push(c.re);
        out.push(c.im);
    }
    Some(out)
}

/// Euclidean distance between two real signals.
pub fn l2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Lower bound on the distance between two *z-normalized* windows implied by
/// their DFT features: `√2 · ‖feat(x) − feat(y)‖ ≤ ‖x̂ − ŷ‖`.
pub fn feature_distance_lower_bound(fa: &[f64], fb: &[f64]) -> f64 {
    std::f64::consts::SQRT_2 * l2(fa, fb)
}

/// A sliding-window DFT maintained incrementally over basic windows.
///
/// Per-item cost Θ(f); per-basic-window cost Θ(f) extra. Emits a fresh
/// feature each time a basic window completes *and* the full sliding window
/// has been observed.
#[derive(Debug, Clone)]
pub struct SlidingDft {
    window: usize,
    basic: usize,
    n_basic: usize,
    half_f: usize,
    /// e^{-i 2π k / w} for each kept frequency k, split into re/im planes so
    /// the per-item loop is a strictly element-wise kernel over flat `f64`
    /// slices the optimizer can vectorize.
    omega_item_re: Vec<f64>,
    omega_item_im: Vec<f64>,
    /// e^{+i 2π k·bw / w}: rotation applied when the window slides by one
    /// basic window.
    omega_shift: Vec<Complex>,
    /// e^{-i 2π k·(n_b−1)·bw / w}: phase of the newest basic window.
    omega_newest: Vec<Complex>,
    /// Partial sums of the currently-filling basic window (position-local
    /// phases), in the same structure-of-arrays layout as the omegas.
    cur_partial_re: Vec<f64>,
    cur_partial_im: Vec<f64>,
    cur_phase_re: Vec<f64>,
    cur_phase_im: Vec<f64>,
    cur_len: usize,
    cur_sum: f64,
    cur_sumsq: f64,
    /// Completed basic windows, oldest first.
    partials: VecDeque<Vec<Complex>>,
    moments: VecDeque<(f64, f64)>,
    /// Combined unnormalized sums Σ_j phase_j · P_{j,k} over completed
    /// basic windows.
    combined: Vec<Complex>,
    total_sum: f64,
    total_sumsq: f64,
}

/// A z-normalized DFT feature together with the window moments it was
/// derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct DftFeature {
    /// Real feature dimensions `[Re X̂_1, Im X̂_1, …]`, or `None` when the
    /// window had zero variance.
    pub coords: Option<Vec<f64>>,
    /// Window mean.
    pub mean: f64,
    /// Window centered energy `Σ (x−μ)²`.
    pub energy: f64,
}

impl SlidingDft {
    /// Creates a sliding DFT over a window of `n_basic` basic windows of
    /// length `basic`, keeping `f` real feature dimensions (`f/2` complex
    /// coefficients, `k = 1..=f/2`).
    ///
    /// # Panics
    /// Panics if any parameter is zero, `f` is odd, or `f/2 ≥ window/2`.
    pub fn new(basic: usize, n_basic: usize, f: usize) -> Self {
        assert!(basic > 0 && n_basic > 0, "window dimensions must be positive");
        assert!(f > 0 && f.is_multiple_of(2), "feature dimensionality must be even and positive");
        let window = basic * n_basic;
        assert!(f / 2 < window / 2 + 1, "too many coefficients for window length");
        let half_f = f / 2;
        let omega_item: Vec<Complex> =
            (1..=half_f).map(|k| Complex::cis(-TAU * k as f64 / window as f64)).collect();
        let omega_item_re: Vec<f64> = omega_item.iter().map(|c| c.re).collect();
        let omega_item_im: Vec<f64> = omega_item.iter().map(|c| c.im).collect();
        let omega_shift: Vec<Complex> = (1..=half_f)
            .map(|k| Complex::cis(TAU * k as f64 * basic as f64 / window as f64))
            .collect();
        let omega_newest: Vec<Complex> = (1..=half_f)
            .map(|k| Complex::cis(-TAU * k as f64 * ((n_basic - 1) * basic) as f64 / window as f64))
            .collect();
        SlidingDft {
            window,
            basic,
            n_basic,
            half_f,
            omega_item_re,
            omega_item_im,
            omega_shift,
            omega_newest,
            cur_partial_re: vec![0.0; half_f],
            cur_partial_im: vec![0.0; half_f],
            cur_phase_re: vec![1.0; half_f],
            cur_phase_im: vec![0.0; half_f],
            cur_len: 0,
            cur_sum: 0.0,
            cur_sumsq: 0.0,
            partials: VecDeque::new(),
            moments: VecDeque::new(),
            combined: vec![Complex::ZERO; half_f],
            total_sum: 0.0,
            total_sumsq: 0.0,
        }
    }

    /// Sliding window length `w`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Basic window length `bw`.
    pub fn basic(&self) -> usize {
        self.basic
    }

    /// Appends one value. Returns a feature when this value completes a
    /// basic window and the full sliding window has been seen.
    pub fn push(&mut self, x: f64) -> Option<DftFeature> {
        // Accumulate into the current basic window with position-local
        // phase. This is the Θ(f)-per-item hot loop; the arithmetic is the
        // exact complex form `partial += phase·x; phase *= ω_item`, written
        // element-wise over flat re/im planes so the optimizer can
        // vectorize it (no reductions, so results are bit-identical to the
        // array-of-structs loop by construction).
        let planes = self
            .cur_partial_re
            .iter_mut()
            .zip(self.cur_partial_im.iter_mut())
            .zip(self.cur_phase_re.iter_mut().zip(self.cur_phase_im.iter_mut()))
            .zip(self.omega_item_re.iter().zip(self.omega_item_im.iter()));
        for (((pr, pi), (hr, hi)), (&wr, &wi)) in planes {
            *pr += *hr * x;
            *pi += *hi * x;
            let rotated_re = *hr * wr - *hi * wi;
            let rotated_im = *hr * wi + *hi * wr;
            *hr = rotated_re;
            *hi = rotated_im;
        }
        self.cur_sum += x;
        self.cur_sumsq += x * x;
        self.cur_len += 1;
        if self.cur_len < self.basic {
            return None;
        }
        // Basic window complete (cold path, once per `bw` items): rebuild
        // the complex partial vector from the planes and slide.
        let cur: Vec<Complex> = self
            .cur_partial_re
            .iter()
            .zip(&self.cur_partial_im)
            .map(|(&re, &im)| Complex::new(re, im))
            .collect();
        if self.partials.len() == self.n_basic {
            let old = self.partials.pop_front().expect("nonempty");
            let (osum, osumsq) = self.moments.pop_front().expect("nonempty");
            self.total_sum -= osum;
            self.total_sumsq -= osumsq;
            for k in 0..self.half_f {
                // Remove the oldest window (phase 1, position 0), then
                // rotate everything one basic window towards the past and
                // add the newest at position n_b − 1.
                self.combined[k] = (self.combined[k] - old[k]) * self.omega_shift[k]
                    + self.omega_newest[k] * cur[k];
            }
        } else {
            let j = self.partials.len();
            for k in 0..self.half_f {
                let phase = Complex::cis(
                    -TAU * (k + 1) as f64 * (j * self.basic) as f64 / self.window as f64,
                );
                self.combined[k] += phase * cur[k];
            }
        }
        self.total_sum += self.cur_sum;
        self.total_sumsq += self.cur_sumsq;
        self.partials.push_back(cur);
        self.moments.push_back((self.cur_sum, self.cur_sumsq));
        self.cur_len = 0;
        self.cur_sum = 0.0;
        self.cur_sumsq = 0.0;
        self.cur_partial_re.fill(0.0);
        self.cur_partial_im.fill(0.0);
        self.cur_phase_re.fill(1.0);
        self.cur_phase_im.fill(0.0);
        if self.partials.len() < self.n_basic {
            return None;
        }
        // Emit z-normalized feature.
        let w = self.window as f64;
        let mean = self.total_sum / w;
        let energy = (self.total_sumsq - w * mean * mean).max(0.0);
        let coords = if energy > 0.0 {
            let scale = 1.0 / (w.sqrt() * energy.sqrt());
            let mut out = Vec::with_capacity(self.half_f * 2);
            for k in 0..self.half_f {
                let c = self.combined[k].scale(scale);
                out.push(c.re);
                out.push(c.im);
            }
            Some(out)
        } else {
            None
        };
        Some(DftFeature { coords, mean, energy })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-8;

    fn ramp_sin(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.37).sin() * 2.0 + i as f64 * 0.01).collect()
    }

    #[test]
    fn dft_parseval() {
        let x = ramp_sin(16);
        let energy_time: f64 = x.iter().map(|v| v * v).sum();
        let energy_freq: f64 = (0..16).map(|k| dft_coefficient(&x, k).norm_sqr()).sum();
        assert!((energy_time - energy_freq).abs() < EPS);
    }

    #[test]
    fn dft_dc_coefficient_is_scaled_mean() {
        let x = [2.0, 2.0, 2.0, 2.0];
        let c = dft_coefficient(&x, 0);
        assert!((c.re - 4.0).abs() < EPS); // (1/√4)·8 = 4
        assert!(c.im.abs() < EPS);
    }

    #[test]
    fn znorm_feature_invariant_to_offset_and_scale() {
        let x = ramp_sin(32);
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 100.0).collect();
        let fx = znorm_dft_feature(&x, 4).unwrap();
        let fy = znorm_dft_feature(&y, 4).unwrap();
        for (a, b) in fx.iter().zip(&fy) {
            assert!((a - b).abs() < EPS, "{fx:?} vs {fy:?}");
        }
    }

    #[test]
    fn znorm_feature_none_for_constant() {
        assert!(znorm_dft_feature(&[5.0; 16], 2).is_none());
    }

    #[test]
    fn sliding_dft_matches_direct() {
        let data = ramp_sin(96);
        let mut sliding = SlidingDft::new(8, 4, 4); // w = 32
        let mut emitted = 0;
        for (i, &x) in data.iter().enumerate() {
            if let Some(feat) = sliding.push(x) {
                emitted += 1;
                let start = i + 1 - 32;
                let direct = znorm_dft_feature(&data[start..=i], 4).unwrap();
                let got = feat.coords.as_ref().unwrap();
                for (a, b) in got.iter().zip(&direct) {
                    assert!((a - b).abs() < 1e-7, "at i={i}: {got:?} vs {direct:?}");
                }
            }
        }
        // Windows complete at i = 31, 39, 47, ..., 95.
        assert_eq!(emitted, (96 - 32) / 8 + 1);
    }

    #[test]
    fn sliding_dft_moments_match_window() {
        let data = ramp_sin(64);
        let mut sliding = SlidingDft::new(4, 4, 2); // w = 16
        for (i, &x) in data.iter().enumerate() {
            if let Some(feat) = sliding.push(x) {
                let start = i + 1 - 16;
                let win = &data[start..=i];
                let mean = win.iter().sum::<f64>() / 16.0;
                let energy: f64 = win.iter().map(|v| (v - mean) * (v - mean)).sum();
                assert!((feat.mean - mean).abs() < EPS);
                assert!((feat.energy - energy).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn feature_distance_lower_bound_holds() {
        let x = ramp_sin(32);
        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.9).cos() * 1.5).collect();
        // z-normalize both.
        let zn = |v: &[f64]| -> Vec<f64> {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            let e: f64 = v.iter().map(|a| (a - m) * (a - m)).sum::<f64>().sqrt();
            v.iter().map(|a| (a - m) / e).collect()
        };
        let zx = zn(&x);
        let zy = zn(&y);
        let true_dist = l2(&zx, &zy);
        for f in [2usize, 4, 8] {
            let fx = znorm_dft_feature(&x, f).unwrap();
            let fy = znorm_dft_feature(&y, f).unwrap();
            let lb = feature_distance_lower_bound(&fx, &fy);
            assert!(lb <= true_dist + EPS, "f={f}: {lb} > {true_dist}");
        }
    }

    #[test]
    fn sliding_dft_constant_window_yields_none_coords() {
        let mut sliding = SlidingDft::new(4, 2, 2);
        let mut last = None;
        for _ in 0..8 {
            if let Some(f) = sliding.push(7.0) {
                last = Some(f);
            }
        }
        let f = last.expect("one full window");
        assert!(f.coords.is_none());
        assert!((f.mean - 7.0).abs() < EPS);
    }
}
