//! Transform substrate for the Stardust stream-monitoring framework.
//!
//! This crate implements, from scratch, the signal-processing machinery the
//! paper *A Unified Framework for Monitoring Data Streams in Real Time*
//! (Bulut & Singh, ICDE 2005) depends on:
//!
//! * [`haar`] — the Haar discrete wavelet transform, its approximation
//!   pyramid, and the **exact incremental half-merge** of Lemma A.1: the
//!   approximation coefficients of a window can be computed in Θ(f) from the
//!   approximation coefficients of its two halves.
//! * [`filter`] — general two-channel filter banks (circular convolution +
//!   downsampling) including the δ-split of Lemma A.2 that extends the MBR
//!   transform to filters with negative taps.
//! * [`mbr_transform`] — the two approximate MBR transforms of Appendix A:
//!   *Online I* (corner enumeration, Θ(2^f'·f), tightest) and *Online II*
//!   (low/high corners with δ-split, Θ(f), looser but fast).
//! * [`dft`] — the sliding-window discrete Fourier transform maintained over
//!   basic windows, the substrate of the StatStream baseline.
//! * [`complex`] — a minimal complex-number type used by the DFT.
//!
//! All transforms are deterministic and allocation-conscious: the hot merge
//! paths (`merge_halves`, `Bounds` merges) reuse caller-provided buffers
//! where it matters.

pub mod complex;
pub mod dft;
pub mod filter;
pub mod haar;
pub mod mbr_transform;
pub mod wavedec;

pub use complex::Complex;
pub use filter::FilterBank;
pub use mbr_transform::Bounds;
pub use wavedec::{wavedec, waverec, Wavelet};
