//! Multi-level wavelet decomposition for general orthonormal filter banks
//! (Mallat's pyramid algorithm — the paper's reference \[13\]).
//!
//! The Stardust summarizer itself only needs Haar (whose half-merge is
//! exact), but Appendix A states Lemma A.2 for *arbitrary* low-pass
//! decomposition filters; this module provides the Daubechies family and a
//! full analysis/synthesis pyramid with perfect reconstruction, so the
//! δ-split machinery is exercised against real non-trivial filters.
//!
//! Conventions: periodic (circular) signal extension, orthonormal filters
//! (`Σ h̃ₖ² = 1`, `Σ h̃ₖ = √2`), high-pass by the alternating-flip QMF
//! relation `g̃ₖ = (−1)ᵏ·h̃_{L−1−k}`.

use crate::filter::FilterBank;

/// The Daubechies orthonormal low-pass decomposition filters D2 (Haar)
/// through D8 (four vanishing moments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wavelet {
    /// Haar / Daubechies-2.
    Haar,
    /// Daubechies-4 (2 vanishing moments).
    Db2,
    /// Daubechies-6 (3 vanishing moments).
    Db3,
    /// Daubechies-8 (4 vanishing moments).
    Db4,
}

impl Wavelet {
    /// The low-pass decomposition taps.
    pub fn lowpass(self) -> Vec<f64> {
        match self {
            Wavelet::Haar => vec![std::f64::consts::FRAC_1_SQRT_2; 2],
            Wavelet::Db2 => {
                let s3 = 3f64.sqrt();
                let n = 4.0 * 2f64.sqrt();
                vec![(1.0 + s3) / n, (3.0 + s3) / n, (3.0 - s3) / n, (1.0 - s3) / n]
            }
            // Standard published coefficients (Daubechies, "Ten Lectures").
            Wavelet::Db3 => vec![
                0.332670552950957,
                0.806891509313339,
                0.459877502119331,
                -0.135011020010391,
                -0.085441273882241,
                0.035226291882101,
            ],
            Wavelet::Db4 => vec![
                0.230377813308855,
                0.714846570552542,
                0.630880767929590,
                -0.027983769416984,
                -0.187034811718881,
                0.030841381835987,
                0.032883011666983,
                -0.010597401784997,
            ],
        }
    }

    /// The matching [`FilterBank`].
    pub fn bank(self) -> FilterBank {
        FilterBank::from_taps(self.lowpass())
    }

    /// The high-pass decomposition taps via the alternating-flip QMF
    /// relation.
    pub fn highpass(self) -> Vec<f64> {
        let h = self.lowpass();
        let l = h.len();
        (0..l).map(|k| if k % 2 == 0 { h[l - 1 - k] } else { -h[l - 1 - k] }).collect()
    }
}

/// A full multi-level decomposition: the final approximation plus detail
/// bands from coarsest to finest.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Approximation coefficients at the deepest level.
    pub approx: Vec<f64>,
    /// Detail bands, coarsest first.
    pub details: Vec<Vec<f64>>,
}

impl Decomposition {
    /// Total coefficient count (equals the input length).
    pub fn len(&self) -> usize {
        self.approx.len() + self.details.iter().map(Vec::len).sum::<usize>()
    }

    /// `true` if there are no coefficients.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattens to the ordered coefficient vector
    /// `[approx, coarsest detail, …, finest detail]`.
    pub fn ordered(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        out.extend_from_slice(&self.approx);
        for d in &self.details {
            out.extend_from_slice(d);
        }
        out
    }

    /// Total energy of the coefficients.
    pub fn energy(&self) -> f64 {
        self.ordered().iter().map(|c| c * c).sum()
    }
}

fn convolve_down(x: &[f64], taps: &[f64]) -> Vec<f64> {
    let n = x.len();
    (0..n / 2)
        .map(|i| taps.iter().enumerate().map(|(k, &h)| h * x[(2 * i + k) % n]).sum())
        .collect()
}

/// `levels`-deep wavelet decomposition of `x` with periodic extension.
///
/// # Panics
/// Panics if `x.len()` is not a power of two, `levels` is zero, or
/// `x.len() < 2^levels`.
pub fn wavedec(x: &[f64], wavelet: Wavelet, levels: usize) -> Decomposition {
    assert!(x.len().is_power_of_two(), "signal length must be a power of two");
    assert!(levels >= 1, "need at least one level");
    assert!(x.len() >= 1 << levels, "signal too short for {levels} levels");
    let lo = wavelet.lowpass();
    let hi = wavelet.highpass();
    let mut approx = x.to_vec();
    let mut details_fine_first = Vec::with_capacity(levels);
    for _ in 0..levels {
        let d = convolve_down(&approx, &hi);
        let a = convolve_down(&approx, &lo);
        details_fine_first.push(d);
        approx = a;
    }
    details_fine_first.reverse();
    Decomposition { approx, details: details_fine_first }
}

/// Inverse of [`wavedec`]: perfect reconstruction for orthonormal banks.
///
/// # Panics
/// Panics if the band sizes are inconsistent.
pub fn waverec(dec: &Decomposition, wavelet: Wavelet) -> Vec<f64> {
    let lo = wavelet.lowpass();
    let hi = wavelet.highpass();
    let mut approx = dec.approx.clone();
    for detail in &dec.details {
        assert_eq!(detail.len(), approx.len(), "band size mismatch");
        let n = approx.len() * 2;
        // Transposed (adjoint) periodic analysis: for orthonormal banks the
        // synthesis operator is the adjoint of the analysis operator.
        let mut next = vec![0.0; n];
        for i in 0..approx.len() {
            for (k, &h) in lo.iter().enumerate() {
                next[(2 * i + k) % n] += h * approx[i];
            }
            for (k, &g) in hi.iter().enumerate() {
                next[(2 * i + k) % n] += g * detail[i];
            }
        }
        approx = next;
    }
    approx
}

/// Fraction of the (centered) signal energy carried by the `keep` leading
/// ordered coefficients — the "first f coefficients retain most of the
/// energy" measurement of §4.
///
/// # Panics
/// Panics on invalid lengths (see [`wavedec`]).
pub fn leading_energy_fraction(x: &[f64], wavelet: Wavelet, keep: usize) -> f64 {
    let levels = x.len().trailing_zeros() as usize;
    let dec = wavedec(x, wavelet, levels.max(1));
    let ordered = dec.ordered();
    let total: f64 = ordered.iter().map(|c| c * c).sum();
    if total == 0.0 {
        return 1.0;
    }
    let lead: f64 = ordered.iter().take(keep).map(|c| c * c).sum();
    lead / total
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    fn sample(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.31).sin() * 3.0 + (i as f64 * 0.05).cos()).collect()
    }

    #[test]
    fn filters_are_orthonormal() {
        for w in [Wavelet::Haar, Wavelet::Db2, Wavelet::Db3, Wavelet::Db4] {
            let h = w.lowpass();
            let norm: f64 = h.iter().map(|c| c * c).sum();
            let sum: f64 = h.iter().sum();
            assert!((norm - 1.0).abs() < 1e-10, "{w:?}: ‖h‖² = {norm}");
            assert!((sum - 2f64.sqrt()).abs() < 1e-10, "{w:?}: Σh = {sum}");
            // Double-shift orthogonality: Σ h[k]·h[k+2m] = 0 for m ≠ 0.
            for m in 1..h.len() / 2 {
                let dot: f64 = (0..h.len() - 2 * m).map(|k| h[k] * h[k + 2 * m]).sum();
                assert!(dot.abs() < 1e-10, "{w:?}: shift {m} dot {dot}");
            }
        }
    }

    #[test]
    fn highpass_is_orthogonal_to_lowpass() {
        for w in [Wavelet::Haar, Wavelet::Db2, Wavelet::Db3, Wavelet::Db4] {
            let h = w.lowpass();
            let g = w.highpass();
            let dot: f64 = h.iter().zip(&g).map(|(a, b)| a * b).sum();
            assert!(dot.abs() < 1e-10, "{w:?}: <h,g> = {dot}");
            let gsum: f64 = g.iter().sum();
            assert!(gsum.abs() < 1e-10, "{w:?}: Σg = {gsum} (vanishing moment)");
        }
    }

    #[test]
    fn perfect_reconstruction_all_wavelets() {
        let x = sample(64);
        for w in [Wavelet::Haar, Wavelet::Db2, Wavelet::Db3, Wavelet::Db4] {
            for levels in 1..=4 {
                let dec = wavedec(&x, w, levels);
                let back = waverec(&dec, w);
                for (a, b) in x.iter().zip(&back) {
                    assert!((a - b).abs() < 1e-8, "{w:?} at {levels} levels");
                }
            }
        }
    }

    #[test]
    fn energy_preserved() {
        let x = sample(32);
        let e: f64 = x.iter().map(|v| v * v).sum();
        for w in [Wavelet::Haar, Wavelet::Db2, Wavelet::Db4] {
            let dec = wavedec(&x, w, 3);
            assert!((dec.energy() - e).abs() < 1e-8 * (1.0 + e), "{w:?}");
        }
    }

    #[test]
    fn haar_matches_dedicated_implementation() {
        let x = sample(16);
        let dec = wavedec(&x, Wavelet::Haar, 4);
        let reference = crate::haar::dwt(&x);
        let ordered = dec.ordered();
        assert_eq!(ordered.len(), reference.len());
        for (a, b) in ordered.iter().zip(&reference) {
            assert!((a - b).abs() < EPS, "{ordered:?} vs {reference:?}");
        }
    }

    #[test]
    fn smooth_signals_compact_into_leading_coefficients() {
        // §4's premise: for smooth series a handful of coefficients carry
        // the energy. (Periodic extension means the probe signal must be
        // periodic itself — one full sine cycle plus an offset.)
        let smooth: Vec<f64> =
            (0..64).map(|i| 10.0 + 4.0 * (i as f64 / 64.0 * std::f64::consts::TAU).sin()).collect();
        for w in [Wavelet::Haar, Wavelet::Db2, Wavelet::Db4] {
            let frac = leading_energy_fraction(&smooth, w, 8);
            assert!(frac > 0.99, "{w:?}: leading fraction {frac}");
        }
        // White-noise-like content does NOT compact: the leading fraction
        // stays near keep/len.
        let noisy: Vec<f64> = (0..64)
            .map(|i| if (i * 2654435761usize).is_multiple_of(2) { 1.0 } else { -1.0 })
            .collect();
        let frac = leading_energy_fraction(&noisy, Wavelet::Haar, 8);
        assert!(frac < 0.6, "noise should not compact: {frac}");
    }

    #[test]
    fn decomposition_shapes() {
        let x = sample(32);
        let dec = wavedec(&x, Wavelet::Db2, 3);
        assert_eq!(dec.approx.len(), 4);
        assert_eq!(dec.details.iter().map(Vec::len).collect::<Vec<_>>(), vec![4, 8, 16]);
        assert_eq!(dec.len(), 32);
        assert!(!dec.is_empty());
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn too_many_levels_rejected() {
        wavedec(&[1.0, 2.0, 3.0, 4.0], Wavelet::Haar, 3);
    }
}
