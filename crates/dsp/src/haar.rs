//! The Haar discrete wavelet transform and its incremental half-merge.
//!
//! The Stardust summarizer keeps, for every (stream, level) pair, the first
//! `f` *approximation* coefficients of the Haar DWT of the current sliding
//! window. Lemma A.1 of the paper shows these can be computed **exactly** in
//! Θ(f) from the approximation coefficients of the window's two halves; this
//! module implements both the direct transform (used by tests and the batch
//! algorithm) and the incremental merge (used by the online algorithm).
//!
//! Coefficient conventions: the orthonormal Haar pyramid
//!
//! ```text
//! a⁰ = x
//! aˡ[n] = (aˡ⁻¹[2n] + aˡ⁻¹[2n+1]) / √2      (approximation)
//! dˡ[n] = (aˡ⁻¹[2n] − aˡ⁻¹[2n+1]) / √2      (detail)
//! ```
//!
//! The full ordered transform is `[a^J, d^J, d^{J-1}, …, d^1]`, which is an
//! orthonormal change of basis (energy preserving). The *approximation at
//! keep-length f* is the vector `a^l` with `len(a^l) = f`; it equals the
//! first `f` coefficients of the ordered transform restricted to the
//! approximation subspace, and Euclidean distance between two windows'
//! approximations **lower-bounds** the distance between the windows
//! (orthogonal projection), which is what makes range queries on the index
//! free of false dismissals.

/// `1/√2`, the Haar analysis filter tap.
pub const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Width of the chunks the pairwise kernels process per iteration: one
/// 256-bit vector of `f64` outputs, matching the geometry scan primitives.
const LANES: usize = 4;

/// Writes `(src[2i] + src[2i+1]) * INV_SQRT2` into `out[i]` — one Haar
/// averaging step as a strictly element-wise kernel. The body is processed
/// in fixed-width chunks (`LANES` outputs, `2·LANES` inputs per iteration)
/// so the optimizer can vectorize it; there is no reduction, so the result
/// is bit-identical to the naive pair loop by construction.
#[inline]
fn pairwise_avg_into(src: &[f64], out: &mut [f64]) {
    debug_assert_eq!(src.len(), out.len() * 2);
    let (src_c, src_t) = src.as_chunks::<{ 2 * LANES }>();
    let (out_c, out_t) = out.as_chunks_mut::<LANES>();
    for (o, s) in out_c.iter_mut().zip(src_c) {
        for i in 0..LANES {
            o[i] = (s[2 * i] + s[2 * i + 1]) * INV_SQRT2;
        }
    }
    for (o, p) in out_t.iter_mut().zip(src_t.chunks_exact(2)) {
        *o = (p[0] + p[1]) * INV_SQRT2;
    }
}

/// Differencing twin of [`pairwise_avg_into`]: `(src[2i] − src[2i+1]) · 1/√2`.
#[inline]
fn pairwise_diff_into(src: &[f64], out: &mut [f64]) {
    debug_assert_eq!(src.len(), out.len() * 2);
    let (src_c, src_t) = src.as_chunks::<{ 2 * LANES }>();
    let (out_c, out_t) = out.as_chunks_mut::<LANES>();
    for (o, s) in out_c.iter_mut().zip(src_c) {
        for i in 0..LANES {
            o[i] = (s[2 * i] - s[2 * i + 1]) * INV_SQRT2;
        }
    }
    for (o, p) in out_t.iter_mut().zip(src_t.chunks_exact(2)) {
        *o = (p[0] - p[1]) * INV_SQRT2;
    }
}

/// Returns `true` if `n` is a power of two (and nonzero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// One in-place Haar averaging step: maps a slice of even length `2m` to its
/// `m` approximation coefficients, returned as a new vector.
///
/// # Panics
/// Panics if `x.len()` is odd or zero.
pub fn averaging_step(x: &[f64]) -> Vec<f64> {
    assert!(
        !x.is_empty() && x.len().is_multiple_of(2),
        "averaging step needs even, nonzero length"
    );
    let mut out = vec![0.0; x.len() / 2];
    pairwise_avg_into(x, &mut out);
    out
}

/// One Haar differencing step: the `m` detail coefficients of a slice of
/// even length `2m`.
///
/// # Panics
/// Panics if `x.len()` is odd or zero.
pub fn differencing_step(x: &[f64]) -> Vec<f64> {
    assert!(
        !x.is_empty() && x.len().is_multiple_of(2),
        "differencing step needs even, nonzero length"
    );
    let mut out = vec![0.0; x.len() / 2];
    pairwise_diff_into(x, &mut out);
    out
}

/// The full ordered Haar DWT `[a^J, d^J, d^{J-1}, …, d^1]` of a signal whose
/// length is a power of two.
///
/// The transform is orthonormal: `‖dwt(x)‖₂ = ‖x‖₂` (Parseval).
///
/// # Panics
/// Panics if `x.len()` is not a power of two.
pub fn dwt(x: &[f64]) -> Vec<f64> {
    assert!(is_pow2(x.len()), "Haar DWT needs a power-of-two length, got {}", x.len());
    let mut details: Vec<Vec<f64>> = Vec::new();
    let mut approx = x.to_vec();
    while approx.len() > 1 {
        details.push(differencing_step(&approx));
        approx = averaging_step(&approx);
    }
    let mut out = Vec::with_capacity(x.len());
    out.extend_from_slice(&approx);
    for d in details.iter().rev() {
        out.extend_from_slice(d);
    }
    out
}

/// Inverse of [`dwt`]: reconstructs the signal from the ordered coefficient
/// vector.
///
/// # Panics
/// Panics if `coeffs.len()` is not a power of two.
pub fn idwt(coeffs: &[f64]) -> Vec<f64> {
    assert!(is_pow2(coeffs.len()), "Haar IDWT needs a power-of-two length");
    let mut approx = vec![coeffs[0]];
    let mut offset = 1;
    while offset < coeffs.len() {
        let detail = &coeffs[offset..offset + approx.len()];
        let mut next = Vec::with_capacity(approx.len() * 2);
        for (a, d) in approx.iter().zip(detail) {
            next.push((a + d) * INV_SQRT2);
            next.push((a - d) * INV_SQRT2);
        }
        offset += approx.len();
        approx = next;
    }
    approx
}

/// The `keep` Haar approximation coefficients of `x`: repeated averaging
/// steps until the vector has length `keep`.
///
/// This is the DWT feature Stardust maintains per level: the projection of
/// the window onto the coarsest `keep` scaling functions.
///
/// # Panics
/// Panics if `x.len()` or `keep` is not a power of two, or `keep > x.len()`.
pub fn approx(x: &[f64], keep: usize) -> Vec<f64> {
    assert!(is_pow2(x.len()), "signal length must be a power of two");
    assert!(is_pow2(keep), "keep length must be a power of two");
    assert!(keep <= x.len(), "cannot keep more coefficients than samples");
    let mut a = x.to_vec();
    while a.len() > keep {
        a = averaging_step(&a);
    }
    a
}

/// **Lemma A.1** — exact incremental merge.
///
/// Given the `f` approximation coefficients of the left half
/// `x[t−w+1 : t−w/2]` and the right half `x[t−w/2+1 : t]`, returns the `f`
/// approximation coefficients of the full window `x[t−w+1 : t]`.
///
/// Concatenating the halves' approximations gives the full window's
/// approximation at length `2f` (translates of the same scaling function);
/// one more averaging step brings it to length `f`. Cost Θ(f).
///
/// # Panics
/// Panics if the halves have different lengths or are empty.
pub fn merge_halves(left: &[f64], right: &[f64]) -> Vec<f64> {
    assert_eq!(left.len(), right.len(), "halves must have equal coefficient counts");
    assert!(!left.is_empty(), "halves must be nonempty");
    let mut out = vec![0.0; left.len()];
    merge_halves_into(left, right, &mut out);
    out
}

/// Merge variant that writes into a caller-provided buffer, avoiding
/// allocation on the per-item hot path of the online summarizer.
///
/// # Panics
/// Panics if `out.len() != left.len()` or the halves differ in length.
pub fn merge_halves_into(left: &[f64], right: &[f64], out: &mut [f64]) {
    assert_eq!(left.len(), right.len(), "halves must have equal coefficient counts");
    assert_eq!(out.len(), left.len(), "output buffer must match coefficient count");
    let f = left.len();
    // Averaging the concatenation [left, right] pairs elements within each
    // half first (2f -> f), never across the seam, because f is a power of
    // two: pairs are (left[0],left[1]), ..., (right[f-2],right[f-1]) — except
    // at f = 1, where the single pair spans the seam.
    if f == 1 {
        out[0] = (left[0] + right[0]) * INV_SQRT2;
        return;
    }
    let half = f / 2;
    pairwise_avg_into(left, &mut out[..half]);
    pairwise_avg_into(right, &mut out[half..]);
}

/// Energy (squared L2 norm) of a coefficient vector.
///
/// The squares are formed in fixed-width chunks (vectorizable) and then
/// accumulated strictly in element order, so the value is bit-identical to
/// the naive running sum.
pub fn energy(x: &[f64]) -> f64 {
    let (chunks, tail) = x.as_chunks::<LANES>();
    let mut acc = 0.0;
    for c in chunks {
        let mut sq = [0.0; LANES];
        for i in 0..LANES {
            sq[i] = c[i] * c[i];
        }
        for s in sq {
            acc += s;
        }
    }
    for v in tail {
        acc += v * v;
    }
    acc
}

/// The value every approximation coefficient takes for the constant signal
/// `1` of length `w` kept at `keep` coefficients: `√(w / keep)`.
///
/// Used to z-normalize DWT features analytically: subtracting the window
/// mean shifts each approximation coefficient by `μ·√(w/keep)`.
#[inline]
pub fn constant_coefficient(w: usize, keep: usize) -> f64 {
    (w as f64 / keep as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < EPS, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn dwt_of_known_signal() {
        // x = [1,1,1,1] -> a^2 = [2], no detail energy.
        let c = dwt(&[1.0, 1.0, 1.0, 1.0]);
        assert_close(&c, &[2.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn dwt_idwt_roundtrip() {
        let x = [3.0, -1.0, 4.0, 1.0, -5.0, 9.0, 2.0, -6.0];
        let back = idwt(&dwt(&x));
        assert_close(&back, &x);
    }

    #[test]
    fn dwt_preserves_energy() {
        let x = [0.5, 2.5, -1.5, 7.0, 3.25, -2.0, 0.0, 1.0];
        assert!((energy(&dwt(&x)) - energy(&x)).abs() < EPS);
    }

    #[test]
    fn approx_full_length_is_identity() {
        let x = [2.0, 4.0, 6.0, 8.0];
        assert_close(&approx(&x, 4), &x);
    }

    #[test]
    fn approx_one_is_scaled_sum() {
        let x = [1.0, 2.0, 3.0, 4.0];
        // Two averaging steps: sum / 2^(levels/2)... a^2 = sum / 2.
        assert_close(&approx(&x, 1), &[5.0]);
    }

    #[test]
    fn merge_matches_direct_approx() {
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin() * 3.0 + i as f64).collect();
        for f in [1usize, 2, 4, 8] {
            let left = approx(&x[..8], f);
            let right = approx(&x[8..], f);
            let merged = merge_halves(&left, &right);
            let direct = approx(&x, f);
            assert_close(&merged, &direct);
        }
    }

    #[test]
    fn merge_into_matches_merge() {
        let left = [1.0, 2.0, 3.0, 4.0];
        let right = [5.0, 6.0, 7.0, 8.0];
        let alloc = merge_halves(&left, &right);
        let mut buf = [0.0; 4];
        merge_halves_into(&left, &right, &mut buf);
        assert_close(&alloc, &buf);
    }

    #[test]
    fn approximation_distance_lower_bounds_signal_distance() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).cos()).collect();
        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.31).sin() * 1.2).collect();
        let d_signal = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        for f in [1usize, 2, 4, 8, 16, 32] {
            let ax = approx(&x, f);
            let ay = approx(&y, f);
            let d_approx = ax.iter().zip(&ay).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            assert!(
                d_approx <= d_signal + EPS,
                "f={f}: approx distance {d_approx} exceeds signal distance {d_signal}"
            );
        }
    }

    #[test]
    fn constant_coefficient_matches_transform() {
        for (w, keep) in [(16usize, 4usize), (8, 1), (32, 8)] {
            let ones = vec![1.0; w];
            let a = approx(&ones, keep);
            for c in a {
                assert!((c - constant_coefficient(w, keep)).abs() < EPS);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn dwt_rejects_non_pow2() {
        let _ = dwt(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn ordered_transform_layout() {
        // For [a, b]: a^1 = (a+b)/√2, d^1 = (a−b)/√2.
        let c = dwt(&[3.0, 1.0]);
        assert_close(&c, &[4.0 * INV_SQRT2, 2.0 * INV_SQRT2]);
    }
}
