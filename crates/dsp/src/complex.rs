//! A minimal complex-number type.
//!
//! The DFT machinery needs nothing more than addition, multiplication,
//! scaling and magnitude, so we implement a small `Copy` struct rather than
//! pulling in an external dependency.

use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates the unit-magnitude complex number `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales both components by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z - z, Complex::ZERO);
        assert!(close(z.abs(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
    }

    #[test]
    fn multiplication_matches_polar() {
        let a = Complex::cis(0.3);
        let b = Complex::cis(0.9);
        let prod = a * b;
        let expect = Complex::cis(1.2);
        assert!(close(prod.re, expect.re));
        assert!(close(prod.im, expect.im));
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let z = Complex::new(1.5, 2.5);
        let n = z * z.conj();
        assert!(close(n.re, z.norm_sqr()));
        assert!(close(n.im, 0.0));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let z = Complex::cis(k as f64 * 0.41);
            assert!(close(z.abs(), 1.0));
        }
    }

    #[test]
    fn scale_and_neg() {
        let z = Complex::new(2.0, -3.0);
        assert_eq!(z.scale(2.0), Complex::new(4.0, -6.0));
        assert_eq!(-z, Complex::new(-2.0, 3.0));
        assert_eq!(z * 0.5, Complex::new(1.0, -1.5));
    }
}
