//! Two-channel analysis filter banks: circular convolution + downsampling.
//!
//! Appendix A of the paper phrases the incremental DWT in terms of a low-pass
//! decomposition filter `h̃` (Equations 11–12): approximation coefficients at
//! the next level are obtained by convolving the current approximation signal
//! with `h̃` and downsampling by two. For Haar, `h̃ = [1/√2, 1/√2]`; longer
//! Daubechies-style filters have negative taps, which is exactly the case
//! Lemma A.2's δ-split handles. This module implements both the filtering and
//! the split.

/// A two-channel analysis filter bank described by its low-pass
/// decomposition filter `h̃` (the high-pass is the quadrature mirror, used
/// only for detail coefficients, which Stardust discards).
#[derive(Debug, Clone, PartialEq)]
pub struct FilterBank {
    lowpass: Vec<f64>,
}

impl FilterBank {
    /// The Haar filter bank, `h̃ = [1/√2, 1/√2]`.
    pub fn haar() -> Self {
        FilterBank { lowpass: vec![crate::haar::INV_SQRT2; 2] }
    }

    /// The Daubechies-4 (two-vanishing-moment) filter bank. Its low-pass
    /// filter has a negative tap, exercising the δ-split path of Lemma A.2.
    pub fn db2() -> Self {
        let s3 = 3f64.sqrt();
        let norm = 4.0 * 2f64.sqrt();
        FilterBank {
            lowpass: vec![
                (1.0 + s3) / norm,
                (3.0 + s3) / norm,
                (3.0 - s3) / norm,
                (1.0 - s3) / norm,
            ],
        }
    }

    /// Builds a filter bank from arbitrary low-pass taps.
    ///
    /// # Panics
    /// Panics if `taps` is empty.
    pub fn from_taps(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "filter needs at least one tap");
        FilterBank { lowpass: taps }
    }

    /// The low-pass taps.
    pub fn taps(&self) -> &[f64] {
        &self.lowpass
    }

    /// `true` if every tap is nonnegative (Haar), in which case the MBR
    /// transform can use the corner signals directly without a δ-split.
    pub fn is_nonnegative(&self) -> bool {
        self.lowpass.iter().all(|&t| t >= 0.0)
    }

    /// The δ amplitude of Lemma A.2: the smallest nonnegative constant such
    /// that every tap of `h̃ + δ` is nonnegative.
    pub fn delta(&self) -> f64 {
        self.lowpass.iter().copied().fold(0.0f64, |acc, t| acc.max(-t))
    }

    /// One analysis step: circular convolution of `x` with the low-pass
    /// filter followed by downsampling by two (Equations 11–12).
    ///
    /// `out[n] = Σ_k h̃[k] · x[(2n + k) mod len]`.
    ///
    /// # Panics
    /// Panics if `x.len()` is odd or zero.
    pub fn analyze(&self, x: &[f64]) -> Vec<f64> {
        assert!(!x.is_empty() && x.len().is_multiple_of(2), "analysis needs even, nonzero length");
        let n = x.len();
        let mut out = Vec::with_capacity(n / 2);
        for i in 0..n / 2 {
            let mut acc = 0.0;
            for (k, &h) in self.lowpass.iter().enumerate() {
                acc += h * x[(2 * i + k) % n];
            }
            out.push(acc);
        }
        out
    }

    /// Like [`FilterBank::analyze`] but with the taps shifted by an additive
    /// constant `delta`; used to form the two nonnegative parts of the
    /// δ-split `h̃ = (h̃ + δ) − δ`.
    pub fn analyze_shifted(&self, x: &[f64], delta: f64) -> Vec<f64> {
        assert!(!x.is_empty() && x.len().is_multiple_of(2), "analysis needs even, nonzero length");
        let n = x.len();
        let mut out = Vec::with_capacity(n / 2);
        for i in 0..n / 2 {
            let mut acc = 0.0;
            for (k, &h) in self.lowpass.iter().enumerate() {
                acc += (h + delta) * x[(2 * i + k) % n];
            }
            out.push(acc);
        }
        out
    }

    /// Convolution of `x` with the constant filter `δ` (same support as the
    /// low-pass filter), downsampled by two: `out[n] = δ · Σ_k x[(2n+k) mod len]`.
    pub fn analyze_delta(&self, x: &[f64], delta: f64) -> Vec<f64> {
        assert!(!x.is_empty() && x.len().is_multiple_of(2), "analysis needs even, nonzero length");
        let n = x.len();
        let taps = self.lowpass.len();
        let mut out = Vec::with_capacity(n / 2);
        for i in 0..n / 2 {
            let mut acc = 0.0;
            for k in 0..taps {
                acc += x[(2 * i + k) % n];
            }
            out.push(acc * delta);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar;

    const EPS: f64 = 1e-10;

    #[test]
    fn haar_analyze_matches_averaging_step() {
        let x = [1.0, 3.0, -2.0, 6.0, 0.5, 0.5, 9.0, -9.0];
        let via_filter = FilterBank::haar().analyze(&x);
        let via_step = haar::averaging_step(&x);
        for (a, b) in via_filter.iter().zip(&via_step) {
            assert!((a - b).abs() < EPS);
        }
    }

    #[test]
    fn haar_is_nonnegative_db2_is_not() {
        assert!(FilterBank::haar().is_nonnegative());
        assert!(!FilterBank::db2().is_nonnegative());
        assert_eq!(FilterBank::haar().delta(), 0.0);
        assert!(FilterBank::db2().delta() > 0.0);
    }

    #[test]
    fn db2_lowpass_sums_to_sqrt2() {
        // Admissibility: Σ h̃[k] = √2 for an orthonormal two-channel bank.
        let sum: f64 = FilterBank::db2().taps().iter().sum();
        assert!((sum - 2f64.sqrt()).abs() < EPS);
    }

    #[test]
    fn db2_preserves_constant_energy_per_step() {
        // For a constant signal, one analysis step scales by √2 exactly.
        let x = vec![1.0; 8];
        let y = FilterBank::db2().analyze(&x);
        for v in y {
            assert!((v - 2f64.sqrt()).abs() < EPS);
        }
    }

    #[test]
    fn delta_split_is_exact() {
        // analyze(x) == analyze_shifted(x, δ) − analyze_delta(x, δ)
        let bank = FilterBank::db2();
        let d = bank.delta();
        let x = [0.4, -1.2, 3.3, 2.0, -0.7, 0.0, 5.5, 1.1];
        let direct = bank.analyze(&x);
        let plus = bank.analyze_shifted(&x, d);
        let minus = bank.analyze_delta(&x, d);
        for i in 0..direct.len() {
            assert!((direct[i] - (plus[i] - minus[i])).abs() < EPS);
        }
    }

    #[test]
    fn shifted_filter_is_monotone_on_ordered_signals() {
        // With nonnegative taps, x ≤ y pointwise implies analyze(x) ≤ analyze(y).
        let bank = FilterBank::db2();
        let d = bank.delta();
        let lo = [0.0, 1.0, -2.0, 0.5, 1.5, -1.0, 0.0, 2.0];
        let hi = [0.5, 1.5, -1.0, 1.5, 2.5, 0.0, 1.0, 2.0];
        let alo = bank.analyze_shifted(&lo, d);
        let ahi = bank.analyze_shifted(&hi, d);
        for (a, b) in alo.iter().zip(&ahi) {
            assert!(a <= &(b + EPS));
        }
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_rejected() {
        let _ = FilterBank::from_taps(vec![]);
    }
}
