//! Property tests of the transform substrate: the exactness and
//! conservativeness guarantees that everything above relies on.

use proptest::prelude::*;
use stardust_dsp::dft::{dft_coefficient, znorm_dft_feature};
use stardust_dsp::haar;
use stardust_dsp::mbr_transform::Bounds;
use stardust_dsp::FilterBank;

fn signal(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    /// Haar DWT is orthonormal: perfect reconstruction and Parseval.
    #[test]
    fn dwt_roundtrip_and_parseval(x in signal(32)) {
        let coeffs = haar::dwt(&x);
        let back = haar::idwt(&coeffs);
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8);
        }
        let e1: f64 = x.iter().map(|v| v * v).sum();
        let e2: f64 = coeffs.iter().map(|v| v * v).sum();
        prop_assert!((e1 - e2).abs() < 1e-6 * (1.0 + e1));
    }

    /// Lemma A.1: the incremental merge equals the direct transform for
    /// every keep-length.
    #[test]
    fn merge_halves_is_exact(x in signal(64), keep_pow in 0usize..6) {
        let keep = 1usize << keep_pow; // 1..32
        let left = haar::approx(&x[..32], keep);
        let right = haar::approx(&x[32..], keep);
        let merged = haar::merge_halves(&left, &right);
        let direct = haar::approx(&x, keep);
        for (m, d) in merged.iter().zip(&direct) {
            prop_assert!((m - d).abs() < 1e-8);
        }
    }

    /// Projection contraction: approximation distance never exceeds signal
    /// distance (the no-false-dismissal property of range queries).
    #[test]
    fn approx_distance_contracts(x in signal(32), y in signal(32), keep_pow in 0usize..6) {
        let keep = 1usize << keep_pow;
        let d_sig: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        let ax = haar::approx(&x, keep);
        let ay = haar::approx(&y, keep);
        let d_app: f64 = ax.iter().zip(&ay).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        prop_assert!(d_app <= d_sig + 1e-8);
    }

    /// Lemma A.2 conservativeness for both filter families: the Online II
    /// output box contains the transform of every corner and of midpoints.
    #[test]
    fn online2_is_conservative(
        lo in proptest::collection::vec(-50.0f64..50.0, 8),
        widths in proptest::collection::vec(0.0f64..20.0, 8),
        use_db2 in any::<bool>(),
    ) {
        let hi: Vec<f64> = lo.iter().zip(&widths).map(|(l, w)| l + w).collect();
        let b = Bounds::new(lo.clone(), hi.clone());
        let bank = if use_db2 { FilterBank::db2() } else { FilterBank::haar() };
        let out = b.analyze_online2(&bank);
        // corners: lo, hi, alternating, midpoint
        let mid: Vec<f64> = lo.iter().zip(&hi).map(|(l, h)| (l + h) / 2.0).collect();
        let alt: Vec<f64> = lo
            .iter()
            .zip(&hi)
            .enumerate()
            .map(|(i, (l, h))| if i % 2 == 0 { *l } else { *h })
            .collect();
        for probe in [&lo, &hi, &mid, &alt] {
            let t = bank.analyze(probe);
            prop_assert!(out.contains(&t, 1e-7), "{t:?} outside {out:?}");
        }
    }

    /// Online I is always at least as tight as Online II and still
    /// conservative.
    #[test]
    fn online1_tighter_than_online2(
        lo in proptest::collection::vec(-10.0f64..10.0, 6),
        widths in proptest::collection::vec(0.0f64..5.0, 6),
    ) {
        let hi: Vec<f64> = lo.iter().zip(&widths).map(|(l, w)| l + w).collect();
        let b = Bounds::new(lo, hi);
        let bank = FilterBank::db2();
        let tight = b.analyze_online1(&bank);
        let loose = b.analyze_online2(&bank);
        prop_assert!(loose.contains_bounds(&tight, 1e-7));
    }

    /// DFT: Parseval over all coefficients, and z-norm feature invariance
    /// under affine transformations with positive scale.
    #[test]
    fn dft_properties(x in signal(16), scale in 0.1f64..10.0, offset in -100.0f64..100.0) {
        let e_time: f64 = x.iter().map(|v| v * v).sum();
        let e_freq: f64 = (0..16).map(|k| dft_coefficient(&x, k).norm_sqr()).sum();
        prop_assert!((e_time - e_freq).abs() < 1e-6 * (1.0 + e_time));

        if let Some(fx) = znorm_dft_feature(&x, 4) {
            let y: Vec<f64> = x.iter().map(|v| scale * v + offset).collect();
            let fy = znorm_dft_feature(&y, 4).expect("scaled signal keeps variance");
            for (a, b) in fx.iter().zip(&fy) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }

    /// The δ-split identity holds for arbitrary filters with negative taps.
    #[test]
    fn delta_split_identity(
        taps in proptest::collection::vec(-2.0f64..2.0, 2..6),
        x in signal(16),
    ) {
        prop_assume!(taps.iter().any(|t| t.abs() > 1e-6));
        let bank = FilterBank::from_taps(taps);
        let d = bank.delta();
        let direct = bank.analyze(&x);
        let plus = bank.analyze_shifted(&x, d);
        let minus = bank.analyze_delta(&x, d);
        for i in 0..direct.len() {
            prop_assert!((direct[i] - (plus[i] - minus[i])).abs() < 1e-7);
        }
    }
}
