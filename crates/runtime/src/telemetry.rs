//! Runtime-level telemetry handles: batch latency, crash-recovery
//! timings, and durable-persistence counters.
//!
//! Mirrors `stardust_core::telemetry`: a bundle of pre-registered
//! handles whose default value is fully detached, so workers hold one
//! unconditionally and pay a single branch per operation when
//! telemetry is off.

use stardust_telemetry::{Counter, Histogram, Registry};

/// Pre-registered runtime series shared by every shard worker.
#[derive(Clone, Debug, Default)]
pub(crate) struct RuntimeTelemetry {
    /// `stardust_runtime_batch_latency_ns` — submit-to-drained latency
    /// of every batch, across shards.
    pub batch_latency: Histogram,
    /// `stardust_recovery_journal_ns` — write-ahead journal appends.
    pub journal: Histogram,
    /// `stardust_recovery_snapshot_ns` — monitor snapshot captures.
    pub snapshot: Histogram,
    /// `stardust_recovery_restore_ns` — full crash restores (monitor
    /// rebuild plus journal-suffix replay).
    pub restore: Histogram,
    /// `stardust_persist_wal_append_ns` — on-disk WAL record appends.
    pub wal_append: Histogram,
    /// `stardust_persist_recovery_ns` — per-shard disk recovery (scan,
    /// validate, restore, replay) at `open()`.
    pub disk_recovery: Histogram,
    /// `stardust_persist_fsyncs_total` — successful fsyncs (WAL and
    /// snapshot).
    pub fsyncs: Counter,
    /// `stardust_persist_fsync_failures_total` — failed or injected-
    /// failure fsyncs.
    pub fsync_failures: Counter,
    /// `stardust_persist_wal_records_total` — records appended to WALs.
    pub wal_records: Counter,
    /// `stardust_persist_wal_bytes_total` — bytes appended to WALs.
    pub wal_bytes: Counter,
    /// `stardust_persist_torn_truncations_total` — torn WAL tails
    /// truncated during recovery.
    pub torn_truncations: Counter,
    /// `stardust_persist_snapshot_fallbacks_total` — recoveries that
    /// fell back to the previous snapshot generation.
    pub snapshot_fallbacks: Counter,
    /// `stardust_persist_replayed_total` — WAL appends replayed through
    /// restored monitors at `open()`.
    pub replayed: Counter,
    /// `stardust_runtime_rejected_samples_total` — non-finite samples
    /// rejected at the append boundary.
    pub rejected: Counter,
    /// `stardust_runtime_group_size` — batches per commit group: how
    /// many queued batches one worker drain journaled under a single
    /// coalesced WAL write (and, under `SyncPolicy::Always`, one fsync).
    pub group_size: Histogram,
    /// `stardust_persist_wal_group_writes_total` — coalesced group
    /// writes issued to on-disk WALs (one per commit group, i.e. one
    /// per batch-record `write(2)` regardless of how many records it
    /// carried).
    pub wal_group_writes: Counter,
    /// `stardust_sketch_exchange_ns` — one cadence firing: shipping
    /// every local sketch delta to the collector board.
    pub sketch_exchange: Histogram,
    /// `stardust_sketch_exchanges_total` — cadence firings across
    /// shards.
    pub sketch_exchanges: Counter,
    /// `stardust_cross_corr_candidates_total` — cross-shard pairs that
    /// survived the sketch prune and went to exact verification.
    pub cross_candidates: Counter,
    /// `stardust_cross_corr_pruned_total` — cross-shard pairs dismissed
    /// by the sketch distance lower bound.
    pub cross_pruned: Counter,
    /// `stardust_cross_corr_confirmed_total` — cross-shard candidates
    /// confirmed by exact verification.
    pub cross_confirmed: Counter,
    /// `stardust_runtime_migrations_total` — completed group migrations
    /// (splits and merges).
    pub migrations: Counter,
    /// `stardust_runtime_migration_ms` — end-to-end latency of one group
    /// migration (freeze → promote), in milliseconds.
    pub migration_ms: Histogram,
}

impl RuntimeTelemetry {
    /// Registers (or re-resolves) the runtime series in `registry`.
    pub fn new(registry: &Registry) -> Self {
        RuntimeTelemetry {
            batch_latency: registry.histogram(
                "stardust_runtime_batch_latency_ns",
                "Submit-to-drained batch latency in nanoseconds, all shards",
            ),
            journal: registry.histogram(
                "stardust_recovery_journal_ns",
                "Write-ahead journal append duration in nanoseconds",
            ),
            snapshot: registry.histogram(
                "stardust_recovery_snapshot_ns",
                "Monitor snapshot capture duration in nanoseconds",
            ),
            restore: registry.histogram(
                "stardust_recovery_restore_ns",
                "Crash restore (rebuild + replay) duration in nanoseconds",
            ),
            wal_append: registry.histogram(
                "stardust_persist_wal_append_ns",
                "On-disk WAL record append duration in nanoseconds",
            ),
            disk_recovery: registry.histogram(
                "stardust_persist_recovery_ns",
                "Per-shard disk recovery duration at open() in nanoseconds",
            ),
            fsyncs: registry.counter(
                "stardust_persist_fsyncs_total",
                "Successful fsyncs of WAL and snapshot files",
            ),
            fsync_failures: registry.counter(
                "stardust_persist_fsync_failures_total",
                "Failed (or fault-injected) fsyncs of WAL and snapshot files",
            ),
            wal_records: registry
                .counter("stardust_persist_wal_records_total", "Records appended to on-disk WALs"),
            wal_bytes: registry
                .counter("stardust_persist_wal_bytes_total", "Bytes appended to on-disk WALs"),
            torn_truncations: registry.counter(
                "stardust_persist_torn_truncations_total",
                "Torn WAL tails truncated during recovery",
            ),
            snapshot_fallbacks: registry.counter(
                "stardust_persist_snapshot_fallbacks_total",
                "Recoveries that fell back to the previous snapshot generation",
            ),
            replayed: registry.counter(
                "stardust_persist_replayed_total",
                "WAL appends replayed through restored monitors at open()",
            ),
            rejected: registry.counter(
                "stardust_runtime_rejected_samples_total",
                "Non-finite samples rejected at the append boundary",
            ),
            group_size: registry.histogram_with(
                "stardust_runtime_group_size",
                "Batches per commit group (one coalesced WAL write / fsync)",
                // Group sizes span 1..=256 batches, not nanoseconds:
                // power-of-two buckets keep the quantiles meaningful.
                (0..9).map(|i| 1u64 << i).collect(),
            ),
            wal_group_writes: registry.counter(
                "stardust_persist_wal_group_writes_total",
                "Coalesced group writes issued to on-disk WALs (one per commit group)",
            ),
            sketch_exchange: registry.histogram(
                "stardust_sketch_exchange_ns",
                "One sketch-exchange cadence firing in nanoseconds",
            ),
            sketch_exchanges: registry.counter(
                "stardust_sketch_exchanges_total",
                "Sketch-exchange cadence firings across shards",
            ),
            cross_candidates: registry.counter(
                "stardust_cross_corr_candidates_total",
                "Cross-shard pairs sent to exact verification after the sketch prune",
            ),
            cross_pruned: registry.counter(
                "stardust_cross_corr_pruned_total",
                "Cross-shard pairs dismissed by the sketch distance lower bound",
            ),
            cross_confirmed: registry.counter(
                "stardust_cross_corr_confirmed_total",
                "Cross-shard candidates confirmed by exact verification",
            ),
            migrations: registry.counter(
                "stardust_runtime_migrations_total",
                "Completed group migrations (splits and merges)",
            ),
            migration_ms: registry.histogram_with(
                "stardust_runtime_migration_ms",
                "End-to-end group migration latency (freeze to promote), milliseconds",
                // Migrations span sub-millisecond to tens of seconds:
                // power-of-two millisecond buckets up to ~65 s.
                (0..17).map(|i| 1u64 << i).collect(),
            ),
        }
    }
}
