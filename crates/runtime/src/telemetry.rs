//! Runtime-level telemetry handles: batch latency and crash-recovery
//! timings.
//!
//! Mirrors `stardust_core::telemetry`: a bundle of pre-registered
//! handles whose default value is fully detached, so workers hold one
//! unconditionally and pay a single branch per operation when
//! telemetry is off.

use stardust_telemetry::{Histogram, Registry};

/// Pre-registered runtime series shared by every shard worker.
#[derive(Clone, Debug, Default)]
pub(crate) struct RuntimeTelemetry {
    /// `stardust_runtime_batch_latency_ns` — submit-to-drained latency
    /// of every batch, across shards.
    pub batch_latency: Histogram,
    /// `stardust_recovery_journal_ns` — write-ahead journal appends.
    pub journal: Histogram,
    /// `stardust_recovery_snapshot_ns` — monitor snapshot captures.
    pub snapshot: Histogram,
    /// `stardust_recovery_restore_ns` — full crash restores (monitor
    /// rebuild plus journal-suffix replay).
    pub restore: Histogram,
}

impl RuntimeTelemetry {
    /// Registers (or re-resolves) the runtime series in `registry`.
    pub fn new(registry: &Registry) -> Self {
        RuntimeTelemetry {
            batch_latency: registry.histogram(
                "stardust_runtime_batch_latency_ns",
                "Submit-to-drained batch latency in nanoseconds, all shards",
            ),
            journal: registry.histogram(
                "stardust_recovery_journal_ns",
                "Write-ahead journal append duration in nanoseconds",
            ),
            snapshot: registry.histogram(
                "stardust_recovery_snapshot_ns",
                "Monitor snapshot capture duration in nanoseconds",
            ),
            restore: registry.histogram(
                "stardust_recovery_restore_ns",
                "Crash restore (rebuild + replay) duration in nanoseconds",
            ),
        }
    }
}
