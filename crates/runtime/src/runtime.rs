//! The sharded runtime: stream partitioning, bounded-queue ingestion
//! with backpressure, scatter-gather queries, and drain-then-join
//! shutdown.

use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use stardust_core::stream::StreamId;
use stardust_core::unified::Event;

use crate::shard::{QueryReply, QueryRequest, ShardMsg, Worker};
use crate::spec::MonitorSpec;
use crate::stats::{RuntimeStats, ShardCounters};
use crate::{ClassStats, RuntimeError};

/// The bounded per-shard queue rejected a message; retry later or use a
/// blocking variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("shard queue full")
    }
}

impl std::error::Error for QueueFull {}

/// A group of values for ingestion, each tagged with its (global)
/// stream. Values of one stream are applied in batch order.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    items: Vec<(StreamId, f64)>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// Appends one value for one stream.
    pub fn push(&mut self, stream: StreamId, value: f64) {
        self.items.push((stream, value));
    }

    /// Number of values in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the batch holds no values.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl FromIterator<(StreamId, f64)> for Batch {
    fn from_iter<I: IntoIterator<Item = (StreamId, f64)>>(iter: I) -> Self {
        Batch { items: iter.into_iter().collect() }
    }
}

/// `try_submit` could not enqueue everything; `rejected` holds the
/// unqueued remainder (per-stream order preserved) for retry.
#[derive(Debug, Clone)]
pub struct PartialSubmit {
    /// Values that were not enqueued.
    pub rejected: Batch,
    /// Values that were enqueued before the first full queue.
    pub accepted: usize,
}

/// Runtime tuning knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker shards. `0` means one per available CPU. Clamped to the
    /// stream count (an empty shard serves nothing).
    pub shards: usize,
    /// Bounded queue capacity per shard, in messages (batches), not
    /// values. When a queue is full, `try_*` reports [`QueueFull`] and
    /// the blocking variants wait — that is the backpressure contract.
    pub queue_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { shards: 0, queue_capacity: 64 }
    }
}

/// Result of [`ShardedRuntime::shutdown`]: final counters plus every
/// event not yet drained.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final per-shard counters.
    pub stats: RuntimeStats,
    /// Events emitted after the last `drain_events` call, in collector
    /// arrival order.
    pub events: Vec<Event>,
}

/// A multi-threaded monitor over `M` streams, partitioned across `S`
/// worker shards.
///
/// Stream `g` lives on shard `g mod S` as local stream `g div S`; each
/// shard owns a private [`stardust_core::unified::UnifiedMonitor`] over
/// its slice and communicates only through channels, so no monitor state
/// is ever shared or locked.
///
/// **Semantics vs. a single monitor.** Aggregate and trend monitoring
/// are per-stream computations: the sharded runtime emits *exactly* the
/// events a single-threaded monitor would (the determinism test in
/// `tests/` proves the set equality). Correlation is a cross-stream
/// computation and is **partitioned**: each shard reports pairs among
/// its own streams only, so cross-shard pairs are not searched — the
/// standard throughput/recall trade of partitioned stream joins. With
/// `S = 1` the runtime is exactly the paper's semantics on one core.
///
/// **Backpressure.** Per-shard queues are bounded at
/// [`RuntimeConfig::queue_capacity`] messages. `try_append` /
/// `try_submit` never block: a full queue returns [`QueueFull`] (or a
/// [`PartialSubmit`] remainder). `append_blocking` / `submit_blocking`
/// park the producer until the worker drains. Queries share the same
/// queues, so a query answered by a shard has observed every batch
/// submitted to that shard before it.
pub struct ShardedRuntime {
    n_streams: usize,
    senders: Vec<SyncSender<ShardMsg>>,
    handles: Vec<JoinHandle<()>>,
    events_rx: Receiver<Event>,
    counters: Vec<Arc<ShardCounters>>,
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("n_streams", &self.n_streams)
            .field("n_shards", &self.senders.len())
            .finish_non_exhaustive()
    }
}

impl ShardedRuntime {
    /// Launches workers for `n_streams` streams described by `spec`.
    ///
    /// # Errors
    /// Fails on zero streams, a spec with no query class, or a rejected
    /// trend pattern.
    pub fn launch(
        spec: &MonitorSpec,
        n_streams: usize,
        config: RuntimeConfig,
    ) -> Result<Self, RuntimeError> {
        if n_streams == 0 {
            return Err(RuntimeError::NoStreams);
        }
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let n_shards = if config.shards == 0 { hw } else { config.shards }.min(n_streams).max(1);
        let queue_capacity = config.queue_capacity.max(1);

        let (events_tx, events_rx) = mpsc::channel();
        let mut senders = Vec::with_capacity(n_shards);
        let mut handles = Vec::with_capacity(n_shards);
        let mut counters = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            // Streams with `g mod n_shards == shard`.
            let n_local = (n_streams - shard).div_ceil(n_shards);
            let monitor = spec.build(n_local)?;
            let (tx, rx) = mpsc::sync_channel(queue_capacity);
            let shared = Arc::new(ShardCounters::new());
            let worker = Worker {
                shard,
                n_shards,
                n_local_streams: n_local,
                monitor,
                inbox: rx,
                events: events_tx.clone(),
                counters: Arc::clone(&shared),
            };
            let handle = std::thread::Builder::new()
                .name(format!("stardust-shard-{shard}"))
                .spawn(move || worker.run())
                .map_err(RuntimeError::Spawn)?;
            senders.push(tx);
            handles.push(handle);
            counters.push(shared);
        }
        drop(events_tx); // workers hold the only senders
        Ok(ShardedRuntime { n_streams, senders, handles, events_rx, counters })
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.senders.len()
    }

    /// Number of monitored streams.
    pub fn n_streams(&self) -> usize {
        self.n_streams
    }

    fn place(&self, stream: StreamId) -> Result<(usize, StreamId), RuntimeError> {
        if (stream as usize) < self.n_streams {
            let s = self.n_shards();
            Ok((stream as usize % s, stream / s as StreamId))
        } else {
            Err(RuntimeError::UnknownStream { stream, n_streams: self.n_streams })
        }
    }

    /// Appends one value without blocking.
    ///
    /// # Errors
    /// [`RuntimeError::Backpressure`] when the owning shard's queue is
    /// full (the value is *not* enqueued; retry or use
    /// [`Self::append_blocking`]), [`RuntimeError::UnknownStream`] on an
    /// out-of-range id.
    pub fn try_append(&self, stream: StreamId, value: f64) -> Result<(), RuntimeError> {
        let (shard, local) = self.place(stream)?;
        let msg = ShardMsg::Batch(vec![(local, value)], Instant::now());
        self.counters[shard].note_enqueued();
        match self.senders[shard].try_send(msg) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                self.counters[shard].undo_enqueued();
                Err(RuntimeError::Backpressure(QueueFull))
            }
            Err(TrySendError::Disconnected(_)) => {
                self.counters[shard].undo_enqueued();
                Err(RuntimeError::Disconnected)
            }
        }
    }

    /// Appends one value, waiting while the owning shard's queue is
    /// full.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownStream`] on an out-of-range id,
    /// [`RuntimeError::Disconnected`] if the worker died.
    pub fn append_blocking(&self, stream: StreamId, value: f64) -> Result<(), RuntimeError> {
        let (shard, local) = self.place(stream)?;
        self.counters[shard].note_enqueued();
        self.senders[shard].send(ShardMsg::Batch(vec![(local, value)], Instant::now())).map_err(
            |_| {
                self.counters[shard].undo_enqueued();
                RuntimeError::Disconnected
            },
        )?;
        Ok(())
    }

    fn split(&self, batch: &Batch) -> Result<Vec<Vec<(StreamId, f64)>>, RuntimeError> {
        let mut per_shard: Vec<Vec<(StreamId, f64)>> = vec![Vec::new(); self.n_shards()];
        for &(stream, value) in &batch.items {
            let (shard, local) = self.place(stream)?;
            per_shard[shard].push((local, value));
        }
        Ok(per_shard)
    }

    /// Submits a batch, waiting on full queues. Values are split into
    /// one message per involved shard; per-stream order is preserved.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownStream`] on any out-of-range id (nothing
    /// is enqueued), [`RuntimeError::Disconnected`] if a worker died.
    pub fn submit_blocking(&self, batch: &Batch) -> Result<(), RuntimeError> {
        let now = Instant::now();
        for (shard, items) in self.split(batch)?.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            self.counters[shard].note_enqueued();
            self.senders[shard].send(ShardMsg::Batch(items, now)).map_err(|_| {
                self.counters[shard].undo_enqueued();
                RuntimeError::Disconnected
            })?;
        }
        Ok(())
    }

    /// Submits a batch without blocking. Sub-batches for shards with
    /// room are enqueued; the rest is returned for retry.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownStream`] on any out-of-range id (nothing
    /// is enqueued); otherwise `Ok` with an optional [`PartialSubmit`]
    /// remainder — `None` means everything was enqueued.
    pub fn try_submit(&self, batch: &Batch) -> Result<Option<PartialSubmit>, RuntimeError> {
        let now = Instant::now();
        let mut rejected = Batch::new();
        let mut accepted = 0usize;
        for (shard, items) in self.split(batch)?.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let n = items.len();
            self.counters[shard].note_enqueued();
            match self.senders[shard].try_send(ShardMsg::Batch(items, now)) {
                Ok(()) => {
                    accepted += n;
                }
                Err(TrySendError::Full(ShardMsg::Batch(items, _))) => {
                    self.counters[shard].undo_enqueued();
                    let s = self.n_shards() as StreamId;
                    rejected.items.extend(
                        items.into_iter().map(|(local, v)| (local * s + shard as StreamId, v)),
                    );
                }
                Err(TrySendError::Full(_)) => unreachable!("only batches are retried"),
                Err(TrySendError::Disconnected(_)) => {
                    self.counters[shard].undo_enqueued();
                    return Err(RuntimeError::Disconnected);
                }
            }
        }
        if rejected.is_empty() {
            Ok(None)
        } else {
            Ok(Some(PartialSubmit { rejected, accepted }))
        }
    }

    /// Every event collected so far, in collector arrival order
    /// (interleaved across shards; per-stream order is preserved).
    pub fn drain_events(&mut self) -> Vec<Event> {
        self.events_rx.try_iter().collect()
    }

    /// A live counter snapshot (racy by one message against in-flight
    /// producers, by design).
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats { shards: self.counters.iter().map(|c| c.snapshot()).collect() }
    }

    fn scatter(&self, req: QueryRequest) -> Result<Vec<QueryReply>, RuntimeError> {
        let (tx, rx) = mpsc::channel();
        for sender in &self.senders {
            sender
                .send(ShardMsg::Query(req.clone(), tx.clone()))
                .map_err(|_| RuntimeError::Disconnected)?;
        }
        drop(tx);
        let mut replies: Vec<(usize, QueryReply)> = Vec::with_capacity(self.n_shards());
        for _ in 0..self.n_shards() {
            replies.push(rx.recv().map_err(|_| RuntimeError::Disconnected)?);
        }
        replies.sort_by_key(|&(shard, _)| shard);
        Ok(replies.into_iter().map(|(_, r)| r).collect())
    }

    /// The current composed interval of one monitored aggregate window
    /// on one stream (routed to the owning shard; waits for queued
    /// batches ahead of it).
    ///
    /// # Errors
    /// [`RuntimeError::UnknownStream`] / [`RuntimeError::Disconnected`].
    pub fn aggregate_interval(
        &self,
        stream: StreamId,
        window: usize,
    ) -> Result<Option<(f64, f64)>, RuntimeError> {
        let (shard, local) = self.place(stream)?;
        let (tx, rx) = mpsc::channel();
        self.senders[shard]
            .send(ShardMsg::Query(QueryRequest::AggregateInterval { stream: local, window }, tx))
            .map_err(|_| RuntimeError::Disconnected)?;
        match rx.recv().map_err(|_| RuntimeError::Disconnected)? {
            (_, QueryReply::AggregateInterval(ans)) => Ok(ans),
            _ => Err(RuntimeError::Disconnected),
        }
    }

    /// Cumulative per-class counters, merged across all shards
    /// (scatter-gather).
    ///
    /// # Errors
    /// [`RuntimeError::Disconnected`] if a worker died.
    pub fn class_stats(&self) -> Result<ClassStats, RuntimeError> {
        let mut merged = ClassStats::default();
        for reply in self.scatter(QueryRequest::ClassStats)? {
            if let QueryReply::ClassStats(s) = reply {
                merged.merge(&s);
            }
        }
        Ok(merged)
    }

    /// Currently correlated pairs among same-shard streams, merged
    /// across shards and sorted by `(a, b)` — deterministic across runs
    /// and shard counts (for the pairs a partition can see).
    ///
    /// # Errors
    /// [`RuntimeError::Disconnected`] if a worker died.
    pub fn correlated_pairs(&self) -> Result<Vec<(StreamId, StreamId, f64)>, RuntimeError> {
        let mut merged = Vec::new();
        for reply in self.scatter(QueryRequest::CorrelatedPairs)? {
            if let QueryReply::CorrelatedPairs(pairs) = reply {
                merged.extend(pairs);
            }
        }
        merged.sort_by_key(|x| (x.0, x.1));
        Ok(merged)
    }

    /// Graceful shutdown: queued batches are fully drained, workers
    /// join, and the final stats plus all undrained events are returned.
    pub fn shutdown(self) -> ShutdownReport {
        for sender in &self.senders {
            // A worker that already died still counts as shut down.
            let _ = sender.send(ShardMsg::Shutdown);
        }
        drop(self.senders);
        for handle in self.handles {
            let _ = handle.join();
        }
        // All workers are gone, so their event senders are dropped and
        // this drains to disconnect.
        let events: Vec<Event> = self.events_rx.iter().collect();
        ShutdownReport {
            stats: RuntimeStats { shards: self.counters.iter().map(|c| c.snapshot()).collect() },
            events,
        }
    }
}

/// Sorts events into a canonical total order: by query class, then
/// stream(s), then time, then the class-specific payload. Two event
/// multisets are equal iff they compare equal after this sort —
/// used to check sharded against single-threaded execution.
pub fn sort_events(events: &mut [Event]) {
    fn key(e: &Event) -> (u8, u64, u64, u64, u64, u64) {
        match e {
            Event::Aggregate { stream, alarm } => (
                0,
                *stream as u64,
                alarm.time,
                alarm.window as u64,
                alarm.true_value.to_bits(),
                alarm.is_true_alarm as u64,
            ),
            Event::Trend(m) => {
                (1, m.stream as u64, m.time, m.pattern as u64, m.distance.to_bits(), 0)
            }
            Event::Correlation(p) => {
                (2, p.a as u64, p.time, p.b as u64, p.time_other, p.feature_distance.to_bits())
            }
        }
    }
    events.sort_by_key(key);
}
