//! The sharded runtime: stream partitioning, bounded-queue ingestion
//! with backpressure, scatter-gather queries, supervised crash
//! recovery, and drain-then-join shutdown.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use stardust_core::normalize;
use stardust_core::sketch::{SketchProjection, PRUNE_SLACK};
use stardust_core::stream::StreamId;
use stardust_core::unified::{Event, UnifiedMonitor};

use crate::fault::FaultPlan;
use crate::persist::{self, PersistConfig, RecoveryError, RecoveryReport, ShardRecoveryReport};
use crate::pool;
use crate::queue::{BoundedQueue, PushError};
use crate::shard::{
    remap_event, Board, DeathNotice, QueryReply, QueryRequest, ShardMsg, SketchBoard, Worker,
};
use crate::snapshot::ShardRecovery;
use crate::spec::MonitorSpec;
use crate::stats::{CrossCorrStats, RuntimeStats, ShardCounters};
use crate::telemetry::RuntimeTelemetry;
use crate::{ClassStats, RuntimeError};

/// Shard count and per-shard stream counts for `n_streams` streams.
/// Streams with `g mod n_shards == shard` live on `shard`.
fn sizing(n_streams: usize, shards: usize) -> (usize, Vec<usize>) {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let n_shards = if shards == 0 { hw } else { shards }.min(n_streams).max(1);
    let n_locals = (0..n_shards).map(|shard| (n_streams - shard).div_ceil(n_shards)).collect();
    (n_shards, n_locals)
}

/// The bounded per-shard queue rejected a message; retry later or use a
/// blocking variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("shard queue full")
    }
}

impl std::error::Error for QueueFull {}

/// A group of values for ingestion, each tagged with its (global)
/// stream. Values of one stream are applied in batch order.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    items: Vec<(StreamId, f64)>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// Appends one value for one stream.
    pub fn push(&mut self, stream: StreamId, value: f64) {
        self.items.push((stream, value));
    }

    /// Number of values in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// The batched `(stream, value)` pairs, in push order.
    pub fn items(&self) -> &[(StreamId, f64)] {
        &self.items
    }

    /// Whether the batch holds no values.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl FromIterator<(StreamId, f64)> for Batch {
    fn from_iter<I: IntoIterator<Item = (StreamId, f64)>>(iter: I) -> Self {
        Batch { items: iter.into_iter().collect() }
    }
}

/// `try_submit` could not enqueue everything; `rejected` holds the
/// unqueued remainder (per-stream order preserved) for retry.
#[derive(Debug, Clone)]
pub struct PartialSubmit {
    /// Values that were not enqueued.
    pub rejected: Batch,
    /// Values that were enqueued before the first full queue.
    pub accepted: usize,
}

/// Crash-recovery tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Snapshot each shard's monitor after this many journaled appends;
    /// crash recovery then replays at most this many values. `0` never
    /// snapshots — recovery replays the shard's entire input from the
    /// journal (simplest, but the journal grows without bound).
    pub snapshot_every: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { snapshot_every: 1024 }
    }
}

/// Runtime tuning knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker shards. `0` means one per available CPU. Clamped to the
    /// stream count (an empty shard serves nothing).
    pub shards: usize,
    /// Bounded queue capacity per shard, in messages (batches), not
    /// values. When a queue is full, `try_*` reports [`QueueFull`] and
    /// the blocking variants wait — that is the backpressure contract.
    pub queue_capacity: usize,
    /// Crash recovery. `Some` (the default) journals every batch,
    /// snapshots on the policy's cadence, and runs a supervisor thread
    /// that restores crashed shard workers with exactly-once event
    /// delivery. `None` disables all of it: a crashed shard is terminal
    /// and its producers see [`RuntimeError::Disconnected`].
    pub recovery: Option<RecoveryPolicy>,
    /// Deterministic fault injection (tests, chaos drills). `None` — the
    /// default — costs one pointer check per append.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Metrics registry. `Some` wires every shard's monitor, the batch
    /// latency path, and the recovery machinery into the registry (see
    /// DESIGN.md §Observability for the series catalogue); restored
    /// workers are re-attached automatically after a crash. `None` — the
    /// default — leaves every handle detached: one branch per would-be
    /// sample.
    pub telemetry: Option<stardust_telemetry::Registry>,
    /// Sketch-exchange cadence for the cross-shard correlation path, in
    /// sealed sketch blocks: each shard re-publishes its streams'
    /// sliding-window sketches to the collector board once its slowest
    /// local stream has sealed this many new blocks. `0` disables the
    /// exchange — [`ShardedRuntime::correlated_pairs`] stays exact but
    /// verifies every cross-shard pair without sketch pruning.
    pub sketch_cadence: u64,
    /// Collector-side workers for the pruning and verification phases of
    /// [`ShardedRuntime::correlated_pairs`]. `1` — the default — runs them
    /// on the querying thread; `0` means one per available CPU. Results
    /// are bit-identical at every setting (see [`crate::pool`]): the work
    /// is split into contiguous runs merged positionally, so only
    /// wall-clock time changes.
    pub intra_query_threads: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            shards: 0,
            queue_capacity: 64,
            recovery: Some(RecoveryPolicy::default()),
            fault_plan: None,
            telemetry: None,
            sketch_cadence: 1,
            intra_query_threads: 1,
        }
    }
}

/// Result of [`ShardedRuntime::shutdown`]: final counters plus every
/// event not yet drained.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final per-shard counters.
    pub stats: RuntimeStats,
    /// Events emitted after the last `drain_events` call, in collector
    /// arrival order.
    pub events: Vec<Event>,
}

/// State shared by producers, workers, and the supervisor. Everything a
/// restored worker needs to resume a dead shard lives here.
struct Shared {
    spec: MonitorSpec,
    n_shards: usize,
    /// Streams per shard.
    n_locals: Vec<usize>,
    snapshot_every: u64,
    fault_plan: Option<Arc<FaultPlan>>,
    /// Registry monitors re-attach to after a crash restore; `None`
    /// when telemetry is off.
    telemetry: Option<stardust_telemetry::Registry>,
    /// Runtime-level handles (batch latency, recovery timings); fully
    /// detached when telemetry is off.
    runtime_telemetry: RuntimeTelemetry,
    /// Per-shard queues. They live outside any worker so a worker crash
    /// loses no queued message — the restored worker resumes draining.
    queues: Vec<Arc<BoundedQueue<ShardMsg>>>,
    counters: Vec<Arc<ShardCounters>>,
    /// Collector-side sketch mirrors for the cross-shard correlation
    /// path, keyed by global stream id.
    sketches: Arc<SketchBoard>,
    /// Sketch-exchange cadence in sealed blocks (`0` = disabled).
    sketch_cadence: u64,
    /// Resolved collector-side worker count for query fan-out (≥ 1).
    intra_query_threads: usize,
    /// Per-shard recovery journals; `None` when recovery is disabled.
    recovery: Option<Vec<Arc<ShardRecovery>>>,
    board: Arc<Board>,
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// The collector sender respawned workers clone; dropped (set to
    /// `None`) once every worker has joined so the receiver disconnects.
    /// Carries one `Vec<Event>` per commit group (bulk delivery), not
    /// one message per event.
    events_tx: Mutex<Option<Sender<Vec<Event>>>>,
}

impl Shared {
    fn spawn_worker(
        self: &Arc<Self>,
        shard: usize,
        monitor: Option<UnifiedMonitor>,
        processed: u64,
    ) -> std::io::Result<JoinHandle<()>> {
        let events = self
            .events_tx
            .lock()
            .expect("events sender poisoned")
            .clone()
            .expect("worker spawned after shutdown");
        let worker = Worker {
            shard,
            n_shards: self.n_shards,
            n_local_streams: self.n_locals[shard],
            monitor,
            inbox: Arc::clone(&self.queues[shard]),
            events,
            counters: Arc::clone(&self.counters[shard]),
            recovery: self.recovery.as_ref().map(|r| Arc::clone(&r[shard])),
            faults: self.fault_plan.clone(),
            processed,
            snapshot_every: self.snapshot_every,
            sketches: Arc::clone(&self.sketches),
            sketch_cadence: self.sketch_cadence,
            // Reset on every (re)spawn: the restored worker re-publishes
            // its sketches, which the board absorbs idempotently.
            last_shipped: 0,
            telemetry: self.runtime_telemetry.clone(),
        };
        let board = Arc::clone(&self.board);
        // Without a supervisor a death is terminal: the dying worker
        // must close its queue so producers fail fast instead of
        // parking forever.
        let close_on_death =
            if self.recovery.is_none() { Some(Arc::clone(&self.queues[shard])) } else { None };
        std::thread::Builder::new().name(format!("stardust-shard-{shard}")).spawn(move || {
            let mut notice = DeathNotice { shard, board, clean: false, close_on_death };
            worker.run(&mut notice);
        })
    }

    /// Supervisor path: joins the dead worker, rebuilds its monitor from
    /// the recovery journal (replaying undelivered events), and spawns a
    /// replacement that resumes draining the same queue.
    fn restore_shard(self: &Arc<Self>, shard: usize) {
        if let Some(handle) = self.handles.lock().expect("handles poisoned")[shard].take() {
            let _ = handle.join();
        }
        let rec = &self.recovery.as_ref().expect("supervisor requires recovery")[shard];
        let events = self
            .events_tx
            .lock()
            .expect("events sender poisoned")
            .clone()
            .expect("restore after shutdown");
        let restore_span = self.runtime_telemetry.restore.span();
        let rebuilt = rec.rebuild(
            &self.spec,
            self.n_locals[shard],
            shard,
            self.n_shards,
            &events,
            &self.counters[shard],
            &self.sketches,
            self.sketch_cadence,
            &self.runtime_telemetry,
        );
        drop(restore_span);
        let Some((mut monitor, processed)) = rebuilt else {
            // The shard's durable WAL is wedged (torn write or failed
            // rotation): an in-memory rebuild would accept appends the
            // disk can no longer journal, so the shard fails stop.
            self.queues[shard].close();
            self.board.mark_failed(shard);
            return;
        };
        // The replay above ran detached (a restored monitor never counts
        // replayed appends twice); re-attach for the shard's second life.
        if let (Some(registry), Some(m)) = (&self.telemetry, monitor.as_mut()) {
            m.attach_telemetry(registry);
        }
        match self.spawn_worker(shard, monitor, processed) {
            Ok(handle) => {
                self.handles.lock().expect("handles poisoned")[shard] = Some(handle);
            }
            Err(_) => {
                // Can't spawn a replacement thread: give the shard up.
                self.queues[shard].close();
                self.board.mark_failed(shard);
            }
        }
    }
}

/// A multi-threaded monitor over `M` streams, partitioned across `S`
/// worker shards.
///
/// Stream `g` lives on shard `g mod S` as local stream `g div S`; each
/// shard owns a private [`stardust_core::unified::UnifiedMonitor`] over
/// its slice and communicates only through channels, so no monitor state
/// is ever shared or locked.
///
/// **Semantics vs. a single monitor.** Aggregate and trend monitoring
/// are per-stream computations: the sharded runtime emits *exactly* the
/// events a single-threaded monitor would (the determinism test in
/// `tests/` proves the set equality). Correlation is a cross-stream
/// computation with two surfaces: pushed [`Event::Correlation`] events
/// remain **partitioned** (each shard's index search covers its own
/// streams only), while the pulled [`Self::correlated_pairs`] query
/// covers **every** pair, cross-shard included — shards publish
/// sliding-window sketches to a collector board on a cadence, the
/// collector prunes distant cross-shard pairs with a no-false-dismissal
/// distance bound, and surviving candidates are verified exactly
/// against the owning shards' raw windows. With `S = 1` the runtime is
/// exactly the paper's semantics on one core.
///
/// **Backpressure.** Per-shard queues are bounded at
/// [`RuntimeConfig::queue_capacity`] messages. `try_append` /
/// `try_submit` never block: a full queue returns [`QueueFull`] (or a
/// [`PartialSubmit`] remainder). `append_blocking` / `submit_blocking`
/// park the producer until the worker drains. Queries share the same
/// queues, so a query answered by a shard has observed every batch
/// submitted to that shard before it.
///
/// **Crash recovery.** With [`RuntimeConfig::recovery`] enabled (the
/// default), every batch is journaled before it is applied and each
/// shard's monitor is snapshotted on a configurable cadence. A
/// supervisor thread watches for dead workers; when one dies it
/// restores the monitor from the last snapshot, replays the journaled
/// suffix (suppressing the events the dead worker already delivered),
/// and spawns a replacement that resumes draining the *same* queue — no
/// queued batch or query is lost, no event is delivered twice, and the
/// recovered event stream is bit-identical to an unfaulted run.
pub struct ShardedRuntime {
    n_streams: usize,
    shared: Arc<Shared>,
    /// The collector receiver. `mpsc::Receiver` is `!Sync`, so it lives
    /// behind a mutex: the runtime itself is then `Sync` and a network
    /// front end can share one instance across handler threads while a
    /// single collector thread drains events. Each message is one commit
    /// group's events; `drain_events` flattens them in arrival order.
    events_rx: Mutex<Receiver<Vec<Event>>>,
    supervisor: Option<JoinHandle<()>>,
    finished: bool,
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("n_streams", &self.n_streams)
            .field("n_shards", &self.shared.n_shards)
            .field("recovery", &self.shared.recovery.is_some())
            .finish_non_exhaustive()
    }
}

impl ShardedRuntime {
    /// Launches workers for `n_streams` streams described by `spec`.
    ///
    /// # Errors
    /// Fails on zero streams, a spec with no query class, or a rejected
    /// trend pattern.
    pub fn launch(
        spec: &MonitorSpec,
        n_streams: usize,
        config: RuntimeConfig,
    ) -> Result<Self, RuntimeError> {
        if n_streams == 0 {
            return Err(RuntimeError::NoStreams);
        }
        let (n_shards, n_locals) = sizing(n_streams, config.shards);
        let mut monitors = Vec::with_capacity(n_shards);
        for &n_local in &n_locals {
            let mut monitor = spec.build(n_local)?;
            if let (Some(registry), Some(m)) = (&config.telemetry, monitor.as_mut()) {
                m.attach_telemetry(registry);
            }
            monitors.push(monitor);
        }
        let runtime_telemetry =
            config.telemetry.as_ref().map(RuntimeTelemetry::new).unwrap_or_default();

        let (events_tx, events_rx) = mpsc::channel();
        let with_recovery = config.recovery.is_some();
        let shared = Self::assemble(
            spec,
            n_locals,
            config,
            events_tx,
            runtime_telemetry,
            (0..n_shards).map(|_| Arc::new(ShardCounters::new())).collect(),
            with_recovery
                .then(|| (0..n_shards).map(|_| Arc::new(ShardRecovery::new(None))).collect()),
        );
        Self::start_workers(&shared, monitors.into_iter().map(|m| (m, 0)).collect())?;
        let supervisor = if with_recovery { Some(Self::start_supervisor(&shared)?) } else { None };
        Ok(ShardedRuntime {
            n_streams,
            shared,
            events_rx: Mutex::new(events_rx),
            supervisor,
            finished: false,
        })
    }

    /// Opens (or creates) a durable runtime backed by `persist.dir`.
    ///
    /// The directory is scanned shard by shard: snapshot and WAL
    /// checksums are validated, torn WAL tails are truncated, a corrupt
    /// current snapshot falls back to the previous generation, and the
    /// WAL suffix past the recovered snapshot is replayed through the
    /// restored monitors. Events the previous process had not yet
    /// delivered (per the WAL's ack records) are re-emitted and show up
    /// in the next [`Self::drain_events`]; delivered ones are
    /// suppressed. Each shard then rotates to a fresh snapshot
    /// generation and resumes journaling every batch to its
    /// `shard-N.wal`.
    ///
    /// Crash recovery is forced on (a durable runtime without a
    /// supervisor would lose the WAL's exactly-once arithmetic). The
    /// caller must open with the same spec and stream count the
    /// directory was written under — the shard-file layout is checked,
    /// the spec is not.
    ///
    /// # Errors
    /// [`RuntimeError::Recovery`] when the directory cannot be
    /// recovered exactly (see [`RecoveryError`] for the taxonomy), plus
    /// every error [`Self::launch`] can return.
    pub fn open(
        spec: &MonitorSpec,
        n_streams: usize,
        mut config: RuntimeConfig,
        persist: PersistConfig,
    ) -> Result<(Self, RecoveryReport), RuntimeError> {
        if n_streams == 0 {
            return Err(RuntimeError::NoStreams);
        }
        if config.recovery.is_none() {
            config.recovery = Some(RecoveryPolicy::default());
        }
        let (n_shards, n_locals) = sizing(n_streams, config.shards);
        let recovery_err = |e: RecoveryError| RuntimeError::Recovery(e);
        std::fs::create_dir_all(&persist.dir)
            .map_err(|e| recovery_err(RecoveryError::io(&persist.dir, e)))?;
        persist::check_shard_layout(&persist.dir, n_shards).map_err(recovery_err)?;
        let runtime_telemetry =
            config.telemetry.as_ref().map(RuntimeTelemetry::new).unwrap_or_default();
        let (events_tx, events_rx) = mpsc::channel();

        let mut seeds = Vec::with_capacity(n_shards);
        let mut recoveries = Vec::with_capacity(n_shards);
        let mut counters = Vec::with_capacity(n_shards);
        let mut report = RecoveryReport { shards: Vec::with_capacity(n_shards) };
        for shard in 0..n_shards {
            let span = runtime_telemetry.disk_recovery.span();
            persist::apply_open_faults(&persist.dir, shard, &config.fault_plan)
                .map_err(recovery_err)?;
            let rec = persist::recover_shard(&persist.dir, shard).map_err(recovery_err)?;
            // Build from the spec first — this validates the spec for
            // every shard even when a snapshot overrides the state.
            let mut monitor = spec.build(n_locals[shard])?;
            if let Some(bytes) = &rec.snapshot {
                let restored = UnifiedMonitor::restore(bytes).map_err(|_| {
                    recovery_err(RecoveryError::CorruptSnapshot {
                        path: persist::ShardPaths::new(&persist.dir, shard).snap,
                        detail: "checksummed monitor payload failed to decode \
                                 (spec or version mismatch?)",
                    })
                })?;
                monitor = Some(restored);
            }
            // Replay the WAL suffix. The first `already` regenerated
            // events were delivered (and acked) by the previous process;
            // the rest go to the collector now.
            let already = rec.last_ack - rec.emitted_at_snapshot;
            let mut regenerated = 0u64;
            let mut re_emitted = 0u64;
            if let Some(monitor) = monitor.as_mut() {
                let mut buf = Vec::new();
                let mut resend = Vec::new();
                for &(local, value) in &rec.suffix {
                    buf.clear();
                    monitor.append_into(local, value, &mut buf);
                    for ev in buf.drain(..) {
                        regenerated += 1;
                        if regenerated > already {
                            resend.push(remap_event(shard, n_shards, ev));
                        }
                    }
                }
                if !resend.is_empty() {
                    re_emitted = resend.len() as u64;
                    let _ = events_tx.send(resend);
                }
            }
            runtime_telemetry.replayed.add(rec.suffix.len() as u64);
            if rec.truncated_bytes > 0 {
                runtime_telemetry.torn_truncations.inc();
            }
            if rec.used_fallback {
                runtime_telemetry.snapshot_fallbacks.inc();
            }
            // The replay ran detached; attach for the live phase.
            if let (Some(registry), Some(m)) = (&config.telemetry, monitor.as_mut()) {
                m.attach_telemetry(registry);
            }
            let durable_appends = rec.snapshot_appends + rec.suffix.len() as u64;
            let emitted = rec.emitted_at_snapshot + regenerated.max(already);
            let snap_bytes = monitor.as_ref().map(|m| m.snapshot());
            let disk = persist::ShardDisk::create(
                &persist.dir,
                shard,
                persist.sync,
                config.fault_plan.clone(),
                runtime_telemetry.clone(),
                rec.max_gen,
                durable_appends,
                emitted,
                snap_bytes.as_deref(),
            )
            .map_err(|e| recovery_err(RecoveryError::io(&persist.dir, e)))?;
            drop(span);
            report.shards.push(ShardRecoveryReport {
                shard,
                durable_appends,
                replayed: rec.suffix.len() as u64,
                re_emitted,
                suppressed: already.min(regenerated),
                truncated_bytes: rec.truncated_bytes,
                used_fallback: rec.used_fallback,
                generation: disk.generation(),
            });
            let shard_counters = Arc::new(ShardCounters::new());
            shard_counters.appends.store(durable_appends, Ordering::Relaxed);
            shard_counters.events.store(emitted, Ordering::Relaxed);
            counters.push(shard_counters);
            recoveries.push(Arc::new(ShardRecovery::resumed(
                snap_bytes,
                durable_appends,
                emitted,
                Some(disk),
            )));
            seeds.push((monitor, durable_appends));
        }

        let shared = Self::assemble(
            spec,
            n_locals,
            config,
            events_tx,
            runtime_telemetry,
            counters,
            Some(recoveries),
        );
        Self::start_workers(&shared, seeds)?;
        let supervisor = Some(Self::start_supervisor(&shared)?);
        let rt = ShardedRuntime {
            n_streams,
            shared,
            events_rx: Mutex::new(events_rx),
            supervisor,
            finished: false,
        };
        Ok((rt, report))
    }

    /// Builds the shared state common to [`Self::launch`] and
    /// [`Self::open`].
    fn assemble(
        spec: &MonitorSpec,
        n_locals: Vec<usize>,
        config: RuntimeConfig,
        events_tx: Sender<Vec<Event>>,
        runtime_telemetry: RuntimeTelemetry,
        counters: Vec<Arc<ShardCounters>>,
        recovery: Option<Vec<Arc<ShardRecovery>>>,
    ) -> Arc<Shared> {
        let n_shards = n_locals.len();
        let n_streams: usize = n_locals.iter().sum();
        let queue_capacity = config.queue_capacity.max(1);
        Arc::new(Shared {
            spec: spec.clone(),
            n_shards,
            n_locals,
            snapshot_every: config.recovery.map(|r| r.snapshot_every).unwrap_or(0),
            fault_plan: config.fault_plan,
            telemetry: config.telemetry,
            runtime_telemetry,
            queues: (0..n_shards).map(|_| Arc::new(BoundedQueue::new(queue_capacity))).collect(),
            counters,
            sketches: Arc::new(SketchBoard::new(n_streams)),
            sketch_cadence: config.sketch_cadence,
            intra_query_threads: pool::resolve_threads(config.intra_query_threads),
            recovery,
            board: Arc::new(Board::new(n_shards)),
            handles: Mutex::new((0..n_shards).map(|_| None).collect()),
            events_tx: Mutex::new(Some(events_tx)),
        })
    }

    fn start_workers(
        shared: &Arc<Shared>,
        seeds: Vec<(Option<UnifiedMonitor>, u64)>,
    ) -> Result<(), RuntimeError> {
        for (shard, (monitor, processed)) in seeds.into_iter().enumerate() {
            match shared.spawn_worker(shard, monitor, processed) {
                Ok(handle) => {
                    shared.handles.lock().expect("handles poisoned")[shard] = Some(handle)
                }
                Err(e) => {
                    // Unblock the workers already spawned; they drain
                    // nothing and exit.
                    for queue in &shared.queues {
                        queue.close();
                    }
                    return Err(RuntimeError::Spawn(e));
                }
            }
        }
        Ok(())
    }

    fn start_supervisor(shared: &Arc<Shared>) -> Result<JoinHandle<()>, RuntimeError> {
        let sup = Arc::clone(shared);
        std::thread::Builder::new()
            .name("stardust-supervisor".to_string())
            .spawn(move || {
                while let Some(shard) = sup.board.next_dead() {
                    sup.restore_shard(shard);
                }
            })
            .map_err(|e| {
                for queue in &shared.queues {
                    queue.close();
                }
                shared.board.begin_shutdown();
                RuntimeError::Spawn(e)
            })
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.shared.n_shards
    }

    /// Number of monitored streams.
    pub fn n_streams(&self) -> usize {
        self.n_streams
    }

    /// Total worker restarts performed by the supervisor so far.
    pub fn restarts(&self) -> u64 {
        match &self.shared.recovery {
            None => 0,
            Some(recs) => recs.iter().map(|r| r.restarts()).sum(),
        }
    }

    fn place(&self, stream: StreamId) -> Result<(usize, StreamId), RuntimeError> {
        if (stream as usize) < self.n_streams {
            let s = self.n_shards();
            Ok((stream as usize % s, stream / s as StreamId))
        } else {
            Err(RuntimeError::UnknownStream { stream, n_streams: self.n_streams })
        }
    }

    /// Appends one value without blocking.
    ///
    /// # Errors
    /// [`RuntimeError::Backpressure`] when the owning shard's queue is
    /// full (the value is *not* enqueued; retry or use
    /// [`Self::append_blocking`]), [`RuntimeError::UnknownStream`] on an
    /// out-of-range id.
    pub fn try_append(&self, stream: StreamId, value: f64) -> Result<(), RuntimeError> {
        let (shard, local) = self.place(stream)?;
        let msg = ShardMsg::Batch(vec![(local, value)], Instant::now());
        self.shared.counters[shard].note_enqueued();
        match self.shared.queues[shard].try_push(msg) {
            Ok(()) => Ok(()),
            Err(PushError::Full(_)) => {
                self.shared.counters[shard].undo_enqueued();
                Err(RuntimeError::Backpressure(QueueFull))
            }
            Err(PushError::Closed(_)) => {
                self.shared.counters[shard].undo_enqueued();
                Err(RuntimeError::Disconnected)
            }
        }
    }

    /// Appends one value, waiting while the owning shard's queue is
    /// full.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownStream`] on an out-of-range id,
    /// [`RuntimeError::Disconnected`] if the shard failed terminally.
    pub fn append_blocking(&self, stream: StreamId, value: f64) -> Result<(), RuntimeError> {
        let (shard, local) = self.place(stream)?;
        self.shared.counters[shard].note_enqueued();
        self.shared.queues[shard]
            .push(ShardMsg::Batch(vec![(local, value)], Instant::now()))
            .map_err(|_| {
                self.shared.counters[shard].undo_enqueued();
                RuntimeError::Disconnected
            })?;
        Ok(())
    }

    fn split(&self, batch: &Batch) -> Result<Vec<Vec<(StreamId, f64)>>, RuntimeError> {
        let mut per_shard: Vec<Vec<(StreamId, f64)>> = vec![Vec::new(); self.n_shards()];
        for &(stream, value) in &batch.items {
            let (shard, local) = self.place(stream)?;
            per_shard[shard].push((local, value));
        }
        Ok(per_shard)
    }

    /// Submits a batch, waiting on full queues. Values are split into
    /// one message per involved shard; per-stream order is preserved.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownStream`] on any out-of-range id (nothing
    /// is enqueued), [`RuntimeError::Disconnected`] if a shard failed
    /// terminally.
    pub fn submit_blocking(&self, batch: &Batch) -> Result<(), RuntimeError> {
        let now = Instant::now();
        for (shard, items) in self.split(batch)?.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            self.shared.counters[shard].note_enqueued();
            self.shared.queues[shard].push(ShardMsg::Batch(items, now)).map_err(|_| {
                self.shared.counters[shard].undo_enqueued();
                RuntimeError::Disconnected
            })?;
        }
        Ok(())
    }

    /// Submits a batch without blocking. Sub-batches for shards with
    /// room are enqueued; the rest is returned for retry.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownStream`] on any out-of-range id (nothing
    /// is enqueued); otherwise `Ok` with an optional [`PartialSubmit`]
    /// remainder — `None` means everything was enqueued.
    pub fn try_submit(&self, batch: &Batch) -> Result<Option<PartialSubmit>, RuntimeError> {
        let now = Instant::now();
        let mut rejected = Batch::new();
        let mut accepted = 0usize;
        for (shard, items) in self.split(batch)?.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let n = items.len();
            self.shared.counters[shard].note_enqueued();
            match self.shared.queues[shard].try_push(ShardMsg::Batch(items, now)) {
                Ok(()) => {
                    accepted += n;
                }
                Err(PushError::Full(ShardMsg::Batch(items, _))) => {
                    self.shared.counters[shard].undo_enqueued();
                    let s = self.n_shards() as StreamId;
                    rejected.items.extend(
                        items.into_iter().map(|(local, v)| (local * s + shard as StreamId, v)),
                    );
                }
                Err(PushError::Full(_)) => unreachable!("only batches are retried"),
                Err(PushError::Closed(_)) => {
                    self.shared.counters[shard].undo_enqueued();
                    return Err(RuntimeError::Disconnected);
                }
            }
        }
        if rejected.is_empty() {
            Ok(None)
        } else {
            Ok(Some(PartialSubmit { rejected, accepted }))
        }
    }

    /// Every event collected so far, in collector arrival order
    /// (interleaved across shards; per-stream order is preserved —
    /// groups arrive whole, so flattening them preserves each shard's
    /// emission order). Concurrent callers serialize on the collector
    /// receiver; each event is delivered to exactly one of them.
    pub fn drain_events(&self) -> Vec<Event> {
        self.events_rx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .try_iter()
            .flatten()
            .collect()
    }

    /// A live counter snapshot (racy by one message against in-flight
    /// producers, by design).
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats { shards: self.shared.counters.iter().map(|c| c.snapshot()).collect() }
    }

    fn scatter(&self, req: QueryRequest) -> Result<Vec<QueryReply>, RuntimeError> {
        let (tx, rx) = mpsc::channel();
        for queue in &self.shared.queues {
            queue
                .push(ShardMsg::Query(req.clone(), tx.clone()))
                .map_err(|_| RuntimeError::Disconnected)?;
        }
        drop(tx);
        let mut replies: Vec<(usize, QueryReply)> = Vec::with_capacity(self.n_shards());
        for _ in 0..self.n_shards() {
            // A worker crash cannot lose the query: it stays in the
            // shared queue and the restored worker answers it.
            replies.push(rx.recv().map_err(|_| RuntimeError::Disconnected)?);
        }
        replies.sort_by_key(|&(shard, _)| shard);
        Ok(replies.into_iter().map(|(_, r)| r).collect())
    }

    /// The current composed interval of one monitored aggregate window
    /// on one stream (routed to the owning shard; waits for queued
    /// batches ahead of it).
    ///
    /// # Errors
    /// [`RuntimeError::UnknownStream`] / [`RuntimeError::Disconnected`].
    pub fn aggregate_interval(
        &self,
        stream: StreamId,
        window: usize,
    ) -> Result<Option<(f64, f64)>, RuntimeError> {
        let (shard, local) = self.place(stream)?;
        let (tx, rx) = mpsc::channel();
        self.shared.queues[shard]
            .push(ShardMsg::Query(QueryRequest::AggregateInterval { stream: local, window }, tx))
            .map_err(|_| RuntimeError::Disconnected)?;
        match rx.recv().map_err(|_| RuntimeError::Disconnected)? {
            (_, QueryReply::AggregateInterval(ans)) => Ok(ans),
            _ => Err(RuntimeError::Disconnected),
        }
    }

    /// Cumulative per-class counters, merged across all shards
    /// (scatter-gather).
    ///
    /// # Errors
    /// [`RuntimeError::Disconnected`] if a shard failed terminally.
    pub fn class_stats(&self) -> Result<ClassStats, RuntimeError> {
        let mut merged = ClassStats::default();
        for reply in self.scatter(QueryRequest::ClassStats)? {
            if let QueryReply::ClassStats(s) = reply {
                merged.merge(&s);
            }
        }
        Ok(merged)
    }

    /// Currently correlated pairs among **all** streams — same-shard and
    /// cross-shard — sorted by `(a, b)`.
    ///
    /// The result is set-identical to a single-threaded
    /// [`stardust_core::query::correlation::CorrelationMonitor::linear_scan_pairs`]
    /// over all streams at the global instant `t* = min` over every
    /// stream's correlation clock (queried under quiescence; concurrent
    /// ingest between the clock and verification phases can expire
    /// windows and drop pairs, exactly as it would invalidate any
    /// point-in-time answer).
    ///
    /// Three phases:
    /// 1. **Clock scatter** establishes `t*`. Any stream without a full
    ///    window yet ⇒ empty result (the reference behaves identically).
    /// 2. **Sketch prune**: cross-shard pairs whose board sketches are
    ///    complete, aligned at `t*`, and whose projection lower bound
    ///    exceeds `radius + PRUNE_SLACK` are dismissed — provably
    ///    outside the radius (no false dismissals; see
    ///    [`stardust_core::sketch`]). Stale or missing sketches are
    ///    never pruned on, only verified.
    /// 3. **Verify scatter** fetches each shard's exact same-shard pairs
    ///    at `t*` plus the raw windows of surviving candidates; the
    ///    collector confirms candidates with the exact z-normed
    ///    distance.
    ///
    /// # Errors
    /// [`RuntimeError::Disconnected`] if a shard failed terminally.
    pub fn correlated_pairs(&self) -> Result<Vec<(StreamId, StreamId, f64)>, RuntimeError> {
        let Some(corr_spec) = self.shared.spec.correlation.clone() else {
            return Ok(Vec::new());
        };

        // Phase 1: global verification instant.
        let mut clocks = Vec::with_capacity(self.n_streams);
        for reply in self.scatter(QueryRequest::CorrClock)? {
            if let QueryReply::CorrClock(c) = reply {
                clocks.extend(c);
            }
        }
        let Some(t) = clocks.iter().copied().min().flatten() else {
            return Ok(Vec::new());
        };

        // Phase 2: prune cross-shard pairs on the sketch board. A pair
        // is pruned only when both mirrors are complete windows ending
        // exactly at t* — anything stale goes to exact verification.
        // Each mirror is projected once (Θ(m), amortizing the moment
        // normalization out of the O(n²) pair loop), and the pair rows
        // fan out across the intra-query pool; rows merge in row order,
        // so the candidate list is identical to the serial nested loop
        // at every thread count.
        let mirrors = self.shared.sketches.mirrors();
        let s = self.n_shards();
        let radius = corr_spec.radius;
        let projections: Vec<Option<SketchProjection>> = mirrors
            .iter()
            .map(|m| m.as_ref().and_then(|sk| sk.projection()).filter(|p| p.end_time() == t))
            .collect();
        let rows: Vec<usize> = (0..self.n_streams).collect();
        let row_results = pool::parallel_map(&rows, self.shared.intra_query_threads, |&a| {
            let mut row_candidates: Vec<(StreamId, StreamId)> = Vec::new();
            let mut row_pruned = 0u64;
            for b in (a + 1)..self.n_streams {
                if a % s == b % s {
                    continue; // same shard: covered by the exact scan below
                }
                let bound = match (&projections[a], &projections[b]) {
                    (Some(pa), Some(pb)) => pa.distance_lower_bound(pb),
                    _ => None,
                };
                if bound.is_some_and(|lb| lb > radius + PRUNE_SLACK) {
                    row_pruned += 1;
                } else {
                    row_candidates.push((a as StreamId, b as StreamId));
                }
            }
            (row_candidates, row_pruned)
        });
        let mut candidates: Vec<(StreamId, StreamId)> = Vec::new();
        let mut pruned = 0u64;
        for (row_candidates, row_pruned) in row_results {
            candidates.extend(row_candidates);
            pruned += row_pruned;
        }
        self.shared.sketches.pruned.fetch_add(pruned, Ordering::Relaxed);
        self.shared.sketches.candidates.fetch_add(candidates.len() as u64, Ordering::Relaxed);
        self.shared.runtime_telemetry.cross_pruned.add(pruned);
        self.shared.runtime_telemetry.cross_candidates.add(candidates.len() as u64);

        // Phase 3: exact same-shard pairs at t* plus the raw windows of
        // every candidate. Requests differ per shard, so this is a
        // custom scatter.
        let mut windows_for: Vec<Vec<StreamId>> = vec![Vec::new(); s];
        for &(a, b) in &candidates {
            for g in [a, b] {
                windows_for[g as usize % s].push(g / s as StreamId);
            }
        }
        for locals in &mut windows_for {
            locals.sort_unstable();
            locals.dedup();
        }
        let (tx, rx) = mpsc::channel();
        for (shard, queue) in self.shared.queues.iter().enumerate() {
            let req = QueryRequest::CorrVerify {
                t,
                windows_for: std::mem::take(&mut windows_for[shard]),
            };
            queue.push(ShardMsg::Query(req, tx.clone())).map_err(|_| RuntimeError::Disconnected)?;
        }
        drop(tx);
        let mut merged = Vec::new();
        let mut windows: std::collections::HashMap<StreamId, Option<Vec<f64>>> =
            std::collections::HashMap::new();
        for _ in 0..s {
            let (_, reply) = rx.recv().map_err(|_| RuntimeError::Disconnected)?;
            if let QueryReply::CorrVerify { pairs, windows: w } = reply {
                merged.extend(pairs);
                windows.extend(w);
            }
        }
        // Verify candidates on the pool: each fetched window is
        // z-normalized once, and every pair is evaluated on the
        // normalized vectors in candidate order — bit-identical to
        // serially correlating the raw windows pair by pair, because
        // `z_norm` is deterministic and the fan-out merges positionally.
        let znormed: std::collections::HashMap<StreamId, Vec<f64>> = windows
            .iter()
            .filter_map(|(&g, w)| Some((g, normalize::z_norm(w.as_deref()?)?)))
            .collect();
        let verdicts =
            pool::parallel_map(&candidates, self.shared.intra_query_threads, |&(a, b)| {
                // A missing window (expired) or undefined z-norm
                // (constant window) skips the pair, as the reference
                // linear scan does.
                let (za, zb) = (znormed.get(&a)?, znormed.get(&b)?);
                let corr = normalize::correlation_of_znormed(za, zb);
                (normalize::correlation_to_distance(corr) <= radius).then_some((a, b, corr))
            });
        let mut confirmed = 0u64;
        for (a, b, corr) in verdicts.into_iter().flatten() {
            merged.push((a, b, corr));
            confirmed += 1;
        }
        self.shared.sketches.confirmed.fetch_add(confirmed, Ordering::Relaxed);
        self.shared.runtime_telemetry.cross_confirmed.add(confirmed);
        merged.sort_by_key(|x| (x.0, x.1));
        Ok(merged)
    }

    /// Cumulative cross-shard correlation-path counters: sketch
    /// publications absorbed by the collector board and the fate of
    /// every cross-shard pair [`Self::correlated_pairs`] has considered.
    pub fn cross_corr_stats(&self) -> CrossCorrStats {
        let b = &self.shared.sketches;
        CrossCorrStats {
            exchanges: b.exchanges.load(Ordering::Relaxed),
            candidates: b.candidates.load(Ordering::Relaxed),
            pruned: b.pruned.load(Ordering::Relaxed),
            confirmed: b.confirmed.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: queued batches are fully drained (crashed
    /// shards are restored one last time to finish their queues),
    /// workers and the supervisor join, and the final stats plus all
    /// undrained events are returned.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.finish(true);
        let events: Vec<Event> = self.drain_events();
        ShutdownReport { stats: self.stats(), events }
    }

    /// Abrupt teardown for crash drills: queues are closed instead of
    /// receiving `Shutdown` markers, so producers racing this call see
    /// [`RuntimeError::Disconnected`] rather than parking. Already
    /// queued batches still drain (they were accepted), wedged shards
    /// stay down, and whatever events were collected are returned. With
    /// persistence this exercises exactly the state a process kill
    /// leaves behind — the WAL's durable watermark, not the producers'
    /// view — which [`Self::open`] must then recover.
    pub fn crash(mut self) -> ShutdownReport {
        self.finish(false);
        let events: Vec<Event> = self.drain_events();
        ShutdownReport { stats: self.stats(), events }
    }

    /// Common teardown. `graceful` sends `Shutdown` markers (workers
    /// drain everything queued before them); the abrupt path closes the
    /// queues instead, which also drains what is already queued but
    /// refuses new messages.
    fn finish(&mut self, graceful: bool) {
        if self.finished {
            return;
        }
        self.finished = true;
        if graceful {
            for queue in &self.shared.queues {
                // Err means the shard failed terminally; it settled.
                let _ = queue.push(ShardMsg::Shutdown);
            }
        } else {
            for queue in &self.shared.queues {
                queue.close();
            }
        }
        // The supervisor keeps restoring crashed workers while this
        // waits, so a shard that dies with messages still queued gets a
        // fresh worker to finish the drain.
        self.shared.board.wait_all_settled();
        self.shared.board.begin_shutdown();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut slots = self.shared.handles.lock().expect("handles poisoned");
            slots.iter_mut().filter_map(|slot| slot.take()).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        // Last sender gone: the receiver sees disconnect after the
        // buffered events.
        *self.shared.events_tx.lock().expect("events sender poisoned") = None;
    }
}

impl Drop for ShardedRuntime {
    fn drop(&mut self) {
        self.finish(false);
    }
}

// A network front end shares one runtime across connection-handler
// threads: `&ShardedRuntime` must be sendable to all of them.
const _: fn() = || {
    fn _assert_sync<T: Send + Sync>() {}
    _assert_sync::<ShardedRuntime>();
};

/// Sorts events into a canonical total order: by query class, then
/// stream(s), then time, then the class-specific payload. Two event
/// multisets are equal iff they compare equal after this sort —
/// used to check sharded against single-threaded execution.
pub fn sort_events(events: &mut [Event]) {
    fn key(e: &Event) -> (u8, u64, u64, u64, u64, u64) {
        match e {
            Event::Aggregate { stream, alarm } => (
                0,
                *stream as u64,
                alarm.time,
                alarm.window as u64,
                alarm.true_value.to_bits(),
                alarm.is_true_alarm as u64,
            ),
            Event::Trend(m) => {
                (1, m.stream as u64, m.time, m.pattern as u64, m.distance.to_bits(), 0)
            }
            Event::Correlation(p) => {
                (2, p.a as u64, p.time, p.b as u64, p.time_other, p.feature_distance.to_bits())
            }
        }
    }
    events.sort_by_key(key);
}
