//! The sharded runtime: stream partitioning, bounded-queue ingestion
//! with backpressure, scatter-gather queries, supervised crash
//! recovery, elastic shard split/merge with exactly-once live
//! migration, and drain-then-join shutdown.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stardust_core::normalize;
use stardust_core::sketch::{SketchProjection, PRUNE_SLACK};
use stardust_core::stream::StreamId;
use stardust_core::unified::{Event, UnifiedMonitor};

use crate::fault::FaultPlan;
use crate::persist::{self, PersistConfig, RecoveryError, RecoveryReport, ShardRecoveryReport};
use crate::pool;
use crate::queue::{AdmitError, BoundedQueue, TryAdmitError};
use crate::routing::{GroupRoute, Routing};
use crate::shard::{
    remap_event, Board, DeathNotice, GroupState, QueryReply, QueryRequest, ShardMsg, SketchBoard,
    Worker,
};
use crate::snapshot::ShardRecovery;
use crate::spec::MonitorSpec;
use crate::stats::{CrossCorrStats, RuntimeStats, ShardCounters};
use crate::telemetry::RuntimeTelemetry;
use crate::{ClassStats, RuntimeError};

/// Worker-slot count, group count, and per-group stream counts for
/// `n_streams` streams. Streams with `g mod n_groups == group` live in
/// `group`; groups are placed on worker slots by the routing table
/// (initially `group mod n_shards`) and move between slots at runtime.
fn sizing(n_streams: usize, shards: usize, groups: usize) -> (usize, usize, Vec<usize>) {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let n_shards = if shards == 0 { hw } else { shards }.min(n_streams).max(1);
    let n_groups = if groups == 0 { n_shards } else { groups }.min(n_streams).max(1);
    let n_locals = (0..n_groups).map(|group| (n_streams - group).div_ceil(n_groups)).collect();
    (n_shards, n_groups, n_locals)
}

/// One rebalancing move chosen (and already executed) by
/// [`ShardedRuntime::rebalance_step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebalanceAction {
    /// Groups moved off a hot slot onto an idle one.
    Split {
        /// The overloaded source slot.
        from: usize,
        /// The previously idle destination slot.
        to: usize,
        /// The groups that moved.
        groups: Vec<usize>,
    },
    /// A cold slot drained into a sibling and retired.
    Merge {
        /// The cold source slot (owns nothing afterwards).
        from: usize,
        /// The slot that absorbed its groups.
        into: usize,
        /// The groups that moved.
        groups: Vec<usize>,
    },
}

/// The bounded per-shard queue rejected a message; retry later or use a
/// blocking variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("shard queue full")
    }
}

impl std::error::Error for QueueFull {}

/// A group of values for ingestion, each tagged with its (global)
/// stream. Values of one stream are applied in batch order.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    items: Vec<(StreamId, f64)>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// Appends one value for one stream.
    pub fn push(&mut self, stream: StreamId, value: f64) {
        self.items.push((stream, value));
    }

    /// Number of values in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// The batched `(stream, value)` pairs, in push order.
    pub fn items(&self) -> &[(StreamId, f64)] {
        &self.items
    }

    /// Whether the batch holds no values.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl FromIterator<(StreamId, f64)> for Batch {
    fn from_iter<I: IntoIterator<Item = (StreamId, f64)>>(iter: I) -> Self {
        Batch { items: iter.into_iter().collect() }
    }
}

/// `try_submit` could not enqueue everything; `rejected` holds the
/// unqueued remainder (per-stream order preserved) for retry.
#[derive(Debug, Clone)]
pub struct PartialSubmit {
    /// Values that were not enqueued.
    pub rejected: Batch,
    /// Values that were enqueued before the first full queue.
    pub accepted: usize,
}

/// Crash-recovery tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Snapshot each shard's monitor after this many journaled appends;
    /// crash recovery then replays at most this many values. `0` never
    /// snapshots — recovery replays the shard's entire input from the
    /// journal (simplest, but the journal grows without bound).
    pub snapshot_every: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { snapshot_every: 1024 }
    }
}

/// Runtime tuning knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker shards. `0` means one per available CPU. Clamped to the
    /// stream count (an empty shard serves nothing).
    pub shards: usize,
    /// Stream groups — the unit of elastic rebalancing. Streams are
    /// partitioned `stream mod groups`; each group is owned by exactly
    /// one worker slot and can migrate between slots at runtime
    /// ([`ShardedRuntime::split_shard`] / [`ShardedRuntime::merge_shard`]).
    /// `0` — the default — means one group per shard, which pins the
    /// placement to the classic `stream mod shards` layout (bit-identical
    /// to the pre-elastic runtime, but with nothing to split). Set it
    /// above `shards` to give the runtime room to rebalance.
    pub groups: usize,
    /// Extra worker slots spawned at launch beyond `shards`, idle until
    /// a split moves groups onto them. Split destinations must be
    /// pre-spawned: migration hands state over through queues, not by
    /// creating threads mid-protocol.
    pub spare_shards: usize,
    /// Respawn-storm cap: if one worker slot restarts more than this
    /// many times within [`Self::restart_window`], the supervisor stops
    /// restarting it and fails the slot for good — producers get
    /// [`RuntimeError::RespawnStorm`] instead of an unbounded
    /// crash/restore loop.
    pub max_restarts_in_window: u32,
    /// Sliding window for [`Self::max_restarts_in_window`].
    pub restart_window: Duration,
    /// Bounded queue capacity per shard, in messages (batches), not
    /// values. When a queue is full, `try_*` reports [`QueueFull`] and
    /// the blocking variants wait — that is the backpressure contract.
    pub queue_capacity: usize,
    /// Crash recovery. `Some` (the default) journals every batch,
    /// snapshots on the policy's cadence, and runs a supervisor thread
    /// that restores crashed shard workers with exactly-once event
    /// delivery. `None` disables all of it: a crashed shard is terminal
    /// and its producers see [`RuntimeError::Disconnected`].
    pub recovery: Option<RecoveryPolicy>,
    /// Deterministic fault injection (tests, chaos drills). `None` — the
    /// default — costs one pointer check per append.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Metrics registry. `Some` wires every shard's monitor, the batch
    /// latency path, and the recovery machinery into the registry (see
    /// DESIGN.md §Observability for the series catalogue); restored
    /// workers are re-attached automatically after a crash. `None` — the
    /// default — leaves every handle detached: one branch per would-be
    /// sample.
    pub telemetry: Option<stardust_telemetry::Registry>,
    /// Sketch-exchange cadence for the cross-shard correlation path, in
    /// sealed sketch blocks: each shard re-publishes its streams'
    /// sliding-window sketches to the collector board once its slowest
    /// local stream has sealed this many new blocks. `0` disables the
    /// exchange — [`ShardedRuntime::correlated_pairs`] stays exact but
    /// verifies every cross-shard pair without sketch pruning.
    pub sketch_cadence: u64,
    /// Collector-side workers for the pruning and verification phases of
    /// [`ShardedRuntime::correlated_pairs`]. `1` — the default — runs them
    /// on the querying thread; `0` means one per available CPU. Results
    /// are bit-identical at every setting (see [`crate::pool`]): the work
    /// is split into contiguous runs merged positionally, so only
    /// wall-clock time changes.
    pub intra_query_threads: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            shards: 0,
            groups: 0,
            spare_shards: 0,
            max_restarts_in_window: 64,
            restart_window: Duration::from_secs(10),
            queue_capacity: 64,
            recovery: Some(RecoveryPolicy::default()),
            fault_plan: None,
            telemetry: None,
            sketch_cadence: 1,
            intra_query_threads: 1,
        }
    }
}

/// Result of [`ShardedRuntime::shutdown`]: final counters plus every
/// event not yet drained.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final per-shard counters.
    pub stats: RuntimeStats,
    /// Events emitted after the last `drain_events` call, in collector
    /// arrival order.
    pub events: Vec<Event>,
}

/// State shared by producers, workers, the supervisor, and the
/// migration coordinator. Everything a restored worker needs to resume
/// a dead slot lives here.
struct Shared {
    spec: MonitorSpec,
    /// Worker slots (`shards + spare_shards`), all spawned at launch.
    n_workers: usize,
    /// Stream groups — the routing modulus.
    n_groups: usize,
    /// Streams per group.
    n_locals: Vec<usize>,
    snapshot_every: u64,
    fault_plan: Option<Arc<FaultPlan>>,
    /// Registry monitors re-attach to after a crash restore; `None`
    /// when telemetry is off.
    telemetry: Option<stardust_telemetry::Registry>,
    /// Runtime-level handles (batch latency, recovery timings); fully
    /// detached when telemetry is off.
    runtime_telemetry: RuntimeTelemetry,
    /// Per-slot queues. They live outside any worker so a worker crash
    /// loses no queued message — the restored worker resumes draining.
    queues: Vec<Arc<BoundedQueue<ShardMsg>>>,
    /// Per-slot queue capacity, for the rebalance policy's depth signal.
    queue_capacity: usize,
    counters: Vec<Arc<ShardCounters>>,
    /// Epoch-versioned group→slot routing table.
    routing: Arc<Routing>,
    /// Serializes migrations: one group moves at a time, so the
    /// freeze/seal/adopt/promote window never overlaps another's.
    migration: Mutex<()>,
    /// Completed migrations (splits and merges both count per group).
    migrations: AtomicU64,
    /// Per-slot append counts at the last `rebalance_step`, for the
    /// append-rate half of the policy signal.
    last_appends: Mutex<Vec<u64>>,
    /// Slots the supervisor fail-stopped for restarting too fast,
    /// with the restart count that tripped the cap.
    storms: Mutex<Vec<(usize, u32)>>,
    /// Per-slot restart timestamps inside the storm window.
    restart_history: Mutex<Vec<VecDeque<Instant>>>,
    max_restarts_in_window: u32,
    restart_window: Duration,
    /// Collector-side sketch mirrors for the cross-shard correlation
    /// path, keyed by global stream id.
    sketches: Arc<SketchBoard>,
    /// Sketch-exchange cadence in sealed blocks (`0` = disabled).
    sketch_cadence: u64,
    /// Resolved collector-side worker count for query fan-out (≥ 1).
    intra_query_threads: usize,
    /// Per-**group** recovery journals (a group's journal travels with
    /// it across slots); `None` when recovery is disabled.
    recovery: Option<Vec<Arc<ShardRecovery>>>,
    board: Arc<Board>,
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// The collector sender respawned workers clone; dropped (set to
    /// `None`) once every worker has joined so the receiver disconnects.
    /// Carries one `Vec<Event>` per commit group (bulk delivery), not
    /// one message per event.
    events_tx: Mutex<Option<Sender<Vec<Event>>>>,
}

impl Shared {
    fn spawn_worker(
        self: &Arc<Self>,
        slot: usize,
        groups: BTreeMap<usize, GroupState>,
        processed: u64,
    ) -> std::io::Result<JoinHandle<()>> {
        let events = self
            .events_tx
            .lock()
            .expect("events sender poisoned")
            .clone()
            .expect("worker spawned after shutdown");
        let worker = Worker {
            slot,
            n_groups: self.n_groups,
            groups,
            inbox: Arc::clone(&self.queues[slot]),
            events,
            counters: Arc::clone(&self.counters[slot]),
            faults: self.fault_plan.clone(),
            processed,
            snapshot_every: self.snapshot_every,
            sketches: Arc::clone(&self.sketches),
            sketch_cadence: self.sketch_cadence,
            routing: Arc::clone(&self.routing),
            telemetry: self.runtime_telemetry.clone(),
        };
        let board = Arc::clone(&self.board);
        // Without a supervisor a death is terminal: the dying worker
        // must close its queue so producers fail fast instead of
        // parking forever.
        let close_on_death =
            if self.recovery.is_none() { Some(Arc::clone(&self.queues[slot])) } else { None };
        std::thread::Builder::new().name(format!("stardust-shard-{slot}")).spawn(move || {
            let mut notice = DeathNotice { shard: slot, board, clean: false, close_on_death };
            worker.run(&mut notice);
        })
    }

    /// Fail-stops a slot for good: queue closed (producers unpark into
    /// an error), board told, every route through the slot poisoned.
    fn fail_slot(&self, slot: usize, storm_restarts: Option<u32>) {
        if let Some(restarts) = storm_restarts {
            self.storms.lock().unwrap_or_else(PoisonError::into_inner).push((slot, restarts));
        }
        self.queues[slot].close();
        self.board.mark_failed(slot);
        self.routing.mark_worker_failed(slot);
    }

    /// The error producers see for a permanently failed route: a
    /// respawn storm if the supervisor tripped the cap, otherwise plain
    /// disconnection.
    fn route_failed_error(&self) -> RuntimeError {
        let storms = self.storms.lock().unwrap_or_else(PoisonError::into_inner);
        match storms.first() {
            Some(&(shard, restarts)) => RuntimeError::RespawnStorm { shard, restarts },
            None => RuntimeError::Disconnected,
        }
    }

    /// Supervisor path: joins the dead worker, rebuilds every group the
    /// slot still owes state for from the groups' journals (replaying
    /// undelivered events), and spawns a replacement that resumes
    /// draining the same queue. The respawn set is routing-derived: it
    /// heals deaths mid-migration by re-pushing consumed-but-unsealed
    /// `MigrateOut` markers and re-rebuilding adopted-but-unpromoted
    /// groups from their journals.
    fn restore_shard(self: &Arc<Self>, slot: usize) {
        if let Some(handle) = self.handles.lock().expect("handles poisoned")[slot].take() {
            let _ = handle.join();
        }
        // Respawn-storm cap: a slot that keeps dying faster than the
        // window allows is failed for good rather than looped forever.
        {
            let mut history = self.restart_history.lock().unwrap_or_else(PoisonError::into_inner);
            let now = Instant::now();
            let h = &mut history[slot];
            h.push_back(now);
            while h.front().is_some_and(|&t| now.duration_since(t) > self.restart_window) {
                h.pop_front();
            }
            if h.len() as u32 > self.max_restarts_in_window {
                let restarts = h.len() as u32;
                drop(history);
                self.fail_slot(slot, Some(restarts));
                return;
            }
        }
        let recs = self.recovery.as_ref().expect("supervisor requires recovery");
        let events = self
            .events_tx
            .lock()
            .expect("events sender poisoned")
            .clone()
            .expect("restore after shutdown");
        let restore_span = self.runtime_telemetry.restore.span();
        let mut groups: BTreeMap<usize, GroupState> = BTreeMap::new();
        let mut processed = 0u64;
        let mut markers = Vec::new();
        for (group, needs_marker) in self.routing.respawn_set(slot) {
            let rec = &recs[group];
            let rebuilt = rec.rebuild_state(
                &self.spec,
                self.n_locals[group],
                group,
                self.n_groups,
                &events,
                &self.sketches,
                self.sketch_cadence,
                &self.runtime_telemetry,
            );
            let Some((mut monitor, appends)) = rebuilt else {
                // The group's durable WAL is wedged (torn write or
                // failed rotation): an in-memory rebuild would accept
                // appends the disk can no longer journal, so the whole
                // slot fails stop (its other groups' journals are fine
                // but the slot's fate is one fail-stop decision).
                drop(restore_span);
                self.fail_slot(slot, None);
                return;
            };
            // The replay above ran detached (a restored monitor never
            // counts replayed appends twice); re-attach for the group's
            // second life.
            if let (Some(registry), Some(m)) = (&self.telemetry, monitor.as_mut()) {
                m.attach_telemetry(registry);
            }
            groups.insert(
                group,
                GroupState {
                    n_locals: self.n_locals[group],
                    monitor,
                    recovery: Some(Arc::clone(rec)),
                    appends,
                    emitted: rec.emitted(),
                    // Reset on every (re)spawn: the restored worker
                    // re-publishes its sketches, absorbed idempotently.
                    last_shipped: 0,
                },
            );
            processed += appends;
            if needs_marker {
                markers.push(group);
            }
        }
        drop(restore_span);
        // Absolute stores, not deltas: they heal a counter move a death
        // interrupted halfway (sealed but not adopted, or vice versa).
        let counters = &self.counters[slot];
        counters.appends.store(groups.values().map(|g| g.appends).sum(), Ordering::Relaxed);
        counters.events.store(groups.values().map(|g| g.emitted).sum(), Ordering::Relaxed);
        counters.restarts.fetch_add(1, Ordering::Relaxed);
        // Dead-with-marker-consumed groups get their marker back. Force
        // push: the supervisor must never park on a full queue, and the
        // marker is control flow, not capacity-counted load.
        for group in markers {
            let _ = self.queues[slot].force_push(ShardMsg::MigrateOut(group));
        }
        match self.spawn_worker(slot, groups, processed) {
            Ok(handle) => {
                self.handles.lock().expect("handles poisoned")[slot] = Some(handle);
            }
            Err(_) => {
                // Can't spawn a replacement thread: give the slot up.
                self.fail_slot(slot, None);
            }
        }
    }

    /// Moves one group to slot `to` through the freeze → seal → rebuild
    /// → adopt → promote protocol. Serialized (one migration at a
    /// time); exactly-once by construction — the group's journal is the
    /// unit of handoff, and the ack-suppression arithmetic that already
    /// proves crash recovery proves the replay resends nothing (the
    /// source sealed gracefully, so everything it emitted is acked).
    fn migrate_group(self: &Arc<Self>, group: usize, to: usize) -> Result<(), RuntimeError> {
        let Some(recs) = self.recovery.as_ref() else {
            return Err(RuntimeError::MigrationUnsupported);
        };
        if group >= self.n_groups {
            return Err(RuntimeError::Rebalance { detail: "group index out of range" });
        }
        if to >= self.n_workers {
            return Err(RuntimeError::Rebalance { detail: "destination slot out of range" });
        }
        let _serial = self.migration.lock().unwrap_or_else(PoisonError::into_inner);
        let from = match self.routing.freeze(group, to) {
            Ok(from) => from,
            // Already where it should be: a no-op, not an error.
            Err(GroupRoute::Steady(w)) if w == to => return Ok(()),
            Err(GroupRoute::Failed) => return Err(self.route_failed_error()),
            Err(_) => return Err(RuntimeError::Rebalance { detail: "group is mid-migration" }),
        };
        let started = Instant::now();
        // Queue the seal marker. Everything for the group admitted
        // before the freeze is FIFO-ahead of it; nothing lands behind
        // (admission closures re-check the route under the queue lock).
        if self.queues[from].push(ShardMsg::MigrateOut(group)).is_err() {
            self.routing.thaw(group, from);
            return Err(self.route_failed_error());
        }
        match self.routing.wait_handed(group) {
            GroupRoute::Handed { .. } => {}
            _ => return Err(self.route_failed_error()),
        }
        // The source sealed: its journal is the group's complete,
        // quiescent state (emitted == acked). Rebuild a warm monitor
        // from it; the replay resends nothing.
        let events = self
            .events_tx
            .lock()
            .expect("events sender poisoned")
            .clone()
            .ok_or(RuntimeError::Disconnected)?;
        let rec = &recs[group];
        let rebuilt = rec.rebuild_state(
            &self.spec,
            self.n_locals[group],
            group,
            self.n_groups,
            &events,
            &self.sketches,
            self.sketch_cadence,
            &self.runtime_telemetry,
        );
        let Some((mut monitor, appends)) = rebuilt else {
            // Wedged journal mid-migration: the group cannot be handed
            // to anyone (its WAL refuses appends). Fail the group, not
            // the runtime.
            self.routing.mark_group_failed(group);
            return Err(RuntimeError::Disconnected);
        };
        if let (Some(registry), Some(m)) = (&self.telemetry, monitor.as_mut()) {
            m.attach_telemetry(registry);
        }
        let state = GroupState {
            n_locals: self.n_locals[group],
            monitor,
            recovery: Some(Arc::clone(rec)),
            appends,
            emitted: rec.emitted(),
            last_shipped: 0,
        };
        // Queue the adoption, then promote. FIFO puts the payload ahead
        // of any batch admitted after the flip, and a destination crash
        // between the two is healed by its respawn set (`Handed{to}` ⇒
        // rebuild from the journal; the stale payload is dropped).
        if self.queues[to].push(ShardMsg::Adopt(group, Box::new(state))).is_err() {
            self.routing.mark_group_failed(group);
            return Err(self.route_failed_error());
        }
        self.routing.promote(group);
        // The seal/adopt pair transfers the group's historical append
        // count between the slot counters; shift the rebalance baseline
        // by the same amount so the transfer never reads as fresh load
        // (otherwise the policy sees the destination as hot and
        // thrashes).
        {
            let mut last = self.last_appends.lock().unwrap_or_else(PoisonError::into_inner);
            last[from] = last[from].saturating_sub(appends);
            last[to] += appends;
        }
        self.migrations.fetch_add(1, Ordering::Relaxed);
        self.runtime_telemetry.migrations.inc();
        let ms = started.elapsed().as_millis().min(u64::MAX as u128) as u64;
        self.runtime_telemetry.migration_ms.observe(ms);
        Ok(())
    }
}

/// A multi-threaded monitor over `M` streams, partitioned into `G`
/// stream groups placed across `S` worker shards.
///
/// Stream `g` lives in group `g mod G` as local stream `g div G`; each
/// group owns a private [`stardust_core::unified::UnifiedMonitor`] over
/// its slice and communicates only through channels, so no monitor
/// state is ever shared or locked. By default `G = S` and every group
/// is pinned to its identity slot — the classic immutable layout. With
/// [`RuntimeConfig::groups`] `> S` the runtime is *elastic*: groups
/// migrate between worker slots online ([`Self::split_shard`] /
/// [`Self::merge_shard`]) through an exactly-once handoff protocol
/// built on the same journal/ack machinery as crash recovery, and
/// ingestion and queries issued mid-migration return exactly what an
/// unresized run would.
///
/// **Semantics vs. a single monitor.** Aggregate and trend monitoring
/// are per-stream computations: the sharded runtime emits *exactly* the
/// events a single-threaded monitor would (the determinism test in
/// `tests/` proves the set equality). Correlation is a cross-stream
/// computation with two surfaces: pushed [`Event::Correlation`] events
/// remain **partitioned** (each shard's index search covers its own
/// streams only), while the pulled [`Self::correlated_pairs`] query
/// covers **every** pair, cross-shard included — shards publish
/// sliding-window sketches to a collector board on a cadence, the
/// collector prunes distant cross-shard pairs with a no-false-dismissal
/// distance bound, and surviving candidates are verified exactly
/// against the owning shards' raw windows. With `S = 1` the runtime is
/// exactly the paper's semantics on one core.
///
/// **Backpressure.** Per-shard queues are bounded at
/// [`RuntimeConfig::queue_capacity`] messages. `try_append` /
/// `try_submit` never block: a full queue returns [`QueueFull`] (or a
/// [`PartialSubmit`] remainder). `append_blocking` / `submit_blocking`
/// park the producer until the worker drains. Queries share the same
/// queues, so a query answered by a shard has observed every batch
/// submitted to that shard before it.
///
/// **Crash recovery.** With [`RuntimeConfig::recovery`] enabled (the
/// default), every batch is journaled before it is applied and each
/// shard's monitor is snapshotted on a configurable cadence. A
/// supervisor thread watches for dead workers; when one dies it
/// restores the monitor from the last snapshot, replays the journaled
/// suffix (suppressing the events the dead worker already delivered),
/// and spawns a replacement that resumes draining the *same* queue — no
/// queued batch or query is lost, no event is delivered twice, and the
/// recovered event stream is bit-identical to an unfaulted run.
pub struct ShardedRuntime {
    n_streams: usize,
    shared: Arc<Shared>,
    /// The collector receiver. `mpsc::Receiver` is `!Sync`, so it lives
    /// behind a mutex: the runtime itself is then `Sync` and a network
    /// front end can share one instance across handler threads while a
    /// single collector thread drains events. Each message is one commit
    /// group's events; `drain_events` flattens them in arrival order.
    events_rx: Mutex<Receiver<Vec<Event>>>,
    supervisor: Option<JoinHandle<()>>,
    finished: bool,
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("n_streams", &self.n_streams)
            .field("n_shards", &self.shared.n_workers)
            .field("n_groups", &self.shared.n_groups)
            .field("epoch", &self.shared.routing.epoch())
            .field("recovery", &self.shared.recovery.is_some())
            .finish_non_exhaustive()
    }
}

impl ShardedRuntime {
    /// Launches workers for `n_streams` streams described by `spec`.
    ///
    /// # Errors
    /// Fails on zero streams, a spec with no query class, or a rejected
    /// trend pattern.
    pub fn launch(
        spec: &MonitorSpec,
        n_streams: usize,
        config: RuntimeConfig,
    ) -> Result<Self, RuntimeError> {
        if n_streams == 0 {
            return Err(RuntimeError::NoStreams);
        }
        let (n_shards, n_groups, n_locals) = sizing(n_streams, config.shards, config.groups);
        let n_workers = n_shards + config.spare_shards;
        let with_recovery = config.recovery.is_some();
        let mut seeds: Vec<(usize, Option<UnifiedMonitor>, u64)> = Vec::with_capacity(n_groups);
        for (group, &n_local) in n_locals.iter().enumerate() {
            let mut monitor = spec.build(n_local)?;
            if let (Some(registry), Some(m)) = (&config.telemetry, monitor.as_mut()) {
                m.attach_telemetry(registry);
            }
            seeds.push((group, monitor, 0));
        }
        let runtime_telemetry =
            config.telemetry.as_ref().map(RuntimeTelemetry::new).unwrap_or_default();

        let (events_tx, events_rx) = mpsc::channel();
        let shared = Self::assemble(
            spec,
            n_locals,
            n_workers,
            config,
            events_tx,
            runtime_telemetry,
            (0..n_workers).map(|_| Arc::new(ShardCounters::new())).collect(),
            with_recovery
                .then(|| (0..n_groups).map(|_| Arc::new(ShardRecovery::new(None))).collect()),
        );
        Self::start_workers(&shared, seeds)?;
        let supervisor = if with_recovery { Some(Self::start_supervisor(&shared)?) } else { None };
        Ok(ShardedRuntime {
            n_streams,
            shared,
            events_rx: Mutex::new(events_rx),
            supervisor,
            finished: false,
        })
    }

    /// Opens (or creates) a durable runtime backed by `persist.dir`.
    ///
    /// The directory is scanned shard by shard: snapshot and WAL
    /// checksums are validated, torn WAL tails are truncated, a corrupt
    /// current snapshot falls back to the previous generation, and the
    /// WAL suffix past the recovered snapshot is replayed through the
    /// restored monitors. Events the previous process had not yet
    /// delivered (per the WAL's ack records) are re-emitted and show up
    /// in the next [`Self::drain_events`]; delivered ones are
    /// suppressed. Each shard then rotates to a fresh snapshot
    /// generation and resumes journaling every batch to its
    /// `shard-N.wal`.
    ///
    /// Crash recovery is forced on (a durable runtime without a
    /// supervisor would lose the WAL's exactly-once arithmetic). The
    /// caller must open with the same spec and stream count the
    /// directory was written under — the shard-file layout is checked,
    /// the spec is not.
    ///
    /// # Errors
    /// [`RuntimeError::Recovery`] when the directory cannot be
    /// recovered exactly (see [`RecoveryError`] for the taxonomy), plus
    /// every error [`Self::launch`] can return.
    pub fn open(
        spec: &MonitorSpec,
        n_streams: usize,
        mut config: RuntimeConfig,
        persist: PersistConfig,
    ) -> Result<(Self, RecoveryReport), RuntimeError> {
        if n_streams == 0 {
            return Err(RuntimeError::NoStreams);
        }
        if config.recovery.is_none() {
            config.recovery = Some(RecoveryPolicy::default());
        }
        let (n_shards, n_groups, n_locals) = sizing(n_streams, config.shards, config.groups);
        let n_workers = n_shards + config.spare_shards;
        let recovery_err = |e: RecoveryError| RuntimeError::Recovery(e);
        std::fs::create_dir_all(&persist.dir)
            .map_err(|e| recovery_err(RecoveryError::io(&persist.dir, e)))?;
        // Durable layout is per *group*: `shard-N` files hold group N's
        // journal, which travels with the group across worker slots.
        // (The on-disk names predate elastic routing.)
        persist::check_shard_layout(&persist.dir, n_groups).map_err(recovery_err)?;
        let runtime_telemetry =
            config.telemetry.as_ref().map(RuntimeTelemetry::new).unwrap_or_default();
        let (events_tx, events_rx) = mpsc::channel();

        let mut seeds = Vec::with_capacity(n_groups);
        let mut recoveries = Vec::with_capacity(n_groups);
        let mut report = RecoveryReport { shards: Vec::with_capacity(n_groups) };
        for group in 0..n_groups {
            let span = runtime_telemetry.disk_recovery.span();
            persist::apply_open_faults(&persist.dir, group, &config.fault_plan)
                .map_err(recovery_err)?;
            let rec = persist::recover_shard(&persist.dir, group).map_err(recovery_err)?;
            // Build from the spec first — this validates the spec for
            // every group even when a snapshot overrides the state.
            let mut monitor = spec.build(n_locals[group])?;
            if let Some(bytes) = &rec.snapshot {
                let restored = UnifiedMonitor::restore(bytes).map_err(|_| {
                    recovery_err(RecoveryError::CorruptSnapshot {
                        path: persist::ShardPaths::new(&persist.dir, group).snap,
                        detail: "checksummed monitor payload failed to decode \
                                 (spec or version mismatch?)",
                    })
                })?;
                monitor = Some(restored);
            }
            // Replay the WAL suffix. The first `already` regenerated
            // events were delivered (and acked) by the previous process;
            // the rest go to the collector now. A process killed mid-
            // migration recovers here too: the group's journal is
            // crash-consistent no matter which slot owned it (seal
            // fences the source before the destination writes), so
            // `open` lands in a consistent epoch-0 placement.
            let already = rec.last_ack - rec.emitted_at_snapshot;
            let mut regenerated = 0u64;
            let mut re_emitted = 0u64;
            if let Some(monitor) = monitor.as_mut() {
                let mut buf = Vec::new();
                let mut resend = Vec::new();
                for &(local, value) in &rec.suffix {
                    buf.clear();
                    monitor.append_into(local, value, &mut buf);
                    for ev in buf.drain(..) {
                        regenerated += 1;
                        if regenerated > already {
                            resend.push(remap_event(group, n_groups, ev));
                        }
                    }
                }
                if !resend.is_empty() {
                    re_emitted = resend.len() as u64;
                    let _ = events_tx.send(resend);
                }
            }
            runtime_telemetry.replayed.add(rec.suffix.len() as u64);
            if rec.truncated_bytes > 0 {
                runtime_telemetry.torn_truncations.inc();
            }
            if rec.used_fallback {
                runtime_telemetry.snapshot_fallbacks.inc();
            }
            // The replay ran detached; attach for the live phase.
            if let (Some(registry), Some(m)) = (&config.telemetry, monitor.as_mut()) {
                m.attach_telemetry(registry);
            }
            let durable_appends = rec.snapshot_appends + rec.suffix.len() as u64;
            let emitted = rec.emitted_at_snapshot + regenerated.max(already);
            let snap_bytes = monitor.as_ref().map(|m| m.snapshot());
            let disk = persist::ShardDisk::create(
                &persist.dir,
                group,
                persist.sync,
                config.fault_plan.clone(),
                runtime_telemetry.clone(),
                rec.max_gen,
                durable_appends,
                emitted,
                snap_bytes.as_deref(),
            )
            .map_err(|e| recovery_err(RecoveryError::io(&persist.dir, e)))?;
            drop(span);
            report.shards.push(ShardRecoveryReport {
                shard: group,
                durable_appends,
                replayed: rec.suffix.len() as u64,
                re_emitted,
                suppressed: already.min(regenerated),
                truncated_bytes: rec.truncated_bytes,
                used_fallback: rec.used_fallback,
                generation: disk.generation(),
            });
            recoveries.push(Arc::new(ShardRecovery::resumed(
                snap_bytes,
                durable_appends,
                emitted,
                Some(disk),
            )));
            seeds.push((group, monitor, durable_appends));
        }

        // Per-slot counters start at the sums of the groups initially
        // placed on each slot (`group mod n_shards`).
        let counters: Vec<Arc<ShardCounters>> =
            (0..n_workers).map(|_| Arc::new(ShardCounters::new())).collect();
        for (group, rec) in recoveries.iter().enumerate() {
            let slot = group % n_shards;
            let appends = report.shards[group].durable_appends;
            counters[slot].appends.fetch_add(appends, Ordering::Relaxed);
            counters[slot].events.fetch_add(rec.emitted(), Ordering::Relaxed);
        }

        let shared = Self::assemble(
            spec,
            n_locals,
            n_workers,
            config,
            events_tx,
            runtime_telemetry,
            counters,
            Some(recoveries),
        );
        Self::start_workers(&shared, seeds)?;
        let supervisor = Some(Self::start_supervisor(&shared)?);
        let rt = ShardedRuntime {
            n_streams,
            shared,
            events_rx: Mutex::new(events_rx),
            supervisor,
            finished: false,
        };
        Ok((rt, report))
    }

    /// Builds the shared state common to [`Self::launch`] and
    /// [`Self::open`].
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        spec: &MonitorSpec,
        n_locals: Vec<usize>,
        n_workers: usize,
        config: RuntimeConfig,
        events_tx: Sender<Vec<Event>>,
        runtime_telemetry: RuntimeTelemetry,
        counters: Vec<Arc<ShardCounters>>,
        recovery: Option<Vec<Arc<ShardRecovery>>>,
    ) -> Arc<Shared> {
        let n_groups = n_locals.len();
        let n_shards = n_workers - config.spare_shards;
        let n_streams: usize = n_locals.iter().sum();
        let queue_capacity = config.queue_capacity.max(1);
        // Initial placement: group g on slot g mod n_shards. With the
        // default groups == shards this is the identity — the classic
        // immutable layout.
        let assignment = (0..n_groups).map(|g| g % n_shards).collect();
        Arc::new(Shared {
            spec: spec.clone(),
            n_workers,
            n_groups,
            n_locals,
            snapshot_every: config.recovery.map(|r| r.snapshot_every).unwrap_or(0),
            fault_plan: config.fault_plan,
            telemetry: config.telemetry,
            runtime_telemetry,
            queues: (0..n_workers).map(|_| Arc::new(BoundedQueue::new(queue_capacity))).collect(),
            queue_capacity,
            counters,
            routing: Arc::new(Routing::new(assignment, n_workers)),
            migration: Mutex::new(()),
            migrations: AtomicU64::new(0),
            last_appends: Mutex::new(vec![0; n_workers]),
            storms: Mutex::new(Vec::new()),
            restart_history: Mutex::new(vec![VecDeque::new(); n_workers]),
            max_restarts_in_window: config.max_restarts_in_window,
            restart_window: config.restart_window,
            sketches: Arc::new(SketchBoard::new(n_streams)),
            sketch_cadence: config.sketch_cadence,
            intra_query_threads: pool::resolve_threads(config.intra_query_threads),
            recovery,
            board: Arc::new(Board::new(n_workers)),
            handles: Mutex::new((0..n_workers).map(|_| None).collect()),
            events_tx: Mutex::new(Some(events_tx)),
        })
    }

    /// Spawns every worker slot. `seeds` carries one entry per *group*
    /// (`(group, monitor, durable_appends)`); groups are bucketed onto
    /// their initial slots and spare slots start empty.
    fn start_workers(
        shared: &Arc<Shared>,
        seeds: Vec<(usize, Option<UnifiedMonitor>, u64)>,
    ) -> Result<(), RuntimeError> {
        let mut per_slot: Vec<BTreeMap<usize, GroupState>> =
            (0..shared.n_workers).map(|_| BTreeMap::new()).collect();
        let mut processed: Vec<u64> = vec![0; shared.n_workers];
        for (group, monitor, appends) in seeds {
            let slot = shared.routing.try_owner(group).expect("fresh routing is steady");
            let recovery = shared.recovery.as_ref().map(|r| Arc::clone(&r[group]));
            let emitted = recovery.as_ref().map_or(0, |r| r.emitted());
            per_slot[slot].insert(
                group,
                GroupState {
                    n_locals: shared.n_locals[group],
                    monitor,
                    recovery,
                    appends,
                    emitted,
                    last_shipped: 0,
                },
            );
            processed[slot] += appends;
        }
        for (slot, groups) in per_slot.into_iter().enumerate() {
            match shared.spawn_worker(slot, groups, processed[slot]) {
                Ok(handle) => shared.handles.lock().expect("handles poisoned")[slot] = Some(handle),
                Err(e) => {
                    // Unblock the workers already spawned; they drain
                    // nothing and exit.
                    for queue in &shared.queues {
                        queue.close();
                    }
                    return Err(RuntimeError::Spawn(e));
                }
            }
        }
        Ok(())
    }

    fn start_supervisor(shared: &Arc<Shared>) -> Result<JoinHandle<()>, RuntimeError> {
        let sup = Arc::clone(shared);
        std::thread::Builder::new()
            .name("stardust-supervisor".to_string())
            .spawn(move || {
                while let Some(shard) = sup.board.next_dead() {
                    sup.restore_shard(shard);
                }
            })
            .map_err(|e| {
                for queue in &shared.queues {
                    queue.close();
                }
                shared.board.begin_shutdown();
                RuntimeError::Spawn(e)
            })
    }

    /// Number of worker slots (including idle spares).
    pub fn n_shards(&self) -> usize {
        self.shared.n_workers
    }

    /// Number of stream groups — the unit of elastic rebalancing.
    pub fn n_groups(&self) -> usize {
        self.shared.n_groups
    }

    /// Number of worker slots currently owning at least one group.
    pub fn live_shards(&self) -> usize {
        self.shared.routing.live_workers()
    }

    /// Routing epoch: bumped once per completed group migration.
    pub fn epoch(&self) -> u64 {
        self.shared.routing.epoch()
    }

    /// Completed group migrations (splits and merges both count one per
    /// group moved).
    pub fn migrations(&self) -> u64 {
        self.shared.migrations.load(Ordering::Relaxed)
    }

    /// Number of monitored streams.
    pub fn n_streams(&self) -> usize {
        self.n_streams
    }

    /// Total worker restarts performed by the supervisor so far.
    pub fn restarts(&self) -> u64 {
        self.shared.counters.iter().map(|c| c.restarts.load(Ordering::Relaxed)).sum()
    }

    fn place(&self, stream: StreamId) -> Result<(usize, StreamId), RuntimeError> {
        if (stream as usize) < self.n_streams {
            let g = self.shared.n_groups;
            Ok((stream as usize % g, stream / g as StreamId))
        } else {
            Err(RuntimeError::UnknownStream { stream, n_streams: self.n_streams })
        }
    }

    /// Blocks until `group` has a steady owner; maps routing failures
    /// to the producer-visible error.
    fn wait_owner(&self, group: usize) -> Result<usize, RuntimeError> {
        self.shared.routing.wait_steady(group).map_err(|failed| {
            if failed {
                self.shared.route_failed_error()
            } else {
                RuntimeError::Disconnected
            }
        })
    }

    /// Blocking push of one group's batch with migration-safe admission:
    /// the message is admitted only while the route still points at the
    /// resolved slot (checked under the queue lock, atomically against
    /// the coordinator's freeze), so no batch ever lands behind a
    /// `MigrateOut` marker. A refusal re-resolves and retries on the
    /// new owner.
    fn push_batch_blocking(
        &self,
        group: usize,
        mut items: Vec<(StreamId, f64)>,
        now: Instant,
    ) -> Result<(), RuntimeError> {
        loop {
            let slot = self.wait_owner(group)?;
            self.shared.counters[slot].note_enqueued();
            let routing = &self.shared.routing;
            match self.shared.queues[slot]
                .push_if(ShardMsg::Batch(group, items, now), || routing.is_steady_at(group, slot))
            {
                Ok(()) => return Ok(()),
                Err(AdmitError::Refused(ShardMsg::Batch(_, i, _))) => {
                    // The group migrated (or froze) while we waited;
                    // chase it to its new owner.
                    self.shared.counters[slot].undo_enqueued();
                    items = i;
                }
                Err(AdmitError::Closed(ShardMsg::Batch(_, i, _))) => {
                    self.shared.counters[slot].undo_enqueued();
                    if self.shared.recovery.is_none() {
                        return Err(RuntimeError::Disconnected);
                    }
                    // Slot fail-stopped; the routing table is marked
                    // failed momentarily after the close. Yield until
                    // wait_owner observes it.
                    items = i;
                    std::thread::yield_now();
                }
                Err(_) => unreachable!("pushed message is returned verbatim"),
            }
        }
    }

    /// Appends one value without blocking.
    ///
    /// # Errors
    /// [`RuntimeError::Backpressure`] when the owning shard's queue is
    /// full — or the stream's group is mid-migration — (the value is
    /// *not* enqueued; retry or use [`Self::append_blocking`]),
    /// [`RuntimeError::UnknownStream`] on an out-of-range id.
    pub fn try_append(&self, stream: StreamId, value: f64) -> Result<(), RuntimeError> {
        let (group, local) = self.place(stream)?;
        let slot = match self.shared.routing.try_owner(group) {
            Ok(slot) => slot,
            // Mid-migration: transient, report backpressure.
            Err(false) => return Err(RuntimeError::Backpressure(QueueFull)),
            Err(true) => return Err(self.shared.route_failed_error()),
        };
        let msg = ShardMsg::Batch(group, vec![(local, value)], Instant::now());
        self.shared.counters[slot].note_enqueued();
        let routing = &self.shared.routing;
        match self.shared.queues[slot].try_push_if(msg, || routing.is_steady_at(group, slot)) {
            Ok(()) => Ok(()),
            Err(TryAdmitError::Full(_)) | Err(TryAdmitError::Refused(_)) => {
                self.shared.counters[slot].undo_enqueued();
                Err(RuntimeError::Backpressure(QueueFull))
            }
            Err(TryAdmitError::Closed(_)) => {
                self.shared.counters[slot].undo_enqueued();
                Err(RuntimeError::Disconnected)
            }
        }
    }

    /// Appends one value, waiting while the owning shard's queue is
    /// full (or the stream's group is mid-migration).
    ///
    /// # Errors
    /// [`RuntimeError::UnknownStream`] on an out-of-range id,
    /// [`RuntimeError::Disconnected`] if the shard failed terminally,
    /// [`RuntimeError::RespawnStorm`] if the supervisor gave up on it.
    pub fn append_blocking(&self, stream: StreamId, value: f64) -> Result<(), RuntimeError> {
        let (group, local) = self.place(stream)?;
        self.push_batch_blocking(group, vec![(local, value)], Instant::now())
    }

    fn split(&self, batch: &Batch) -> Result<Vec<Vec<(StreamId, f64)>>, RuntimeError> {
        let mut per_group: Vec<Vec<(StreamId, f64)>> = vec![Vec::new(); self.shared.n_groups];
        for &(stream, value) in &batch.items {
            let (group, local) = self.place(stream)?;
            per_group[group].push((local, value));
        }
        Ok(per_group)
    }

    /// Submits a batch, waiting on full queues. Values are split into
    /// one message per involved stream group; per-stream order is
    /// preserved.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownStream`] on any out-of-range id (nothing
    /// is enqueued), [`RuntimeError::Disconnected`] if a shard failed
    /// terminally, [`RuntimeError::RespawnStorm`] if the supervisor
    /// gave up on one.
    pub fn submit_blocking(&self, batch: &Batch) -> Result<(), RuntimeError> {
        let now = Instant::now();
        for (group, items) in self.split(batch)?.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            self.push_batch_blocking(group, items, now)?;
        }
        Ok(())
    }

    /// Submits a batch without blocking. Sub-batches for groups with
    /// room are enqueued; the rest (including any group mid-migration)
    /// is returned for retry.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownStream`] on any out-of-range id (nothing
    /// is enqueued); otherwise `Ok` with an optional [`PartialSubmit`]
    /// remainder — `None` means everything was enqueued.
    pub fn try_submit(&self, batch: &Batch) -> Result<Option<PartialSubmit>, RuntimeError> {
        let now = Instant::now();
        let g_n = self.shared.n_groups as StreamId;
        let mut rejected = Batch::new();
        let mut accepted = 0usize;
        for (group, items) in self.split(batch)?.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let reject = |rejected: &mut Batch, items: Vec<(StreamId, f64)>| {
                rejected.items.extend(
                    items.into_iter().map(|(local, v)| (local * g_n + group as StreamId, v)),
                )
            };
            let slot = match self.shared.routing.try_owner(group) {
                Ok(slot) => slot,
                Err(false) => {
                    // Mid-migration: backpressure, retry later.
                    reject(&mut rejected, items);
                    continue;
                }
                Err(true) => return Err(self.shared.route_failed_error()),
            };
            let n = items.len();
            self.shared.counters[slot].note_enqueued();
            let routing = &self.shared.routing;
            match self.shared.queues[slot].try_push_if(ShardMsg::Batch(group, items, now), || {
                routing.is_steady_at(group, slot)
            }) {
                Ok(()) => {
                    accepted += n;
                }
                Err(TryAdmitError::Full(ShardMsg::Batch(_, items, _)))
                | Err(TryAdmitError::Refused(ShardMsg::Batch(_, items, _))) => {
                    self.shared.counters[slot].undo_enqueued();
                    reject(&mut rejected, items);
                }
                Err(TryAdmitError::Closed(_)) => {
                    self.shared.counters[slot].undo_enqueued();
                    return Err(RuntimeError::Disconnected);
                }
                Err(_) => unreachable!("only batches are retried"),
            }
        }
        if rejected.is_empty() {
            Ok(None)
        } else {
            Ok(Some(PartialSubmit { rejected, accepted }))
        }
    }

    /// Every event collected so far, in collector arrival order
    /// (interleaved across shards; per-stream order is preserved —
    /// groups arrive whole, so flattening them preserves each shard's
    /// emission order). Concurrent callers serialize on the collector
    /// receiver; each event is delivered to exactly one of them.
    pub fn drain_events(&self) -> Vec<Event> {
        self.events_rx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .try_iter()
            .flatten()
            .collect()
    }

    /// A live counter snapshot (racy by one message against in-flight
    /// producers, by design).
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            shards: self.shared.counters.iter().map(|c| c.snapshot()).collect(),
            epoch: self.shared.routing.epoch(),
            live_shards: self.shared.routing.live_workers(),
            migrations: self.shared.migrations.load(Ordering::Relaxed),
        }
    }

    /// Routes `req` to `group`'s current owner, retrying across
    /// migrations until the push is admitted. The reply channel is
    /// tagged with the group id so gatherers can re-send on a
    /// [`QueryReply::Declined`] (the group moved after routing).
    fn send_group_query(
        &self,
        group: usize,
        req: QueryRequest,
        tx: &Sender<(usize, QueryReply)>,
    ) -> Result<(), RuntimeError> {
        loop {
            let slot = self.wait_owner(group)?;
            let routing = &self.shared.routing;
            match self.shared.queues[slot]
                .push_if(ShardMsg::Query(group, req.clone(), tx.clone()), || {
                    routing.is_steady_at(group, slot)
                }) {
                Ok(()) => return Ok(()),
                Err(AdmitError::Refused(_)) => continue,
                Err(AdmitError::Closed(_)) => {
                    if self.shared.recovery.is_none() {
                        return Err(RuntimeError::Disconnected);
                    }
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Gathers one reply per request in `reqs` (indexed by group),
    /// re-sending any query a worker declined because the group had
    /// migrated off it between routing and delivery. Migrations are
    /// serialized and finite, so the re-send loop terminates.
    fn gather(
        &self,
        rx: &Receiver<(usize, QueryReply)>,
        tx: &Sender<(usize, QueryReply)>,
        reqs: &[QueryRequest],
    ) -> Result<Vec<QueryReply>, RuntimeError> {
        let mut replies: Vec<Option<QueryReply>> = reqs.iter().map(|_| None).collect();
        let mut remaining = reqs.len();
        while remaining > 0 {
            // A worker crash cannot lose the query: it stays in the
            // shared queue and the restored worker answers it.
            let (group, reply) = rx.recv().map_err(|_| RuntimeError::Disconnected)?;
            if matches!(reply, QueryReply::Declined) {
                self.send_group_query(group, reqs[group].clone(), tx)?;
            } else {
                if replies[group].is_none() {
                    remaining -= 1;
                }
                replies[group] = Some(reply);
            }
        }
        Ok(replies.into_iter().map(|r| r.expect("loop exits only when filled")).collect())
    }

    /// Scatter-gather over every group; replies come back in group
    /// order.
    fn scatter(&self, req: QueryRequest) -> Result<Vec<QueryReply>, RuntimeError> {
        let reqs: Vec<QueryRequest> = (0..self.shared.n_groups).map(|_| req.clone()).collect();
        let (tx, rx) = mpsc::channel();
        for (group, req) in reqs.iter().enumerate() {
            self.send_group_query(group, req.clone(), &tx)?;
        }
        self.gather(&rx, &tx, &reqs)
    }

    /// One query against one group, retrying across migrations.
    fn query_group(&self, group: usize, req: QueryRequest) -> Result<QueryReply, RuntimeError> {
        let (tx, rx) = mpsc::channel();
        self.send_group_query(group, req.clone(), &tx)?;
        loop {
            let (_, reply) = rx.recv().map_err(|_| RuntimeError::Disconnected)?;
            if matches!(reply, QueryReply::Declined) {
                self.send_group_query(group, req.clone(), &tx)?;
                continue;
            }
            return Ok(reply);
        }
    }

    /// The current composed interval of one monitored aggregate window
    /// on one stream (routed to the owning shard; waits for queued
    /// batches ahead of it).
    ///
    /// # Errors
    /// [`RuntimeError::UnknownStream`] / [`RuntimeError::Disconnected`].
    pub fn aggregate_interval(
        &self,
        stream: StreamId,
        window: usize,
    ) -> Result<Option<(f64, f64)>, RuntimeError> {
        let (group, local) = self.place(stream)?;
        match self.query_group(group, QueryRequest::AggregateInterval { stream: local, window })? {
            QueryReply::AggregateInterval(ans) => Ok(ans),
            _ => Err(RuntimeError::Disconnected),
        }
    }

    /// Cumulative per-class counters, merged across all shards
    /// (scatter-gather).
    ///
    /// # Errors
    /// [`RuntimeError::Disconnected`] if a shard failed terminally.
    pub fn class_stats(&self) -> Result<ClassStats, RuntimeError> {
        let mut merged = ClassStats::default();
        for reply in self.scatter(QueryRequest::ClassStats)? {
            if let QueryReply::ClassStats(s) = reply {
                merged.merge(&s);
            }
        }
        Ok(merged)
    }

    /// Currently correlated pairs among **all** streams — same-shard and
    /// cross-shard — sorted by `(a, b)`.
    ///
    /// The result is set-identical to a single-threaded
    /// [`stardust_core::query::correlation::CorrelationMonitor::linear_scan_pairs`]
    /// over all streams at the global instant `t* = min` over every
    /// stream's correlation clock (queried under quiescence; concurrent
    /// ingest between the clock and verification phases can expire
    /// windows and drop pairs, exactly as it would invalidate any
    /// point-in-time answer).
    ///
    /// Three phases:
    /// 1. **Clock scatter** establishes `t*`. Any stream without a full
    ///    window yet ⇒ empty result (the reference behaves identically).
    /// 2. **Sketch prune**: cross-shard pairs whose board sketches are
    ///    complete, aligned at `t*`, and whose projection lower bound
    ///    exceeds `radius + PRUNE_SLACK` are dismissed — provably
    ///    outside the radius (no false dismissals; see
    ///    [`stardust_core::sketch`]). Stale or missing sketches are
    ///    never pruned on, only verified.
    /// 3. **Verify scatter** fetches each shard's exact same-shard pairs
    ///    at `t*` plus the raw windows of surviving candidates; the
    ///    collector confirms candidates with the exact z-normed
    ///    distance.
    ///
    /// # Errors
    /// [`RuntimeError::Disconnected`] if a shard failed terminally.
    pub fn correlated_pairs(&self) -> Result<Vec<(StreamId, StreamId, f64)>, RuntimeError> {
        let Some(corr_spec) = self.shared.spec.correlation.clone() else {
            return Ok(Vec::new());
        };

        // Phase 1: global verification instant.
        let mut clocks = Vec::with_capacity(self.n_streams);
        for reply in self.scatter(QueryRequest::CorrClock)? {
            if let QueryReply::CorrClock(c) = reply {
                clocks.extend(c);
            }
        }
        let Some(t) = clocks.iter().copied().min().flatten() else {
            return Ok(Vec::new());
        };

        // Phase 2: prune cross-shard pairs on the sketch board. A pair
        // is pruned only when both mirrors are complete windows ending
        // exactly at t* — anything stale goes to exact verification.
        // Each mirror is projected once (Θ(m), amortizing the moment
        // normalization out of the O(n²) pair loop), and the pair rows
        // fan out across the intra-query pool; rows merge in row order,
        // so the candidate list is identical to the serial nested loop
        // at every thread count.
        let mirrors = self.shared.sketches.mirrors();
        let s = self.shared.n_groups;
        let radius = corr_spec.radius;
        let projections: Vec<Option<SketchProjection>> = mirrors
            .iter()
            .map(|m| m.as_ref().and_then(|sk| sk.projection()).filter(|p| p.end_time() == t))
            .collect();
        let rows: Vec<usize> = (0..self.n_streams).collect();
        let row_results = pool::parallel_map(&rows, self.shared.intra_query_threads, |&a| {
            let mut row_candidates: Vec<(StreamId, StreamId)> = Vec::new();
            let mut row_pruned = 0u64;
            for b in (a + 1)..self.n_streams {
                if a % s == b % s {
                    continue; // same shard: covered by the exact scan below
                }
                let bound = match (&projections[a], &projections[b]) {
                    (Some(pa), Some(pb)) => pa.distance_lower_bound(pb),
                    _ => None,
                };
                if bound.is_some_and(|lb| lb > radius + PRUNE_SLACK) {
                    row_pruned += 1;
                } else {
                    row_candidates.push((a as StreamId, b as StreamId));
                }
            }
            (row_candidates, row_pruned)
        });
        let mut candidates: Vec<(StreamId, StreamId)> = Vec::new();
        let mut pruned = 0u64;
        for (row_candidates, row_pruned) in row_results {
            candidates.extend(row_candidates);
            pruned += row_pruned;
        }
        self.shared.sketches.pruned.fetch_add(pruned, Ordering::Relaxed);
        self.shared.sketches.candidates.fetch_add(candidates.len() as u64, Ordering::Relaxed);
        self.shared.runtime_telemetry.cross_pruned.add(pruned);
        self.shared.runtime_telemetry.cross_candidates.add(candidates.len() as u64);

        // Phase 3: exact same-group pairs at t* plus the raw windows of
        // every candidate. Requests differ per group, so this is a
        // custom scatter.
        let mut windows_for: Vec<Vec<StreamId>> = vec![Vec::new(); s];
        for &(a, b) in &candidates {
            for g in [a, b] {
                windows_for[g as usize % s].push(g / s as StreamId);
            }
        }
        for locals in &mut windows_for {
            locals.sort_unstable();
            locals.dedup();
        }
        let reqs: Vec<QueryRequest> = windows_for
            .into_iter()
            .map(|w| QueryRequest::CorrVerify { t, windows_for: w })
            .collect();
        let (tx, rx) = mpsc::channel();
        for (group, req) in reqs.iter().enumerate() {
            self.send_group_query(group, req.clone(), &tx)?;
        }
        let mut merged = Vec::new();
        let mut windows: std::collections::HashMap<StreamId, Option<Vec<f64>>> =
            std::collections::HashMap::new();
        for reply in self.gather(&rx, &tx, &reqs)? {
            if let QueryReply::CorrVerify { pairs, windows: w } = reply {
                merged.extend(pairs);
                windows.extend(w);
            }
        }
        // Verify candidates on the pool: each fetched window is
        // z-normalized once, and every pair is evaluated on the
        // normalized vectors in candidate order — bit-identical to
        // serially correlating the raw windows pair by pair, because
        // `z_norm` is deterministic and the fan-out merges positionally.
        let znormed: std::collections::HashMap<StreamId, Vec<f64>> = windows
            .iter()
            .filter_map(|(&g, w)| Some((g, normalize::z_norm(w.as_deref()?)?)))
            .collect();
        let verdicts =
            pool::parallel_map(&candidates, self.shared.intra_query_threads, |&(a, b)| {
                // A missing window (expired) or undefined z-norm
                // (constant window) skips the pair, as the reference
                // linear scan does.
                let (za, zb) = (znormed.get(&a)?, znormed.get(&b)?);
                let corr = normalize::correlation_of_znormed(za, zb);
                (normalize::correlation_to_distance(corr) <= radius).then_some((a, b, corr))
            });
        let mut confirmed = 0u64;
        for (a, b, corr) in verdicts.into_iter().flatten() {
            merged.push((a, b, corr));
            confirmed += 1;
        }
        self.shared.sketches.confirmed.fetch_add(confirmed, Ordering::Relaxed);
        self.shared.runtime_telemetry.cross_confirmed.add(confirmed);
        merged.sort_by_key(|x| (x.0, x.1));
        Ok(merged)
    }

    /// Cumulative cross-shard correlation-path counters: sketch
    /// publications absorbed by the collector board and the fate of
    /// every cross-shard pair [`Self::correlated_pairs`] has considered.
    pub fn cross_corr_stats(&self) -> CrossCorrStats {
        let b = &self.shared.sketches;
        CrossCorrStats {
            exchanges: b.exchanges.load(Ordering::Relaxed),
            candidates: b.candidates.load(Ordering::Relaxed),
            pruned: b.pruned.load(Ordering::Relaxed),
            confirmed: b.confirmed.load(Ordering::Relaxed),
        }
    }

    /// Online shard **split**: moves `groups` off slot `from` onto slot
    /// `to` (typically an idle spare — see
    /// [`RuntimeConfig::spare_shards`]), one exactly-once live migration
    /// per group. Ingestion and queries continue throughout; producers
    /// touching a moving group park for the freeze window and re-resolve.
    ///
    /// # Errors
    /// [`RuntimeError::MigrationUnsupported`] without recovery,
    /// [`RuntimeError::Rebalance`] on bad arguments (out-of-range slot
    /// or group, a group not owned by `from`),
    /// [`RuntimeError::Disconnected`] / [`RuntimeError::RespawnStorm`]
    /// if a slot involved failed terminally.
    pub fn split_shard(
        &self,
        from: usize,
        to: usize,
        groups: &[usize],
    ) -> Result<(), RuntimeError> {
        if from == to {
            return Err(RuntimeError::Rebalance { detail: "split source equals destination" });
        }
        if groups.is_empty() {
            return Err(RuntimeError::Rebalance { detail: "split moves no groups" });
        }
        let owners = self.shared.routing.owners();
        for &group in groups {
            if owners.get(group).copied() != Some(from) {
                return Err(RuntimeError::Rebalance {
                    detail: "group is not owned by the split source",
                });
            }
        }
        for &group in groups {
            self.shared.migrate_group(group, to)?;
        }
        Ok(())
    }

    /// Online shard **merge**: drains every group slot `from` owns into
    /// slot `into` and retires `from` (its thread stays parked on an
    /// empty queue, ready to be a split destination later). Returns the
    /// number of groups moved.
    ///
    /// # Errors
    /// Same surface as [`Self::split_shard`].
    pub fn merge_shard(&self, from: usize, into: usize) -> Result<usize, RuntimeError> {
        if from == into {
            return Err(RuntimeError::Rebalance { detail: "merge source equals destination" });
        }
        if from >= self.shared.n_workers || into >= self.shared.n_workers {
            return Err(RuntimeError::Rebalance { detail: "slot index out of range" });
        }
        let owners = self.shared.routing.owners();
        let moving: Vec<usize> = (0..self.shared.n_groups).filter(|&g| owners[g] == from).collect();
        for &group in &moving {
            self.shared.migrate_group(group, into)?;
        }
        Ok(moving.len())
    }

    /// One step of the queue-depth / append-rate rebalancing policy;
    /// executes at most one action per call and returns what it did.
    ///
    /// * **Split** when some slot is hot — queue at least half full, or
    ///   appending at more than twice the per-live-slot average since
    ///   the last call — *and* owns ≥ 2 groups *and* an idle slot
    ///   exists: half its groups (the hotter-id half rounds down) move
    ///   to the idle slot.
    /// * **Merge** when ≥ 2 slots own groups and some slot was
    ///   completely cold over the interval (no appends since the last
    ///   call, empty queue): its groups drain into the busiest slot.
    ///
    /// Call it on a cadence (the `stardust rebalance` drill does); each
    /// call observes the append deltas since the previous one, so the
    /// first call only primes the baseline.
    ///
    /// # Errors
    /// Same surface as [`Self::split_shard`].
    pub fn rebalance_step(&self) -> Result<Option<RebalanceAction>, RuntimeError> {
        if self.shared.recovery.is_none() {
            return Err(RuntimeError::MigrationUnsupported);
        }
        let shared = &self.shared;
        let owners = shared.routing.owners();
        let mut groups_of: Vec<Vec<usize>> = vec![Vec::new(); shared.n_workers];
        for (g, &w) in owners.iter().enumerate() {
            if w != usize::MAX {
                groups_of[w].push(g);
            }
        }
        let appends: Vec<u64> =
            shared.counters.iter().map(|c| c.appends.load(Ordering::Relaxed)).collect();
        let deltas: Vec<u64> = {
            let mut last = shared.last_appends.lock().unwrap_or_else(PoisonError::into_inner);
            let deltas =
                appends.iter().zip(last.iter()).map(|(a, l)| a.saturating_sub(*l)).collect();
            *last = appends;
            deltas
        };
        let depths: Vec<u64> =
            shared.counters.iter().map(|c| c.snapshot().queue_depth as u64).collect();
        let capacity = shared.queue_capacity as u64;
        let owning: Vec<usize> =
            (0..shared.n_workers).filter(|&w| !groups_of[w].is_empty()).collect();
        if owning.is_empty() {
            return Ok(None);
        }
        let avg_delta = deltas.iter().sum::<u64>() / owning.len() as u64;
        // Split: hottest eligible slot onto the first idle slot.
        let idle = (0..shared.n_workers).find(|&w| groups_of[w].is_empty() && !owners.contains(&w));
        if let Some(to) = idle {
            let hot = owning
                .iter()
                .copied()
                .filter(|&w| groups_of[w].len() >= 2)
                .filter(|&w| {
                    depths[w] * 2 >= capacity || (avg_delta > 0 && deltas[w] > 2 * avg_delta)
                })
                .max_by_key(|&w| (deltas[w], depths[w]));
            if let Some(from) = hot {
                let half = groups_of[from].len() / 2;
                let moving: Vec<usize> = groups_of[from][half..].to_vec();
                self.split_shard(from, to, &moving)?;
                return Ok(Some(RebalanceAction::Split { from, to, groups: moving }));
            }
        }
        // Merge: a completely cold slot drains into the busiest one.
        if owning.len() >= 2 {
            let cold = owning.iter().copied().find(|&w| deltas[w] == 0 && depths[w] == 0);
            if let Some(from) = cold {
                let into = owning
                    .iter()
                    .copied()
                    .filter(|&w| w != from)
                    .max_by_key(|&w| (deltas[w], depths[w]))
                    .expect("owning.len() >= 2");
                let moving = groups_of[from].clone();
                self.merge_shard(from, into)?;
                return Ok(Some(RebalanceAction::Merge { from, into, groups: moving }));
            }
        }
        Ok(None)
    }

    /// Slots the supervisor fail-stopped for breaching the respawn-storm
    /// cap, with the restart count that tripped it.
    pub fn respawn_storms(&self) -> Vec<(usize, u32)> {
        self.shared.storms.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Graceful shutdown: queued batches are fully drained (crashed
    /// shards are restored one last time to finish their queues),
    /// workers and the supervisor join, and the final stats plus all
    /// undrained events are returned.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.finish(true);
        let events: Vec<Event> = self.drain_events();
        ShutdownReport { stats: self.stats(), events }
    }

    /// Abrupt teardown for crash drills: queues are closed instead of
    /// receiving `Shutdown` markers, so producers racing this call see
    /// [`RuntimeError::Disconnected`] rather than parking. Already
    /// queued batches still drain (they were accepted), wedged shards
    /// stay down, and whatever events were collected are returned. With
    /// persistence this exercises exactly the state a process kill
    /// leaves behind — the WAL's durable watermark, not the producers'
    /// view — which [`Self::open`] must then recover.
    pub fn crash(mut self) -> ShutdownReport {
        self.finish(false);
        let events: Vec<Event> = self.drain_events();
        ShutdownReport { stats: self.stats(), events }
    }

    /// Common teardown. `graceful` sends `Shutdown` markers (workers
    /// drain everything queued before them); the abrupt path closes the
    /// queues instead, which also drains what is already queued but
    /// refuses new messages.
    fn finish(&mut self, graceful: bool) {
        if self.finished {
            return;
        }
        self.finished = true;
        // Wake producers/queries parked on a frozen route; they exit
        // with `Disconnected` instead of waiting out a migration that
        // will never promote.
        self.shared.routing.begin_shutdown();
        if graceful {
            for queue in &self.shared.queues {
                // Err means the shard failed terminally; it settled.
                let _ = queue.push(ShardMsg::Shutdown);
            }
        } else {
            for queue in &self.shared.queues {
                queue.close();
            }
        }
        // The supervisor keeps restoring crashed workers while this
        // waits, so a shard that dies with messages still queued gets a
        // fresh worker to finish the drain.
        self.shared.board.wait_all_settled();
        self.shared.board.begin_shutdown();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut slots = self.shared.handles.lock().expect("handles poisoned");
            slots.iter_mut().filter_map(|slot| slot.take()).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        // Last sender gone: the receiver sees disconnect after the
        // buffered events.
        *self.shared.events_tx.lock().expect("events sender poisoned") = None;
    }
}

impl Drop for ShardedRuntime {
    fn drop(&mut self) {
        self.finish(false);
    }
}

// A network front end shares one runtime across connection-handler
// threads: `&ShardedRuntime` must be sendable to all of them.
const _: fn() = || {
    fn _assert_sync<T: Send + Sync>() {}
    _assert_sync::<ShardedRuntime>();
};

/// Sorts events into a canonical total order: by query class, then
/// stream(s), then time, then the class-specific payload. Two event
/// multisets are equal iff they compare equal after this sort —
/// used to check sharded against single-threaded execution.
pub fn sort_events(events: &mut [Event]) {
    fn key(e: &Event) -> (u8, u64, u64, u64, u64, u64) {
        match e {
            Event::Aggregate { stream, alarm } => (
                0,
                *stream as u64,
                alarm.time,
                alarm.window as u64,
                alarm.true_value.to_bits(),
                alarm.is_true_alarm as u64,
            ),
            Event::Trend(m) => {
                (1, m.stream as u64, m.time, m.pattern as u64, m.distance.to_bits(), 0)
            }
            Event::Correlation(p) => {
                (2, p.a as u64, p.time, p.b as u64, p.time_other, p.feature_distance.to_bits())
            }
        }
    }
    events.sort_by_key(key);
}
