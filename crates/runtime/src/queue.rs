//! A bounded MPSC queue that survives the death of its consumer.
//!
//! `std::sync::mpsc::sync_channel` ties the queued messages to the
//! `Receiver`: when a worker thread panics, its receiver is dropped and
//! every queued batch is lost. Recovery needs the opposite — the queue
//! must outlive any one worker so a restored worker can resume draining
//! exactly where its predecessor died. This queue lives in an [`Arc`]
//! shared by producers, the worker, and the supervisor; a panicking
//! worker merely stops popping. For the same reason lock poisoning is
//! recovered, not propagated: every mutation below keeps the guarded
//! state consistent, so a panic while holding the lock (the fault
//! injector kills workers on purpose) leaves nothing to unwind.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a non-blocking push was refused.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushError<T> {
    /// The queue is at capacity; the message is handed back for retry.
    Full(T),
    /// The queue was closed; no further messages are accepted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer queue with blocking and non-blocking push,
/// blocking pop, and explicit close.
pub(crate) struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(capacity), closed: false }),
            capacity: capacity.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues without blocking; a full or closed queue returns the
    /// message for the caller to retry or report.
    pub(crate) fn try_push(&self, msg: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Err(PushError::Closed(msg));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(msg));
        }
        inner.items.push_back(msg);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, parking the producer while the queue is at capacity.
    /// Returns the message back if the queue was closed.
    pub(crate) fn push(&self, msg: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if inner.closed {
                return Err(msg);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(msg);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues, parking the consumer while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained — queued messages
    /// are always delivered, even after close.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(msg);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes fail from now on, pops drain the
    /// remainder and then report exhaustion. Idempotent.
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        drop(inner);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Current number of queued messages (production code tracks depth
    /// through `ShardCounters` instead).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_capacity() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_survives_a_dead_consumer() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(41).unwrap();
        q.try_push(42).unwrap();
        let q2 = Arc::clone(&q);
        let dead = std::thread::spawn(move || {
            let _ = q2.pop();
            panic!("injected");
        });
        assert!(dead.join().is_err());
        // A replacement consumer picks up exactly where the first died.
        assert_eq!(q.pop(), Some(42));
    }

    #[test]
    fn blocking_push_unparks_on_drain() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }
}
