//! A bounded MPSC queue that survives the death of its consumer.
//!
//! `std::sync::mpsc::sync_channel` ties the queued messages to the
//! `Receiver`: when a worker thread panics, its receiver is dropped and
//! every queued batch is lost. Recovery needs the opposite — the queue
//! must outlive any one worker so a restored worker can resume draining
//! exactly where its predecessor died. This queue lives in an [`Arc`]
//! shared by producers, the worker, and the supervisor; a panicking
//! worker merely stops popping. For the same reason lock poisoning is
//! recovered, not propagated: every mutation below keeps the guarded
//! state consistent, so a panic while holding the lock (the fault
//! injector kills workers on purpose) leaves nothing to unwind.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a non-blocking push was refused.
// The runtime's ingestion paths moved to the admission-gated variants
// ([`TryAdmitError`]); this ungated surface remains for the queue's own
// test suite and any caller without routing concerns.
#[allow(dead_code)]
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushError<T> {
    /// The queue is at capacity; the message is handed back for retry.
    Full(T),
    /// The queue was closed; no further messages are accepted.
    Closed(T),
}

/// Why an admission-gated push was refused (see [`BoundedQueue::push_if`]).
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum AdmitError<T> {
    /// The admission predicate said no; the routing layer should
    /// re-resolve the destination and retry elsewhere.
    Refused(T),
    /// The queue was closed; no further messages are accepted.
    Closed(T),
}

/// Why a non-blocking admission-gated push was refused
/// (see [`BoundedQueue::try_push_if`]).
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum TryAdmitError<T> {
    /// The admission predicate said no.
    Refused(T),
    /// The queue is at capacity; the message is handed back for retry.
    Full(T),
    /// The queue was closed; no further messages are accepted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer queue with blocking and non-blocking push,
/// blocking pop, and explicit close.
pub(crate) struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(capacity), closed: false }),
            capacity: capacity.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues without blocking; a full or closed queue returns the
    /// message for the caller to retry or report.
    #[allow(dead_code)]
    pub(crate) fn try_push(&self, msg: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Err(PushError::Closed(msg));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(msg));
        }
        inner.items.push_back(msg);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, parking the producer while the queue is at capacity.
    /// Returns the message back if the queue was closed.
    pub(crate) fn push(&self, msg: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if inner.closed {
                return Err(msg);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(msg);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Enqueues, parking while at capacity, but only while `admit`
    /// (re-evaluated under the queue lock on every attempt) returns
    /// `true`. This is the migration-safe producer entry point: the
    /// routing layer's admission check and the enqueue happen atomically
    /// with respect to the coordinator, which takes the same queue lock
    /// to push its freeze marker — so no message can be admitted for a
    /// group *after* that group's `MigrateOut` marker is queued behind
    /// it. A `false` from `admit` hands the message back as
    /// [`AdmitError::Refused`]; the caller re-resolves routing and
    /// retries on the new owner.
    pub(crate) fn push_if(
        &self,
        msg: T,
        mut admit: impl FnMut() -> bool,
    ) -> Result<(), AdmitError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if inner.closed {
                return Err(AdmitError::Closed(msg));
            }
            if !admit() {
                return Err(AdmitError::Refused(msg));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(msg);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking [`Self::push_if`]: a full queue is reported as
    /// `Full` instead of parking, so capacity pressure surfaces through
    /// the admission-checked path exactly as it does via
    /// [`Self::try_push`].
    pub(crate) fn try_push_if(
        &self,
        msg: T,
        mut admit: impl FnMut() -> bool,
    ) -> Result<(), TryAdmitError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Err(TryAdmitError::Closed(msg));
        }
        if !admit() {
            return Err(TryAdmitError::Refused(msg));
        }
        if inner.items.len() >= self.capacity {
            return Err(TryAdmitError::Full(msg));
        }
        inner.items.push_back(msg);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Appends ignoring capacity (never blocks, never refuses a live
    /// queue). The supervisor uses this to re-push a migration marker a
    /// dead worker consumed without sealing: the marker *must* land even
    /// when producers have the queue at capacity, and the supervisor
    /// cannot park (it would deadlock the respawn that frees the queue).
    /// Only closed queues refuse.
    pub(crate) fn force_push(&self, msg: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Err(msg);
        }
        inner.items.push_back(msg);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues, parking the consumer while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained — queued messages
    /// are always delivered, even after close. The production consumer
    /// uses [`Self::drain_into`] (a one-message drain is the degenerate
    /// case); this single-pop form remains for tests.
    #[cfg(test)]
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(msg);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Bulk dequeue: parks like [`Self::pop`] until at least one message
    /// is ready (or the queue is closed and drained), then moves the
    /// first message plus every ready message behind it matching
    /// `same_group` — up to `max` total — into `out` under a single lock
    /// acquisition, and issues one `not_full` notification for the whole
    /// group. This is the group-commit entry point: a backlogged queue
    /// hands the consumer its entire ready run for the price of one
    /// Mutex/Condvar round-trip instead of one per message.
    ///
    /// The first ready message is moved unconditionally (so a
    /// non-matching head still makes progress, like [`Self::pop`]); the
    /// run then extends only while `same_group` accepts the *next*
    /// queued message. Messages that would break the run stay queued —
    /// the consumer may crash with `out` partially processed, and
    /// anything still in the queue survives for its successor, so only
    /// messages the group-commit protocol can replay (journaled batches)
    /// should match the predicate.
    ///
    /// Returns the number of messages moved; `0` means closed and empty
    /// (the [`Self::pop`] `None` case). `out` is appended to, not
    /// cleared.
    pub(crate) fn drain_into(
        &self,
        out: &mut Vec<T>,
        max: usize,
        same_group: impl Fn(&T) -> bool,
    ) -> usize {
        let max = max.max(1);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(first) = inner.items.pop_front() {
                let matched = same_group(&first);
                out.push(first);
                let mut n = 1;
                if matched {
                    while n < max {
                        match inner.items.front() {
                            Some(next) if same_group(next) => {
                                out.push(inner.items.pop_front().expect("front exists"));
                                n += 1;
                            }
                            _ => break,
                        }
                    }
                }
                drop(inner);
                // Several capacity slots may have freed at once: wake
                // every parked producer, not one.
                self.not_full.notify_all();
                return n;
            }
            if inner.closed {
                return 0;
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes fail from now on, pops drain the
    /// remainder and then report exhaustion. Idempotent.
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        drop(inner);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Current number of queued messages (production code tracks depth
    /// through `ShardCounters` instead).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_capacity() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_survives_a_dead_consumer() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(41).unwrap();
        q.try_push(42).unwrap();
        let q2 = Arc::clone(&q);
        let dead = std::thread::spawn(move || {
            let _ = q2.pop();
            panic!("injected");
        });
        assert!(dead.join().is_err());
        // A replacement consumer picks up exactly where the first died.
        assert_eq!(q.pop(), Some(42));
    }

    #[test]
    fn drain_into_moves_ready_run_in_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 3, |_| true), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(q.drain_into(&mut out, 16, |_| true), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn drain_into_stops_at_a_run_boundary() {
        let q = BoundedQueue::new(8);
        for v in [2, 4, 6, 7, 8] {
            q.try_push(v).unwrap();
        }
        let even = |v: &i32| v % 2 == 0;
        // The leading even run drains as one group; the odd message
        // stays queued behind it.
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 16, even), 3);
        assert_eq!(out, vec![2, 4, 6]);
        assert_eq!(q.len(), 2);
        // A non-matching head still makes progress — alone.
        out.clear();
        assert_eq!(q.drain_into(&mut out, 16, even), 1);
        assert_eq!(out, vec![7]);
        out.clear();
        assert_eq!(q.drain_into(&mut out, 16, even), 1);
        assert_eq!(out, vec![8]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn drain_into_blocks_then_returns_zero_on_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut out = Vec::new();
            let n = q2.drain_into(&mut out, 8, |_| true);
            (n, out)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        let (n, out) = consumer.join().unwrap();
        assert_eq!((n, out), (1, vec![7]));
        // Closed-and-empty reports exhaustion, like pop() -> None.
        q.close();
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 8, |_| true), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn drain_into_unparks_every_blocked_producer() {
        let q = Arc::new(BoundedQueue::new(2));
        q.try_push(0).unwrap();
        q.try_push(1).unwrap();
        let producers: Vec<_> = (2..4)
            .map(|i| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.push(i).is_ok())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // One bulk drain frees both slots and must wake both producers.
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 8, |_| true), 2);
        for p in producers {
            assert!(p.join().unwrap());
        }
        let mut rest = Vec::new();
        assert_eq!(q.drain_into(&mut rest, 8, |_| true), 2);
        rest.sort_unstable();
        assert_eq!(rest, vec![2, 3]);
    }

    #[test]
    fn push_if_admits_refuses_and_closes() {
        let q = BoundedQueue::new(4);
        assert!(q.push_if(1, || true).is_ok());
        assert_eq!(q.push_if(2, || false), Err(AdmitError::Refused(2)));
        assert_eq!(q.try_push_if(3, || false), Err(TryAdmitError::Refused(3)));
        assert!(q.try_push_if(3, || true).is_ok());
        q.close();
        assert_eq!(q.push_if(4, || true), Err(AdmitError::Closed(4)));
        assert_eq!(q.try_push_if(5, || true), Err(TryAdmitError::Closed(5)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn push_if_reevaluates_admission_while_parked() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0).unwrap();
        let frozen = Arc::new(AtomicBool::new(false));
        let (q2, f2) = (Arc::clone(&q), Arc::clone(&frozen));
        let producer = std::thread::spawn(move || q2.push_if(1, || !f2.load(Ordering::SeqCst)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Freeze the route while the producer is parked on capacity; the
        // wake-up must re-check admission and hand the message back.
        frozen.store(true, Ordering::SeqCst);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(producer.join().unwrap(), Err(AdmitError::Refused(1)));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn try_push_if_reports_full() {
        let q = BoundedQueue::new(1);
        q.try_push(0).unwrap();
        assert_eq!(q.try_push_if(1, || true), Err(TryAdmitError::Full(1)));
    }

    #[test]
    fn force_push_ignores_capacity_but_not_close() {
        let q = BoundedQueue::new(1);
        q.try_push(0).unwrap();
        assert!(q.force_push(1).is_ok());
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.force_push(2), Err(2));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_unparks_on_drain() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }
}
