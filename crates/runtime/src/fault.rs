//! Deterministic fault injection for the sharded runtime.
//!
//! A [`FaultPlan`] is a list of one-shot faults, each pinned to a shard
//! and an append ordinal: "kill shard 2 when it applies its 1 000th
//! value". Because shards process their queues sequentially, the append
//! ordinal is a deterministic clock — the same plan over the same
//! workload reproduces the same crash point on every run, regardless of
//! thread scheduling. Plans are injected through
//! [`crate::RuntimeConfig::fault_plan`] and cost one `Option` check per
//! append when absent.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Which on-disk file a disk fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFile {
    /// The shard's live write-ahead log (`shard-N.wal`).
    Wal,
    /// The shard's current snapshot file (`shard-N.snap`).
    Snapshot,
}

/// Disk-level failure modes, injected into the persistence layer.
///
/// `TornWrite` and `FailFsync` fire on the *live* write path;
/// `BitFlip` and `TruncateWal` model at-rest damage and are applied to
/// the files the next time [`crate::ShardedRuntime::open`] scans the
/// directory. Byte offsets are clamped into the file, so `u64::MAX`
/// reliably targets the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// Stop the WAL write that crosses byte `at_byte` mid-frame — the
    /// partial record a power cut leaves behind. The shard's journal is
    /// wedged afterwards and the shard fails stop (a durable log that
    /// can no longer be appended to must not accept writes it cannot
    /// journal). Injected on batch records, the write-ahead path.
    TornWrite {
        /// Absolute WAL file offset at which the write is cut.
        at_byte: u64,
    },
    /// Flip one bit of the chosen file at `at_byte` (clamped) before
    /// the next `open()` scan — silent at-rest corruption.
    BitFlip {
        /// File to damage.
        file: DiskFile,
        /// Byte offset of the flipped bit (clamped to the last byte).
        at_byte: u64,
    },
    /// Truncate the WAL to `at_byte` (clamped) before the next
    /// `open()` scan — a lost tail.
    TruncateWal {
        /// Length to truncate to (clamped to the file length).
        at_byte: u64,
    },
    /// The shard's `nth` fsync (1-based, counted across WAL and
    /// snapshot syncs) reports failure. Data stays in the page cache —
    /// harmless unless the machine loses power — but a snapshot whose
    /// fsync fails is aborted, keeping the previous generation.
    FailFsync {
        /// Which fsync fails.
        nth: u64,
    },
}

/// One scheduled disk fault.
#[derive(Debug)]
pub struct DiskFault {
    /// The shard whose files the fault targets.
    pub shard: usize,
    /// The failure mode.
    pub kind: DiskFaultKind,
    fired: AtomicBool,
}

/// Protocol step of a live group migration at which a migration fault
/// fires (see [`FaultPlan::migration_fault`]). Steps are named from the
/// perspective of the worker executing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationStep {
    /// On the *source* worker: the `MigrateOut` marker was drained but
    /// the group has not been sealed yet — the marker dies with the
    /// worker and the supervisor must re-push it.
    BeforeSeal,
    /// On the *source* worker: the group was sealed (route is `Handed`)
    /// but the worker dies before returning to its queue.
    AfterSeal,
    /// On the *destination* worker: the `Adopt` message was drained but
    /// the rebuilt state has not been installed — the in-memory payload
    /// dies and the respawn must rebuild from the journal.
    BeforeAdopt,
    /// On the *destination* worker: the group state was installed but
    /// the worker dies before draining anything else.
    AfterAdopt,
}

/// One scheduled migration fault: fires when `group` reaches `step`.
#[derive(Debug)]
pub struct MigrationFault {
    /// The stream group whose migration triggers the fault.
    pub group: usize,
    /// The protocol step at which to fire.
    pub step: MigrationStep,
    /// Panic or stall (DelayDrain is meaningless inside the protocol).
    pub kind: FaultKind,
    fired: AtomicBool,
}

/// What happens when a fault triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker thread panics mid-batch (before applying the
    /// triggering append). The supervisor restores the shard from its
    /// last snapshot and replays the journaled suffix.
    Panic,
    /// The worker sleeps in place, wedging its queue — producers feel
    /// backpressure (`QueueFull` / parked blocking calls) until the
    /// stall clears.
    Stall(Duration),
    /// The worker finishes the current batch, then sleeps before
    /// draining the next message — a slow consumer rather than a wedged
    /// one.
    DelayDrain(Duration),
}

/// One scheduled fault.
#[derive(Debug)]
pub struct Fault {
    /// The shard the fault lives on.
    pub shard: usize,
    /// The 1-based append ordinal (within the shard) that triggers it.
    pub at_append: u64,
    /// The failure mode.
    pub kind: FaultKind,
    fired: AtomicBool,
}

/// A reproducible set of one-shot faults, shared read-only by every
/// shard. Each fault fires at most once per run — a shard restored past
/// its crash point does not re-crash.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    disk: Vec<DiskFault>,
    migration: Vec<MigrationFault>,
}

impl FaultPlan {
    /// An empty plan; add faults with the builder methods.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a worker panic on `shard` at its `at_append`-th value.
    pub fn kill(mut self, shard: usize, at_append: u64) -> Self {
        self.faults.push(Fault {
            shard,
            at_append,
            kind: FaultKind::Panic,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Adds an in-place stall on `shard` at its `at_append`-th value.
    pub fn stall(mut self, shard: usize, at_append: u64, pause: Duration) -> Self {
        self.faults.push(Fault {
            shard,
            at_append,
            kind: FaultKind::Stall(pause),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Adds a delayed drain on `shard` starting at its `at_append`-th
    /// value.
    pub fn delay_drain(mut self, shard: usize, at_append: u64, pause: Duration) -> Self {
        self.faults.push(Fault {
            shard,
            at_append,
            kind: FaultKind::DelayDrain(pause),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// One seeded kill per shard, each at a pseudo-random append ordinal
    /// in `[lo, hi)` — the reproducible "crash every shard somewhere
    /// mid-ingest" plan the chaos tests and `stardust chaos` use.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn seeded_kills(seed: u64, n_shards: usize, lo: u64, hi: u64) -> Self {
        assert!(lo < hi, "empty kill window");
        let mut plan = FaultPlan::new();
        let mut state = seed;
        for shard in 0..n_shards {
            // splitmix64: statistically solid, dependency-free.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            plan = plan.kill(shard, lo + z % (hi - lo));
        }
        plan
    }

    /// Adds a migration fault: when the migration protocol for stream
    /// group `group` reaches `step`, the worker executing that step
    /// panics or stalls. One-shot, like every other fault.
    pub fn migration_fault(mut self, group: usize, step: MigrationStep, kind: FaultKind) -> Self {
        self.migration.push(MigrationFault { group, step, kind, fired: AtomicBool::new(false) });
        self
    }

    /// Adds a disk fault on `shard`'s persistence files.
    pub fn disk_fault(mut self, shard: usize, kind: DiskFaultKind) -> Self {
        self.disk.push(DiskFault { shard, kind, fired: AtomicBool::new(false) });
        self
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The scheduled disk faults.
    pub fn disk_faults(&self) -> &[DiskFault] {
        &self.disk
    }

    /// The scheduled migration faults.
    pub fn migration_faults(&self) -> &[MigrationFault] {
        &self.migration
    }

    /// How many faults (worker, disk, migration) have triggered so far.
    pub fn fired_count(&self) -> usize {
        self.faults.iter().filter(|f| f.fired.load(Ordering::Relaxed)).count()
            + self.disk.iter().filter(|f| f.fired.load(Ordering::Relaxed)).count()
            + self.migration.iter().filter(|f| f.fired.load(Ordering::Relaxed)).count()
    }

    /// Checks whether a fault triggers for `shard` at the (1-based)
    /// append ordinal `append_no`; marks it fired. `>=` rather than `==`
    /// so a fault scheduled inside an already-processed prefix (e.g.
    /// `at_append: 0`) still fires on the next append.
    pub(crate) fn fire(&self, shard: usize, append_no: u64) -> Option<FaultKind> {
        for f in &self.faults {
            if f.shard == shard
                && append_no >= f.at_append
                && !f.fired.swap(true, Ordering::Relaxed)
            {
                return Some(f.kind);
            }
        }
        None
    }

    /// Checks whether a migration fault triggers for `group` at `step`;
    /// marks it fired. Exact-match on the step (each step happens at
    /// most once per marker/adopt delivery, and re-deliveries after a
    /// kill are exactly what the one-shot latch protects against).
    pub(crate) fn fire_migration(&self, group: usize, step: MigrationStep) -> Option<FaultKind> {
        for f in &self.migration {
            if f.group == group && f.step == step && !f.fired.swap(true, Ordering::Relaxed) {
                return Some(f.kind);
            }
        }
        None
    }

    /// Should the WAL write spanning `[start, end)` on `shard` be torn?
    /// Returns the absolute offset to cut at (clamped into the span so
    /// an `at_byte` the file already passed still fires on the next
    /// write, like [`Self::fire`]'s `>=`). One-shot.
    pub(crate) fn tear_wal(&self, shard: usize, start: u64, end: u64) -> Option<u64> {
        for f in &self.disk {
            if f.shard != shard {
                continue;
            }
            if let DiskFaultKind::TornWrite { at_byte } = f.kind {
                if at_byte < end && !f.fired.swap(true, Ordering::Relaxed) {
                    return Some(at_byte.clamp(start, end));
                }
            }
        }
        None
    }

    /// Does `shard`'s `ordinal`-th fsync (1-based) fail? One-shot per
    /// scheduled fault; `>=` so a small `nth` fires on the next sync.
    pub(crate) fn fsync_fails(&self, shard: usize, ordinal: u64) -> bool {
        self.disk.iter().any(|f| {
            f.shard == shard
                && matches!(f.kind, DiskFaultKind::FailFsync { nth } if ordinal >= nth)
                && !f.fired.swap(true, Ordering::Relaxed)
        })
    }

    /// Drains the at-rest faults (`BitFlip` / `TruncateWal`) pending
    /// for `shard`, marking them fired. Called by `open()` before it
    /// scans the shard's files.
    pub(crate) fn take_open_faults(&self, shard: usize) -> Vec<DiskFaultKind> {
        self.disk
            .iter()
            .filter(|f| {
                f.shard == shard
                    && matches!(
                        f.kind,
                        DiskFaultKind::BitFlip { .. } | DiskFaultKind::TruncateWal { .. }
                    )
                    && !f.fired.swap(true, Ordering::Relaxed)
            })
            .map(|f| f.kind)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_at_their_ordinal() {
        let plan = FaultPlan::new().kill(1, 5).stall(1, 7, Duration::from_millis(1));
        assert_eq!(plan.fire(0, 5), None, "wrong shard");
        assert_eq!(plan.fire(1, 4), None, "too early");
        assert_eq!(plan.fire(1, 5), Some(FaultKind::Panic));
        assert_eq!(plan.fire(1, 5), None, "one-shot");
        assert_eq!(plan.fire(1, 6), None, "already fired");
        assert_eq!(plan.fire(1, 9), Some(FaultKind::Stall(Duration::from_millis(1))));
        assert_eq!(plan.fired_count(), 2);
    }

    #[test]
    fn disk_faults_fire_once_and_clamp() {
        let plan = FaultPlan::new()
            .disk_fault(0, DiskFaultKind::TornWrite { at_byte: 100 })
            .disk_fault(1, DiskFaultKind::FailFsync { nth: 3 })
            .disk_fault(0, DiskFaultKind::TruncateWal { at_byte: 7 });
        assert_eq!(plan.tear_wal(0, 120, 180), Some(120), "already-passed offset clamps to start");
        assert_eq!(plan.tear_wal(0, 120, 180), None, "one-shot");
        assert!(!plan.fsync_fails(1, 2), "too early");
        assert!(plan.fsync_fails(1, 3));
        assert!(!plan.fsync_fails(1, 4), "one-shot");
        let pending = plan.take_open_faults(0);
        assert_eq!(pending, vec![DiskFaultKind::TruncateWal { at_byte: 7 }]);
        assert!(plan.take_open_faults(0).is_empty(), "drained");
        assert_eq!(plan.fired_count(), 3);
    }

    #[test]
    fn tear_inside_span_cuts_at_the_offset() {
        let plan = FaultPlan::new().disk_fault(2, DiskFaultKind::TornWrite { at_byte: 150 });
        assert_eq!(plan.tear_wal(2, 100, 140), None, "write ends before the offset");
        assert_eq!(plan.tear_wal(2, 140, 180), Some(150));
    }

    #[test]
    fn migration_faults_fire_once_per_step() {
        let plan = FaultPlan::new()
            .migration_fault(2, MigrationStep::BeforeSeal, FaultKind::Panic)
            .migration_fault(2, MigrationStep::AfterAdopt, FaultKind::Panic);
        assert_eq!(plan.fire_migration(1, MigrationStep::BeforeSeal), None, "wrong group");
        assert_eq!(plan.fire_migration(2, MigrationStep::AfterSeal), None, "wrong step");
        assert_eq!(plan.fire_migration(2, MigrationStep::BeforeSeal), Some(FaultKind::Panic));
        assert_eq!(plan.fire_migration(2, MigrationStep::BeforeSeal), None, "one-shot");
        assert_eq!(plan.fire_migration(2, MigrationStep::AfterAdopt), Some(FaultKind::Panic));
        assert_eq!(plan.fired_count(), 2);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        let a = FaultPlan::seeded_kills(9, 4, 100, 200);
        let b = FaultPlan::seeded_kills(9, 4, 100, 200);
        let ords = |p: &FaultPlan| p.faults().iter().map(|f| f.at_append).collect::<Vec<_>>();
        assert_eq!(ords(&a), ords(&b));
        assert!(a.faults().iter().all(|f| (100..200).contains(&f.at_append)));
        assert_eq!(a.faults().len(), 4);
        let c = FaultPlan::seeded_kills(10, 4, 100, 200);
        assert_ne!(ords(&a), ords(&c), "different seed, different plan");
    }
}
