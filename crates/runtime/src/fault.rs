//! Deterministic fault injection for the sharded runtime.
//!
//! A [`FaultPlan`] is a list of one-shot faults, each pinned to a shard
//! and an append ordinal: "kill shard 2 when it applies its 1 000th
//! value". Because shards process their queues sequentially, the append
//! ordinal is a deterministic clock — the same plan over the same
//! workload reproduces the same crash point on every run, regardless of
//! thread scheduling. Plans are injected through
//! [`crate::RuntimeConfig::fault_plan`] and cost one `Option` check per
//! append when absent.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// What happens when a fault triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker thread panics mid-batch (before applying the
    /// triggering append). The supervisor restores the shard from its
    /// last snapshot and replays the journaled suffix.
    Panic,
    /// The worker sleeps in place, wedging its queue — producers feel
    /// backpressure (`QueueFull` / parked blocking calls) until the
    /// stall clears.
    Stall(Duration),
    /// The worker finishes the current batch, then sleeps before
    /// draining the next message — a slow consumer rather than a wedged
    /// one.
    DelayDrain(Duration),
}

/// One scheduled fault.
#[derive(Debug)]
pub struct Fault {
    /// The shard the fault lives on.
    pub shard: usize,
    /// The 1-based append ordinal (within the shard) that triggers it.
    pub at_append: u64,
    /// The failure mode.
    pub kind: FaultKind,
    fired: AtomicBool,
}

/// A reproducible set of one-shot faults, shared read-only by every
/// shard. Each fault fires at most once per run — a shard restored past
/// its crash point does not re-crash.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan; add faults with the builder methods.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a worker panic on `shard` at its `at_append`-th value.
    pub fn kill(mut self, shard: usize, at_append: u64) -> Self {
        self.faults.push(Fault {
            shard,
            at_append,
            kind: FaultKind::Panic,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Adds an in-place stall on `shard` at its `at_append`-th value.
    pub fn stall(mut self, shard: usize, at_append: u64, pause: Duration) -> Self {
        self.faults.push(Fault {
            shard,
            at_append,
            kind: FaultKind::Stall(pause),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Adds a delayed drain on `shard` starting at its `at_append`-th
    /// value.
    pub fn delay_drain(mut self, shard: usize, at_append: u64, pause: Duration) -> Self {
        self.faults.push(Fault {
            shard,
            at_append,
            kind: FaultKind::DelayDrain(pause),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// One seeded kill per shard, each at a pseudo-random append ordinal
    /// in `[lo, hi)` — the reproducible "crash every shard somewhere
    /// mid-ingest" plan the chaos tests and `stardust chaos` use.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn seeded_kills(seed: u64, n_shards: usize, lo: u64, hi: u64) -> Self {
        assert!(lo < hi, "empty kill window");
        let mut plan = FaultPlan::new();
        let mut state = seed;
        for shard in 0..n_shards {
            // splitmix64: statistically solid, dependency-free.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            plan = plan.kill(shard, lo + z % (hi - lo));
        }
        plan
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// How many faults have triggered so far.
    pub fn fired_count(&self) -> usize {
        self.faults.iter().filter(|f| f.fired.load(Ordering::Relaxed)).count()
    }

    /// Checks whether a fault triggers for `shard` at the (1-based)
    /// append ordinal `append_no`; marks it fired. `>=` rather than `==`
    /// so a fault scheduled inside an already-processed prefix (e.g.
    /// `at_append: 0`) still fires on the next append.
    pub(crate) fn fire(&self, shard: usize, append_no: u64) -> Option<FaultKind> {
        for f in &self.faults {
            if f.shard == shard
                && append_no >= f.at_append
                && !f.fired.swap(true, Ordering::Relaxed)
            {
                return Some(f.kind);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_at_their_ordinal() {
        let plan = FaultPlan::new().kill(1, 5).stall(1, 7, Duration::from_millis(1));
        assert_eq!(plan.fire(0, 5), None, "wrong shard");
        assert_eq!(plan.fire(1, 4), None, "too early");
        assert_eq!(plan.fire(1, 5), Some(FaultKind::Panic));
        assert_eq!(plan.fire(1, 5), None, "one-shot");
        assert_eq!(plan.fire(1, 6), None, "already fired");
        assert_eq!(plan.fire(1, 9), Some(FaultKind::Stall(Duration::from_millis(1))));
        assert_eq!(plan.fired_count(), 2);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        let a = FaultPlan::seeded_kills(9, 4, 100, 200);
        let b = FaultPlan::seeded_kills(9, 4, 100, 200);
        let ords = |p: &FaultPlan| p.faults().iter().map(|f| f.at_append).collect::<Vec<_>>();
        assert_eq!(ords(&a), ords(&b));
        assert!(a.faults().iter().all(|f| (100..200).contains(&f.at_append)));
        assert_eq!(a.faults().len(), 4);
        let c = FaultPlan::seeded_kills(10, 4, 100, 200);
        assert_ne!(ords(&a), ords(&c), "different seed, different plan");
    }
}
