//! The per-shard worker: drains batches into its own
//! [`UnifiedMonitor`], remaps local stream ids back to global ones, and
//! answers scatter-gather queries in queue order. The worker also hosts
//! the fault-injection hooks and the crash-reporting [`Board`] the
//! supervisor watches.

use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use stardust_core::query::aggregate::AlarmStats;
use stardust_core::query::correlation::CorrelationStats;
use stardust_core::query::trend::TrendStats;
use stardust_core::sketch::{BlockSketch, SketchDelta};
use stardust_core::stream::{StreamId, Time};
use stardust_core::unified::{Event, UnifiedMonitor};

use crate::fault::{FaultKind, FaultPlan};
use crate::queue::BoundedQueue;
use crate::snapshot::ShardRecovery;
use crate::stats::ShardCounters;
use crate::telemetry::RuntimeTelemetry;

/// Messages a shard's bounded queue carries. Queries ride the same
/// queue as batches, so a query observes every batch submitted before
/// it (per-shard sequential consistency).
pub(crate) enum ShardMsg {
    /// Local-id value batch plus its submission instant (for latency).
    Batch(Vec<(StreamId, f64)>, Instant),
    /// A query and the channel to answer on (tagged with shard id).
    Query(QueryRequest, Sender<(usize, QueryReply)>),
    /// Drain nothing further; reply channelless, exit the loop.
    Shutdown,
}

/// A scatter-gather query, expressed in shard-local stream ids (the
/// runtime translates global ids before sending).
#[derive(Debug, Clone)]
pub(crate) enum QueryRequest {
    /// Current composed interval of one monitored aggregate window.
    AggregateInterval {
        /// Local stream id.
        stream: StreamId,
        /// Monitored window size.
        window: usize,
    },
    /// Cumulative per-class counters.
    ClassStats,
    /// Phase 1 of the cross-shard correlation query: every local
    /// stream's correlation clock, so the collector can pick the global
    /// verification instant `t* = min` over all streams.
    CorrClock,
    /// Phase 3: ground-truth same-shard pairs at the global instant `t`,
    /// plus the raw windows ending at `t` for the listed local streams
    /// (the collector verifies cross-shard candidates with them).
    CorrVerify {
        /// Global verification instant.
        t: Time,
        /// Local ids whose raw windows the collector needs.
        windows_for: Vec<StreamId>,
    },
}

/// A shard's answer to a [`QueryRequest`]. Stream ids are already
/// remapped to global ids.
#[derive(Debug, Clone)]
pub(crate) enum QueryReply {
    /// `AggregateInterval` answer.
    AggregateInterval(Option<(f64, f64)>),
    /// `ClassStats` answer.
    ClassStats(ClassStats),
    /// `CorrClock` answer: one clock per local stream (empty when this
    /// shard runs no correlation monitor).
    CorrClock(Vec<Option<Time>>),
    /// `CorrVerify` answer.
    CorrVerify {
        /// Same-shard pairs at `t` (global ids, unsorted).
        pairs: Vec<(StreamId, StreamId, f64)>,
        /// Requested raw windows (global ids; `None` when the window
        /// ending at `t` is no longer in the stream's history).
        windows: Vec<(StreamId, Option<Vec<f64>>)>,
    },
}

/// Collector-side mirror of every stream's sliding-window sketch, keyed
/// by **global** stream id. Workers publish deltas on a cadence;
/// absorption is idempotent (deltas carry absolute block indices), so a
/// recovered worker re-shipping already-seen blocks never double-counts
/// — the exactly-once argument for the exchange is the delta frontier,
/// not delivery counting.
pub(crate) struct SketchBoard {
    slots: Mutex<Vec<Option<BlockSketch>>>,
    /// Sketch publications absorbed (one per stream per cadence firing).
    pub exchanges: std::sync::atomic::AtomicU64,
    /// Cross-shard pairs that survived the sketch prune and went to
    /// exact verification.
    pub candidates: std::sync::atomic::AtomicU64,
    /// Cross-shard pairs dismissed by the sketch lower bound.
    pub pruned: std::sync::atomic::AtomicU64,
    /// Cross-shard candidates confirmed by exact verification.
    pub confirmed: std::sync::atomic::AtomicU64,
}

impl SketchBoard {
    pub(crate) fn new(n_streams: usize) -> Self {
        SketchBoard {
            slots: Mutex::new((0..n_streams).map(|_| None).collect()),
            exchanges: std::sync::atomic::AtomicU64::new(0),
            candidates: std::sync::atomic::AtomicU64::new(0),
            pruned: std::sync::atomic::AtomicU64::new(0),
            confirmed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Absorbs one stream's delta into its mirror (created on first
    /// publication with the shipped geometry).
    pub(crate) fn publish(
        &self,
        stream: StreamId,
        window: usize,
        block: usize,
        delta: &SketchDelta,
    ) {
        let mut slots = self.slots.lock().expect("sketch board poisoned");
        slots[stream as usize].get_or_insert_with(|| BlockSketch::new(window, block)).absorb(delta);
        self.exchanges.fetch_add(1, Ordering::Relaxed);
    }

    /// A clone of every mirror, for the collector's prune pass.
    pub(crate) fn mirrors(&self) -> Vec<Option<BlockSketch>> {
        self.slots.lock().expect("sketch board poisoned").clone()
    }
}

/// Cumulative counters of all three query classes, mergeable across
/// shards by field-wise addition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Aggregate (burst/volatility) counters.
    pub aggregate: AlarmStats,
    /// Trend counters.
    pub trend: TrendStats,
    /// Correlation counters.
    pub correlation: CorrelationStats,
}

impl ClassStats {
    /// Field-wise accumulation.
    pub fn merge(&mut self, other: &ClassStats) {
        self.aggregate.checks += other.aggregate.checks;
        self.aggregate.candidates += other.aggregate.candidates;
        self.aggregate.true_alarms += other.aggregate.true_alarms;
        self.trend.candidates += other.trend.candidates;
        self.trend.matches += other.trend.matches;
        self.correlation.reported += other.correlation.reported;
        self.correlation.true_pairs += other.correlation.true_pairs;
    }
}

/// Local stream id → global stream id for shard `shard` of `n_shards`.
fn global_id(shard: usize, n_shards: usize, local: StreamId) -> StreamId {
    local * n_shards as StreamId + shard as StreamId
}

/// Rewrites an event's shard-local stream ids back to global ids.
pub(crate) fn remap_event(shard: usize, n_shards: usize, ev: Event) -> Event {
    match ev {
        Event::Aggregate { stream, alarm } => {
            Event::Aggregate { stream: global_id(shard, n_shards, stream), alarm }
        }
        Event::Trend(mut m) => {
            m.stream = global_id(shard, n_shards, m.stream);
            Event::Trend(m)
        }
        Event::Correlation(mut p) => {
            p.a = global_id(shard, n_shards, p.a);
            p.b = global_id(shard, n_shards, p.b);
            Event::Correlation(p)
        }
    }
}

/// What the board records for each shard.
struct BoardState {
    /// Shards whose workers died and await restoration, in death order.
    dead: Vec<usize>,
    /// `clean[s]`: shard `s`'s worker exited its loop normally.
    clean: Vec<bool>,
    /// `failed[s]`: shard `s` died with no supervisor to restore it (its
    /// queue is closed, producers see `Disconnected`).
    failed: Vec<bool>,
    /// Set once the runtime wants the supervisor gone.
    shutdown: bool,
}

/// Shared bulletin board between workers (reporting their own fate via
/// [`DeathNotice`]), the supervisor (waiting for dead shards), and the
/// runtime's shutdown path (waiting for every shard to settle).
pub(crate) struct Board {
    state: Mutex<BoardState>,
    cv: Condvar,
}

impl Board {
    pub(crate) fn new(n_shards: usize) -> Self {
        Board {
            state: Mutex::new(BoardState {
                dead: Vec::new(),
                clean: vec![false; n_shards],
                failed: vec![false; n_shards],
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn report_clean(&self, shard: usize) {
        self.state.lock().expect("board poisoned").clean[shard] = true;
        self.cv.notify_all();
    }

    fn report_dead(&self, shard: usize, terminal: bool) {
        let mut st = self.state.lock().expect("board poisoned");
        if terminal {
            st.failed[shard] = true;
        } else {
            st.dead.push(shard);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Marks a shard unrecoverable (the supervisor could not respawn a
    /// worker for it).
    pub(crate) fn mark_failed(&self, shard: usize) {
        self.state.lock().expect("board poisoned").failed[shard] = true;
        self.cv.notify_all();
    }

    /// Supervisor side: blocks until a shard dies (returning its id) or
    /// shutdown begins with no deaths pending (returning `None`).
    /// Pending deaths win over the shutdown flag so no shard is
    /// abandoned mid-restore.
    pub(crate) fn next_dead(&self) -> Option<usize> {
        let mut st = self.state.lock().expect("board poisoned");
        loop {
            if let Some(shard) = st.dead.pop() {
                return Some(shard);
            }
            if st.shutdown {
                return None;
            }
            st = self.cv.wait(st).expect("board poisoned");
        }
    }

    /// Shutdown path: blocks until every shard either exited cleanly or
    /// failed terminally. While this waits the supervisor is still
    /// restoring crashed shards, so a shard that dies with `Shutdown`
    /// still queued gets one more worker to drain it.
    pub(crate) fn wait_all_settled(&self) {
        let mut st = self.state.lock().expect("board poisoned");
        while !st.clean.iter().zip(&st.failed).all(|(c, f)| *c || *f) {
            st = self.cv.wait(st).expect("board poisoned");
        }
    }

    /// Tells [`Self::next_dead`] to return once its backlog is empty.
    pub(crate) fn begin_shutdown(&self) {
        self.state.lock().expect("board poisoned").shutdown = true;
        self.cv.notify_all();
    }
}

/// Reports a worker's fate to the [`Board`] from `Drop`, so a panic
/// anywhere in the worker loop is reported on unwind. The loop flips
/// `clean` to `true` on its orderly exits; any other unwinding is a
/// death.
pub(crate) struct DeathNotice {
    pub shard: usize,
    pub board: Arc<Board>,
    pub clean: bool,
    /// With recovery disabled there is no supervisor to restore the
    /// shard, so death must close the queue (unparking producers into
    /// `Disconnected`) and is terminal.
    pub close_on_death: Option<Arc<BoundedQueue<ShardMsg>>>,
}

impl Drop for DeathNotice {
    fn drop(&mut self) {
        if self.clean {
            self.board.report_clean(self.shard);
        } else {
            let terminal = self.close_on_death.is_some();
            if let Some(queue) = &self.close_on_death {
                queue.close();
            }
            self.board.report_dead(self.shard, terminal);
        }
    }
}

/// Everything one worker thread owns.
pub(crate) struct Worker {
    pub shard: usize,
    pub n_shards: usize,
    pub n_local_streams: usize,
    pub monitor: Option<UnifiedMonitor>,
    pub inbox: Arc<BoundedQueue<ShardMsg>>,
    pub events: Sender<Event>,
    pub counters: Arc<ShardCounters>,
    /// Crash-recovery journal; `None` disables journaling entirely.
    pub recovery: Option<Arc<ShardRecovery>>,
    /// Injected faults; `None` costs nothing on the append path.
    pub faults: Option<Arc<FaultPlan>>,
    /// Appends applied over the shard's lifetime, across restarts — the
    /// deterministic fault clock.
    pub processed: u64,
    /// Snapshot cadence in appends; `0` never snapshots (recovery then
    /// replays the shard's full history from the journal).
    pub snapshot_every: u64,
    /// Collector-side sketch mirrors this worker publishes to.
    pub sketches: Arc<SketchBoard>,
    /// Publish sketches every this many sealed blocks of the slowest
    /// local stream; `0` disables the exchange entirely.
    pub sketch_cadence: u64,
    /// Sealed-block frontier at the last publication. Deliberately reset
    /// to `0` on worker restore: the re-publication it causes is
    /// absorbed idempotently by the board.
    pub last_shipped: u64,
    /// Runtime-level metric handles; detached when telemetry is off.
    pub telemetry: RuntimeTelemetry,
}

impl Worker {
    /// Local stream id → global stream id for this shard.
    fn global(&self, local: StreamId) -> StreamId {
        global_id(self.shard, self.n_shards, local)
    }

    fn answer(&self, req: QueryRequest) -> QueryReply {
        let Some(monitor) = &self.monitor else {
            return match req {
                QueryRequest::AggregateInterval { .. } => QueryReply::AggregateInterval(None),
                QueryRequest::ClassStats => QueryReply::ClassStats(ClassStats::default()),
                QueryRequest::CorrClock => QueryReply::CorrClock(Vec::new()),
                QueryRequest::CorrVerify { windows_for, .. } => QueryReply::CorrVerify {
                    pairs: Vec::new(),
                    windows: windows_for.iter().map(|&s| (self.global(s), None)).collect(),
                },
            };
        };
        match req {
            QueryRequest::AggregateInterval { stream, window } => QueryReply::AggregateInterval(
                monitor.aggregate_monitor(stream).and_then(|m| m.window_interval(window)),
            ),
            QueryRequest::ClassStats => {
                let mut stats = ClassStats::default();
                // Aggregate stats live per stream; trend/correlation are
                // monitor-wide.
                for local in 0..self.n_local_streams as StreamId {
                    let Some(m) = monitor.aggregate_monitor(local) else { break };
                    let s = m.stats();
                    stats.aggregate.checks += s.checks;
                    stats.aggregate.candidates += s.candidates;
                    stats.aggregate.true_alarms += s.true_alarms;
                }
                if let Some(t) = monitor.trend_monitor() {
                    stats.trend = t.stats();
                }
                if let Some(c) = monitor.correlation_monitor() {
                    stats.correlation = c.stats();
                }
                QueryReply::ClassStats(stats)
            }
            QueryRequest::CorrClock => {
                let clocks = monitor
                    .correlation_monitor()
                    .map(|corr| {
                        (0..corr.n_streams() as StreamId).map(|s| corr.summary(s).now()).collect()
                    })
                    .unwrap_or_default();
                QueryReply::CorrClock(clocks)
            }
            QueryRequest::CorrVerify { t, windows_for } => {
                let Some(corr) = monitor.correlation_monitor() else {
                    return QueryReply::CorrVerify {
                        pairs: Vec::new(),
                        windows: windows_for.iter().map(|&s| (self.global(s), None)).collect(),
                    };
                };
                let pairs = corr
                    .linear_scan_pairs(t)
                    .into_iter()
                    .map(|(a, b, c)| (self.global(a), self.global(b), c))
                    .collect();
                let n = corr.window();
                let windows = windows_for
                    .iter()
                    .map(|&local| (self.global(local), corr.summary(local).history().window(t, n)))
                    .collect();
                QueryReply::CorrVerify { pairs, windows }
            }
        }
    }

    /// Ships every local sketch to the collector board once the slowest
    /// local stream has sealed `sketch_cadence` new blocks. Publication
    /// is driven by the sealed-block frontier, not wall time, so it is
    /// deterministic per batch history — and re-running it after a crash
    /// restore is a no-op on the board.
    fn maybe_publish_sketches(&mut self) {
        if self.sketch_cadence == 0 {
            return;
        }
        let Some(corr) = self.monitor.as_ref().and_then(|m| m.correlation_monitor()) else {
            return;
        };
        let frontier = (0..corr.n_streams() as StreamId)
            .map(|s| {
                let sk = corr.sketch(s);
                sk.end_time().map_or(0, |t| (t + 1) / sk.block() as u64)
            })
            .min()
            .unwrap_or(0);
        if frontier < self.last_shipped.saturating_add(self.sketch_cadence) {
            return;
        }
        let start = Instant::now();
        for local in 0..corr.n_streams() as StreamId {
            let sk = corr.sketch(local);
            self.sketches.publish(self.global(local), sk.window(), sk.block(), &sk.delta());
        }
        self.last_shipped = frontier;
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.telemetry.sketch_exchange.observe(ns);
        self.telemetry.sketch_exchanges.inc();
    }

    /// The worker loop: drain messages until `Shutdown` or the queue is
    /// closed and empty, whichever comes first. `notice` reports the
    /// exit (or a panic's unwind) to the board.
    pub fn run(mut self, notice: &mut DeathNotice) {
        let mut pending_delay: Option<Duration> = None;
        // Event buffer reused across batches: the monitor's batched-append
        // API pushes into it without per-value allocation.
        let mut event_buf = Vec::new();
        loop {
            if let Some(pause) = pending_delay.take() {
                std::thread::sleep(pause);
            }
            let Some(msg) = self.inbox.pop() else {
                notice.clean = true;
                return;
            };
            match msg {
                ShardMsg::Batch(items, submitted) => {
                    // Only batches count toward queue depth; queries and
                    // shutdown ride the queue but are not backpressure
                    // signals.
                    self.counters.note_dequeued();
                    // Write-ahead: the batch is journaled before any of
                    // it is applied, so a crash at any point inside it
                    // loses nothing.
                    if let Some(rec) = &self.recovery {
                        let _span = self.telemetry.journal.span();
                        rec.journal_batch(&items);
                    }
                    let mut events = 0u64;
                    let mut rejected = 0u64;
                    if let Some(monitor) = &mut self.monitor {
                        event_buf.clear();
                        for &(local, value) in &items {
                            self.processed += 1;
                            if let Some(plan) = &self.faults {
                                match plan.fire(self.shard, self.processed) {
                                    Some(FaultKind::Panic) => panic!(
                                        "injected fault: shard {} killed at append {}",
                                        self.shard, self.processed
                                    ),
                                    Some(FaultKind::Stall(pause)) => std::thread::sleep(pause),
                                    Some(FaultKind::DelayDrain(pause)) => {
                                        pending_delay = Some(pause);
                                    }
                                    None => {}
                                }
                            }
                            // Non-finite samples are rejected at the append
                            // boundary (the monitor guards identically, so a
                            // journaled NaN replays as the same no-op). The
                            // fault clock above still ticks for them.
                            if !value.is_finite() {
                                rejected += 1;
                                continue;
                            }
                            monitor.append_into(local, value, &mut event_buf);
                        }
                        // One send pass after the whole batch applied. A
                        // mid-batch crash sends nothing from this batch, and
                        // replay regenerates the unsent events — exactly-once
                        // either way (see ShardRecovery::rebuild).
                        for ev in event_buf.drain(..) {
                            // A send error means the runtime dropped its
                            // receiver (shutdown already under way); keep
                            // draining so producers unblock.
                            events += 1;
                            let global = remap_event(self.shard, self.n_shards, ev);
                            let _ = self.events.send(global);
                            if let Some(rec) = &self.recovery {
                                rec.note_emitted();
                            }
                        }
                    }
                    self.counters.appends.fetch_add(items.len() as u64, Ordering::Relaxed);
                    if rejected > 0 {
                        self.counters.rejected.fetch_add(rejected, Ordering::Relaxed);
                        self.telemetry.rejected.add(rejected);
                    }
                    if events > 0 {
                        self.counters.events.fetch_add(events, Ordering::Relaxed);
                        if let Some(rec) = &self.recovery {
                            // The events are out; ack the cumulative count to
                            // the durable WAL so a process-level recovery
                            // suppresses exactly these.
                            rec.ack_emitted();
                        }
                    }
                    let ns = submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    self.counters.note_batch(ns);
                    self.telemetry.batch_latency.observe(ns);
                    self.maybe_publish_sketches();
                    if let Some(rec) = &self.recovery {
                        if self.snapshot_every > 0 && rec.suffix_len() as u64 >= self.snapshot_every
                        {
                            let _span = self.telemetry.snapshot.span();
                            rec.record_snapshot(self.monitor.as_ref().map(|m| m.snapshot()));
                        }
                    }
                }
                ShardMsg::Query(req, reply) => {
                    let _ = reply.send((self.shard, self.answer(req)));
                }
                ShardMsg::Shutdown => {
                    notice.clean = true;
                    return;
                }
            }
        }
    }
}
