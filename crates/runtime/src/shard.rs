//! The per-shard worker: drains batches into its own
//! [`UnifiedMonitor`], remaps local stream ids back to global ones, and
//! answers scatter-gather queries in queue order. The worker also hosts
//! the fault-injection hooks and the crash-reporting [`Board`] the
//! supervisor watches.

use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use stardust_core::query::aggregate::AlarmStats;
use stardust_core::query::correlation::CorrelationStats;
use stardust_core::query::trend::TrendStats;
use stardust_core::sketch::{BlockSketch, SketchDelta};
use stardust_core::stream::{StreamId, Time};
use stardust_core::unified::{Event, UnifiedMonitor};

use crate::fault::{FaultKind, FaultPlan};
use crate::queue::BoundedQueue;
use crate::snapshot::ShardRecovery;
use crate::stats::ShardCounters;
use crate::telemetry::RuntimeTelemetry;

/// Messages a shard's bounded queue carries. Queries ride the same
/// queue as batches, so a query observes every batch submitted before
/// it (per-shard sequential consistency).
pub(crate) enum ShardMsg {
    /// Local-id value batch plus its submission instant (for latency).
    Batch(Vec<(StreamId, f64)>, Instant),
    /// A query and the channel to answer on (tagged with shard id).
    Query(QueryRequest, Sender<(usize, QueryReply)>),
    /// Drain nothing further; reply channelless, exit the loop.
    Shutdown,
}

/// A scatter-gather query, expressed in shard-local stream ids (the
/// runtime translates global ids before sending).
#[derive(Debug, Clone)]
pub(crate) enum QueryRequest {
    /// Current composed interval of one monitored aggregate window.
    AggregateInterval {
        /// Local stream id.
        stream: StreamId,
        /// Monitored window size.
        window: usize,
    },
    /// Cumulative per-class counters.
    ClassStats,
    /// Phase 1 of the cross-shard correlation query: every local
    /// stream's correlation clock, so the collector can pick the global
    /// verification instant `t* = min` over all streams.
    CorrClock,
    /// Phase 3: ground-truth same-shard pairs at the global instant `t`,
    /// plus the raw windows ending at `t` for the listed local streams
    /// (the collector verifies cross-shard candidates with them).
    CorrVerify {
        /// Global verification instant.
        t: Time,
        /// Local ids whose raw windows the collector needs.
        windows_for: Vec<StreamId>,
    },
}

/// A shard's answer to a [`QueryRequest`]. Stream ids are already
/// remapped to global ids.
#[derive(Debug, Clone)]
pub(crate) enum QueryReply {
    /// `AggregateInterval` answer.
    AggregateInterval(Option<(f64, f64)>),
    /// `ClassStats` answer.
    ClassStats(ClassStats),
    /// `CorrClock` answer: one clock per local stream (empty when this
    /// shard runs no correlation monitor).
    CorrClock(Vec<Option<Time>>),
    /// `CorrVerify` answer.
    CorrVerify {
        /// Same-shard pairs at `t` (global ids, unsorted).
        pairs: Vec<(StreamId, StreamId, f64)>,
        /// Requested raw windows (global ids; `None` when the window
        /// ending at `t` is no longer in the stream's history).
        windows: Vec<(StreamId, Option<Vec<f64>>)>,
    },
}

/// Collector-side mirror of every stream's sliding-window sketch, keyed
/// by **global** stream id. Workers publish deltas on a cadence;
/// absorption is idempotent (deltas carry absolute block indices), so a
/// recovered worker re-shipping already-seen blocks never double-counts
/// — the exactly-once argument for the exchange is the delta frontier,
/// not delivery counting.
pub(crate) struct SketchBoard {
    slots: Mutex<Vec<Option<BlockSketch>>>,
    /// Sketch publications absorbed (one per stream per cadence firing).
    pub exchanges: std::sync::atomic::AtomicU64,
    /// Cross-shard pairs that survived the sketch prune and went to
    /// exact verification.
    pub candidates: std::sync::atomic::AtomicU64,
    /// Cross-shard pairs dismissed by the sketch lower bound.
    pub pruned: std::sync::atomic::AtomicU64,
    /// Cross-shard candidates confirmed by exact verification.
    pub confirmed: std::sync::atomic::AtomicU64,
}

impl SketchBoard {
    pub(crate) fn new(n_streams: usize) -> Self {
        SketchBoard {
            slots: Mutex::new((0..n_streams).map(|_| None).collect()),
            exchanges: std::sync::atomic::AtomicU64::new(0),
            candidates: std::sync::atomic::AtomicU64::new(0),
            pruned: std::sync::atomic::AtomicU64::new(0),
            confirmed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Absorbs one stream's delta into its mirror (created on first
    /// publication with the shipped geometry).
    pub(crate) fn publish(
        &self,
        stream: StreamId,
        window: usize,
        block: usize,
        delta: &SketchDelta,
    ) {
        let mut slots = self.slots.lock().expect("sketch board poisoned");
        slots[stream as usize].get_or_insert_with(|| BlockSketch::new(window, block)).absorb(delta);
        self.exchanges.fetch_add(1, Ordering::Relaxed);
    }

    /// A clone of every mirror, for the collector's prune pass.
    pub(crate) fn mirrors(&self) -> Vec<Option<BlockSketch>> {
        self.slots.lock().expect("sketch board poisoned").clone()
    }
}

/// Cumulative counters of all three query classes, mergeable across
/// shards by field-wise addition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Aggregate (burst/volatility) counters.
    pub aggregate: AlarmStats,
    /// Trend counters.
    pub trend: TrendStats,
    /// Correlation counters.
    pub correlation: CorrelationStats,
}

impl ClassStats {
    /// Field-wise accumulation.
    pub fn merge(&mut self, other: &ClassStats) {
        self.aggregate.checks += other.aggregate.checks;
        self.aggregate.candidates += other.aggregate.candidates;
        self.aggregate.true_alarms += other.aggregate.true_alarms;
        self.trend.candidates += other.trend.candidates;
        self.trend.matches += other.trend.matches;
        self.correlation.reported += other.correlation.reported;
        self.correlation.true_pairs += other.correlation.true_pairs;
    }
}

/// Local stream id → global stream id for shard `shard` of `n_shards`.
fn global_id(shard: usize, n_shards: usize, local: StreamId) -> StreamId {
    local * n_shards as StreamId + shard as StreamId
}

/// Frontier-driven sketch publication, shared by the live worker loop
/// and the recovery replay: once the slowest local stream has sealed
/// `cadence` new blocks past `last_shipped`, every local sketch ships
/// to the collector board (absorbed idempotently — re-publication after
/// a crash restore is a no-op on the mirrors). The recovery replay must
/// drive this too: batches a dead worker drained but never applied are
/// replayed from the journal rather than re-popped, and any cadence
/// boundary they cross has to fire exactly as it would have on the live
/// path.
pub(crate) fn publish_sketches_if_due(
    monitor: Option<&UnifiedMonitor>,
    shard: usize,
    n_shards: usize,
    sketches: &SketchBoard,
    cadence: u64,
    last_shipped: &mut u64,
    telemetry: &RuntimeTelemetry,
) {
    if cadence == 0 {
        return;
    }
    let Some(corr) = monitor.and_then(|m| m.correlation_monitor()) else {
        return;
    };
    let frontier = (0..corr.n_streams() as StreamId)
        .map(|s| {
            let sk = corr.sketch(s);
            sk.end_time().map_or(0, |t| (t + 1) / sk.block() as u64)
        })
        .min()
        .unwrap_or(0);
    if frontier < last_shipped.saturating_add(cadence) {
        return;
    }
    let start = Instant::now();
    for local in 0..corr.n_streams() as StreamId {
        let sk = corr.sketch(local);
        sketches.publish(global_id(shard, n_shards, local), sk.window(), sk.block(), &sk.delta());
    }
    *last_shipped = frontier;
    let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    telemetry.sketch_exchange.observe(ns);
    telemetry.sketch_exchanges.inc();
}

/// Rewrites an event's shard-local stream ids back to global ids.
pub(crate) fn remap_event(shard: usize, n_shards: usize, ev: Event) -> Event {
    match ev {
        Event::Aggregate { stream, alarm } => {
            Event::Aggregate { stream: global_id(shard, n_shards, stream), alarm }
        }
        Event::Trend(mut m) => {
            m.stream = global_id(shard, n_shards, m.stream);
            Event::Trend(m)
        }
        Event::Correlation(mut p) => {
            p.a = global_id(shard, n_shards, p.a);
            p.b = global_id(shard, n_shards, p.b);
            Event::Correlation(p)
        }
    }
}

/// What the board records for each shard.
struct BoardState {
    /// Shards whose workers died and await restoration, in death order.
    dead: Vec<usize>,
    /// `clean[s]`: shard `s`'s worker exited its loop normally.
    clean: Vec<bool>,
    /// `failed[s]`: shard `s` died with no supervisor to restore it (its
    /// queue is closed, producers see `Disconnected`).
    failed: Vec<bool>,
    /// Set once the runtime wants the supervisor gone.
    shutdown: bool,
}

/// Shared bulletin board between workers (reporting their own fate via
/// [`DeathNotice`]), the supervisor (waiting for dead shards), and the
/// runtime's shutdown path (waiting for every shard to settle).
pub(crate) struct Board {
    state: Mutex<BoardState>,
    cv: Condvar,
}

impl Board {
    pub(crate) fn new(n_shards: usize) -> Self {
        Board {
            state: Mutex::new(BoardState {
                dead: Vec::new(),
                clean: vec![false; n_shards],
                failed: vec![false; n_shards],
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn report_clean(&self, shard: usize) {
        self.state.lock().expect("board poisoned").clean[shard] = true;
        self.cv.notify_all();
    }

    fn report_dead(&self, shard: usize, terminal: bool) {
        let mut st = self.state.lock().expect("board poisoned");
        if terminal {
            st.failed[shard] = true;
        } else {
            st.dead.push(shard);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Marks a shard unrecoverable (the supervisor could not respawn a
    /// worker for it).
    pub(crate) fn mark_failed(&self, shard: usize) {
        self.state.lock().expect("board poisoned").failed[shard] = true;
        self.cv.notify_all();
    }

    /// Supervisor side: blocks until a shard dies (returning its id) or
    /// shutdown begins with no deaths pending (returning `None`).
    /// Pending deaths win over the shutdown flag so no shard is
    /// abandoned mid-restore.
    pub(crate) fn next_dead(&self) -> Option<usize> {
        let mut st = self.state.lock().expect("board poisoned");
        loop {
            if let Some(shard) = st.dead.pop() {
                return Some(shard);
            }
            if st.shutdown {
                return None;
            }
            st = self.cv.wait(st).expect("board poisoned");
        }
    }

    /// Shutdown path: blocks until every shard either exited cleanly or
    /// failed terminally. While this waits the supervisor is still
    /// restoring crashed shards, so a shard that dies with `Shutdown`
    /// still queued gets one more worker to drain it.
    pub(crate) fn wait_all_settled(&self) {
        let mut st = self.state.lock().expect("board poisoned");
        while !st.clean.iter().zip(&st.failed).all(|(c, f)| *c || *f) {
            st = self.cv.wait(st).expect("board poisoned");
        }
    }

    /// Tells [`Self::next_dead`] to return once its backlog is empty.
    pub(crate) fn begin_shutdown(&self) {
        self.state.lock().expect("board poisoned").shutdown = true;
        self.cv.notify_all();
    }
}

/// Reports a worker's fate to the [`Board`] from `Drop`, so a panic
/// anywhere in the worker loop is reported on unwind. The loop flips
/// `clean` to `true` on its orderly exits; any other unwinding is a
/// death.
pub(crate) struct DeathNotice {
    pub shard: usize,
    pub board: Arc<Board>,
    pub clean: bool,
    /// With recovery disabled there is no supervisor to restore the
    /// shard, so death must close the queue (unparking producers into
    /// `Disconnected`) and is terminal.
    pub close_on_death: Option<Arc<BoundedQueue<ShardMsg>>>,
}

impl Drop for DeathNotice {
    fn drop(&mut self) {
        if self.clean {
            self.board.report_clean(self.shard);
        } else {
            let terminal = self.close_on_death.is_some();
            if let Some(queue) = &self.close_on_death {
                queue.close();
            }
            self.board.report_dead(self.shard, terminal);
        }
    }
}

/// Most batches one drain may move into a commit group. Bounds the
/// coalesced WAL write (and the grouped event send) regardless of queue
/// capacity; a longer backlog simply commits as consecutive groups.
const MAX_GROUP_BATCHES: usize = 256;

/// Everything one worker thread owns.
pub(crate) struct Worker {
    pub shard: usize,
    pub n_shards: usize,
    pub n_local_streams: usize,
    pub monitor: Option<UnifiedMonitor>,
    pub inbox: Arc<BoundedQueue<ShardMsg>>,
    pub events: Sender<Vec<Event>>,
    pub counters: Arc<ShardCounters>,
    /// Crash-recovery journal; `None` disables journaling entirely.
    pub recovery: Option<Arc<ShardRecovery>>,
    /// Injected faults; `None` costs nothing on the append path.
    pub faults: Option<Arc<FaultPlan>>,
    /// Appends applied over the shard's lifetime, across restarts — the
    /// deterministic fault clock.
    pub processed: u64,
    /// Snapshot cadence in appends; `0` never snapshots (recovery then
    /// replays the shard's full history from the journal).
    pub snapshot_every: u64,
    /// Collector-side sketch mirrors this worker publishes to.
    pub sketches: Arc<SketchBoard>,
    /// Publish sketches every this many sealed blocks of the slowest
    /// local stream; `0` disables the exchange entirely.
    pub sketch_cadence: u64,
    /// Sealed-block frontier at the last publication. Deliberately reset
    /// to `0` on worker restore: the re-publication it causes is
    /// absorbed idempotently by the board.
    pub last_shipped: u64,
    /// Runtime-level metric handles; detached when telemetry is off.
    pub telemetry: RuntimeTelemetry,
}

impl Worker {
    /// Local stream id → global stream id for this shard.
    fn global(&self, local: StreamId) -> StreamId {
        global_id(self.shard, self.n_shards, local)
    }

    fn answer(&self, req: QueryRequest) -> QueryReply {
        let Some(monitor) = &self.monitor else {
            return match req {
                QueryRequest::AggregateInterval { .. } => QueryReply::AggregateInterval(None),
                QueryRequest::ClassStats => QueryReply::ClassStats(ClassStats::default()),
                QueryRequest::CorrClock => QueryReply::CorrClock(Vec::new()),
                QueryRequest::CorrVerify { windows_for, .. } => QueryReply::CorrVerify {
                    pairs: Vec::new(),
                    windows: windows_for.iter().map(|&s| (self.global(s), None)).collect(),
                },
            };
        };
        match req {
            QueryRequest::AggregateInterval { stream, window } => QueryReply::AggregateInterval(
                monitor.aggregate_monitor(stream).and_then(|m| m.window_interval(window)),
            ),
            QueryRequest::ClassStats => {
                let mut stats = ClassStats::default();
                // Aggregate stats live per stream; trend/correlation are
                // monitor-wide.
                for local in 0..self.n_local_streams as StreamId {
                    let Some(m) = monitor.aggregate_monitor(local) else { break };
                    let s = m.stats();
                    stats.aggregate.checks += s.checks;
                    stats.aggregate.candidates += s.candidates;
                    stats.aggregate.true_alarms += s.true_alarms;
                }
                if let Some(t) = monitor.trend_monitor() {
                    stats.trend = t.stats();
                }
                if let Some(c) = monitor.correlation_monitor() {
                    stats.correlation = c.stats();
                }
                QueryReply::ClassStats(stats)
            }
            QueryRequest::CorrClock => {
                let clocks = monitor
                    .correlation_monitor()
                    .map(|corr| {
                        (0..corr.n_streams() as StreamId).map(|s| corr.summary(s).now()).collect()
                    })
                    .unwrap_or_default();
                QueryReply::CorrClock(clocks)
            }
            QueryRequest::CorrVerify { t, windows_for } => {
                let Some(corr) = monitor.correlation_monitor() else {
                    return QueryReply::CorrVerify {
                        pairs: Vec::new(),
                        windows: windows_for.iter().map(|&s| (self.global(s), None)).collect(),
                    };
                };
                let pairs = corr
                    .linear_scan_pairs(t)
                    .into_iter()
                    .map(|(a, b, c)| (self.global(a), self.global(b), c))
                    .collect();
                let n = corr.window();
                let windows = windows_for
                    .iter()
                    .map(|&local| (self.global(local), corr.summary(local).history().window(t, n)))
                    .collect();
                QueryReply::CorrVerify { pairs, windows }
            }
        }
    }

    /// Ships every local sketch to the collector board once the slowest
    /// local stream has sealed `sketch_cadence` new blocks. Publication
    /// is driven by the sealed-block frontier, not wall time, so it is
    /// deterministic per batch history — and re-running it after a crash
    /// restore is a no-op on the board.
    fn maybe_publish_sketches(&mut self) {
        publish_sketches_if_due(
            self.monitor.as_ref(),
            self.shard,
            self.n_shards,
            &self.sketches,
            self.sketch_cadence,
            &mut self.last_shipped,
            &self.telemetry,
        );
    }

    /// The worker loop: drain message runs until `Shutdown` or the
    /// queue is closed and empty, whichever comes first. A contiguous
    /// run of batches commits as one group ([`Self::commit_group`]);
    /// queries and shutdown break runs and are handled singly, at their
    /// queue position — they are never buffered in worker-local state,
    /// so a crash mid-group cannot lose a query reply (journaled
    /// batches are the only messages the recovery protocol can replay).
    /// `notice` reports the exit (or a panic's unwind) to the board.
    pub fn run(mut self, notice: &mut DeathNotice) {
        let mut pending_delay: Option<Duration> = None;
        // Buffers reused across commit groups: the drained run, the
        // per-batch monitor output, and the group's remapped events.
        // Steady state allocates nothing per group — the one exception
        // is the exact-sized Vec that hands a non-empty group's events
        // to the collector (ownership crosses the channel).
        let mut msgs: Vec<ShardMsg> = Vec::new();
        let mut event_buf: Vec<Event> = Vec::new();
        let mut group_events: Vec<Event> = Vec::new();
        loop {
            if let Some(pause) = pending_delay.take() {
                std::thread::sleep(pause);
            }
            msgs.clear();
            let n = self
                .inbox
                .drain_into(&mut msgs, MAX_GROUP_BATCHES, |m| matches!(m, ShardMsg::Batch(..)));
            if n == 0 {
                notice.clean = true;
                return;
            }
            if matches!(msgs[0], ShardMsg::Batch(..)) {
                self.commit_group(&msgs, &mut event_buf, &mut group_events, &mut pending_delay);
            } else {
                match msgs.pop().expect("drained run is non-empty") {
                    ShardMsg::Query(req, reply) => {
                        let _ = reply.send((self.shard, self.answer(req)));
                    }
                    ShardMsg::Shutdown => {
                        notice.clean = true;
                        return;
                    }
                    ShardMsg::Batch(..) => unreachable!("batch heads commit as groups"),
                }
            }
        }
    }

    /// Commits one drained run of batches as a group: the queue's
    /// high-water mark was sampled at the pre-drain depth, the whole
    /// group is journaled under one coalesced WAL write (a single fsync
    /// under `SyncPolicy::Always`) before any batch is applied, and the
    /// group's events leave in one channel send followed by one durable
    /// ack.
    ///
    /// Crash safety: a panic anywhere past the journal step loses
    /// nothing — every batch of the group is already journaled, so the
    /// recovery replay regenerates exactly the journaled prefix's
    /// events, suppressing the ones this worker already sent (none
    /// mid-group: the send is a single all-or-nothing handoff after the
    /// last batch applied).
    fn commit_group(
        &mut self,
        msgs: &[ShardMsg],
        event_buf: &mut Vec<Event>,
        group_events: &mut Vec<Event>,
        pending_delay: &mut Option<Duration>,
    ) {
        // Only batches count toward queue depth; the drain predicate
        // guarantees the run is all batches.
        self.counters.note_drained(msgs.len());
        // Write-ahead for the whole group, before anything is applied.
        if let Some(rec) = &self.recovery {
            let batches = msgs.iter().map(|m| match m {
                ShardMsg::Batch(items, _) => items.as_slice(),
                _ => unreachable!("commit groups contain only batches"),
            });
            let _span = self.telemetry.journal.span();
            rec.journal_group(batches);
        }
        self.telemetry.group_size.observe(msgs.len() as u64);
        let mut rejected_total = 0u64;
        for msg in msgs {
            let ShardMsg::Batch(items, submitted) = msg else {
                unreachable!("commit groups contain only batches")
            };
            let mut rejected = 0u64;
            if let Some(monitor) = &mut self.monitor {
                event_buf.clear();
                for &(local, value) in items {
                    self.processed += 1;
                    if let Some(plan) = &self.faults {
                        match plan.fire(self.shard, self.processed) {
                            Some(FaultKind::Panic) => panic!(
                                "injected fault: shard {} killed at append {}",
                                self.shard, self.processed
                            ),
                            Some(FaultKind::Stall(pause)) => std::thread::sleep(pause),
                            Some(FaultKind::DelayDrain(pause)) => {
                                *pending_delay = Some(pause);
                            }
                            None => {}
                        }
                    }
                    // Non-finite samples are rejected at the append
                    // boundary (the monitor guards identically, so a
                    // journaled NaN replays as the same no-op). The
                    // fault clock above still ticks for them.
                    if !value.is_finite() {
                        rejected += 1;
                        continue;
                    }
                    monitor.append_into(local, value, event_buf);
                }
                // Collect this batch's events behind the group's; they
                // ship once the whole group has applied, in batch order.
                for ev in event_buf.drain(..) {
                    group_events.push(remap_event(self.shard, self.n_shards, ev));
                }
            }
            self.counters.appends.fetch_add(items.len() as u64, Ordering::Relaxed);
            rejected_total += rejected;
            let ns = submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.counters.note_batch(ns);
            self.telemetry.batch_latency.observe(ns);
            // Cadence is frontier-driven and board absorption is
            // idempotent, so publishing inside the group keeps the
            // exchange on the same per-batch schedule as before.
            self.maybe_publish_sketches();
        }
        if rejected_total > 0 {
            self.counters.rejected.fetch_add(rejected_total, Ordering::Relaxed);
            self.telemetry.rejected.add(rejected_total);
        }
        let emitted = group_events.len() as u64;
        if emitted > 0 {
            // One send per event-bearing group. `split_off(0)` moves the
            // events into an exact-sized Vec for the collector while the
            // buffer keeps its capacity for the next group. A send error
            // means the runtime dropped its receiver (shutdown already
            // under way); keep draining so producers unblock.
            let _ = self.events.send(group_events.split_off(0));
            self.counters.events.fetch_add(emitted, Ordering::Relaxed);
            if let Some(rec) = &self.recovery {
                // The events are out; ack the cumulative count to the
                // durable WAL so a process-level recovery suppresses
                // exactly these.
                rec.note_emitted_n(emitted);
                rec.ack_emitted();
            }
        }
        // Snapshot only at group boundaries: the journal suffix holds
        // the whole group from the write-ahead step, and a snapshot must
        // not cover appends that have not been applied yet.
        if let Some(rec) = &self.recovery {
            if self.snapshot_every > 0 && rec.suffix_len() as u64 >= self.snapshot_every {
                let _span = self.telemetry.snapshot.span();
                rec.record_snapshot(self.monitor.as_ref().map(|m| m.snapshot()));
            }
        }
    }
}
