//! The per-shard worker: drains batches into its own
//! [`UnifiedMonitor`], remaps local stream ids back to global ones, and
//! answers scatter-gather queries in queue order.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use stardust_core::query::aggregate::AlarmStats;
use stardust_core::query::correlation::CorrelationStats;
use stardust_core::query::trend::TrendStats;
use stardust_core::stream::StreamId;
use stardust_core::unified::{Event, UnifiedMonitor};

use crate::stats::ShardCounters;

/// Messages a shard's bounded queue carries. Queries ride the same
/// queue as batches, so a query observes every batch submitted before
/// it (per-shard sequential consistency).
pub(crate) enum ShardMsg {
    /// Local-id value batch plus its submission instant (for latency).
    Batch(Vec<(StreamId, f64)>, Instant),
    /// A query and the channel to answer on (tagged with shard id).
    Query(QueryRequest, Sender<(usize, QueryReply)>),
    /// Drain nothing further; reply channelless, exit the loop.
    Shutdown,
}

/// A scatter-gather query, expressed in shard-local stream ids (the
/// runtime translates global ids before sending).
#[derive(Debug, Clone)]
pub(crate) enum QueryRequest {
    /// Current composed interval of one monitored aggregate window.
    AggregateInterval {
        /// Local stream id.
        stream: StreamId,
        /// Monitored window size.
        window: usize,
    },
    /// Cumulative per-class counters.
    ClassStats,
    /// Ground-truth correlated pairs among this shard's streams at its
    /// current time.
    CorrelatedPairs,
}

/// A shard's answer to a [`QueryRequest`]. Stream ids are already
/// remapped to global ids.
#[derive(Debug, Clone)]
pub(crate) enum QueryReply {
    /// `AggregateInterval` answer.
    AggregateInterval(Option<(f64, f64)>),
    /// `ClassStats` answer.
    ClassStats(ClassStats),
    /// `CorrelatedPairs` answer (global ids, unsorted).
    CorrelatedPairs(Vec<(StreamId, StreamId, f64)>),
}

/// Cumulative counters of all three query classes, mergeable across
/// shards by field-wise addition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Aggregate (burst/volatility) counters.
    pub aggregate: AlarmStats,
    /// Trend counters.
    pub trend: TrendStats,
    /// Correlation counters.
    pub correlation: CorrelationStats,
}

impl ClassStats {
    /// Field-wise accumulation.
    pub fn merge(&mut self, other: &ClassStats) {
        self.aggregate.candidates += other.aggregate.candidates;
        self.aggregate.true_alarms += other.aggregate.true_alarms;
        self.trend.candidates += other.trend.candidates;
        self.trend.matches += other.trend.matches;
        self.correlation.reported += other.correlation.reported;
        self.correlation.true_pairs += other.correlation.true_pairs;
    }
}

/// Local stream id → global stream id for shard `shard` of `n_shards`.
fn global_id(shard: usize, n_shards: usize, local: StreamId) -> StreamId {
    local * n_shards as StreamId + shard as StreamId
}

/// Rewrites an event's shard-local stream ids back to global ids.
fn remap_event(shard: usize, n_shards: usize, ev: Event) -> Event {
    match ev {
        Event::Aggregate { stream, alarm } => {
            Event::Aggregate { stream: global_id(shard, n_shards, stream), alarm }
        }
        Event::Trend(mut m) => {
            m.stream = global_id(shard, n_shards, m.stream);
            Event::Trend(m)
        }
        Event::Correlation(mut p) => {
            p.a = global_id(shard, n_shards, p.a);
            p.b = global_id(shard, n_shards, p.b);
            Event::Correlation(p)
        }
    }
}

/// Everything one worker thread owns.
pub(crate) struct Worker {
    pub shard: usize,
    pub n_shards: usize,
    pub n_local_streams: usize,
    pub monitor: Option<UnifiedMonitor>,
    pub inbox: Receiver<ShardMsg>,
    pub events: Sender<Event>,
    pub counters: Arc<ShardCounters>,
}

impl Worker {
    /// Local stream id → global stream id for this shard.
    fn global(&self, local: StreamId) -> StreamId {
        global_id(self.shard, self.n_shards, local)
    }

    fn answer(&self, req: QueryRequest) -> QueryReply {
        let Some(monitor) = &self.monitor else {
            return match req {
                QueryRequest::AggregateInterval { .. } => QueryReply::AggregateInterval(None),
                QueryRequest::ClassStats => QueryReply::ClassStats(ClassStats::default()),
                QueryRequest::CorrelatedPairs => QueryReply::CorrelatedPairs(Vec::new()),
            };
        };
        match req {
            QueryRequest::AggregateInterval { stream, window } => QueryReply::AggregateInterval(
                monitor.aggregate_monitor(stream).and_then(|m| m.window_interval(window)),
            ),
            QueryRequest::ClassStats => {
                let mut stats = ClassStats::default();
                // Aggregate stats live per stream; trend/correlation are
                // monitor-wide.
                for local in 0..self.n_local_streams as StreamId {
                    let Some(m) = monitor.aggregate_monitor(local) else { break };
                    let s = m.stats();
                    stats.aggregate.candidates += s.candidates;
                    stats.aggregate.true_alarms += s.true_alarms;
                }
                if let Some(t) = monitor.trend_monitor() {
                    stats.trend = t.stats();
                }
                if let Some(c) = monitor.correlation_monitor() {
                    stats.correlation = c.stats();
                }
                QueryReply::ClassStats(stats)
            }
            QueryRequest::CorrelatedPairs => {
                let Some(corr) = monitor.correlation_monitor() else {
                    return QueryReply::CorrelatedPairs(Vec::new());
                };
                // Ground truth needs every stream's window to end at the
                // same instant: use the slowest stream's clock.
                let t = (0..corr.n_streams() as StreamId)
                    .map(|s| corr.summary(s).now())
                    .min()
                    .flatten();
                let pairs = match t {
                    None => Vec::new(),
                    Some(t) => corr
                        .linear_scan_pairs(t)
                        .into_iter()
                        .map(|(a, b, c)| (self.global(a), self.global(b), c))
                        .collect(),
                };
                QueryReply::CorrelatedPairs(pairs)
            }
        }
    }

    /// The worker loop: drain messages until `Shutdown` or every sender
    /// hangs up, whichever comes first.
    pub fn run(mut self) {
        while let Ok(msg) = self.inbox.recv() {
            match msg {
                ShardMsg::Batch(items, submitted) => {
                    // Only batches count toward queue depth; queries and
                    // shutdown ride the queue but are not backpressure
                    // signals.
                    self.counters.note_dequeued();
                    let mut events = 0u64;
                    if let Some(monitor) = &mut self.monitor {
                        for &(local, value) in &items {
                            for ev in monitor.append(local, value) {
                                // A send error means the runtime dropped its
                                // receiver (shutdown already under way);
                                // keep draining so producers unblock.
                                events += 1;
                                let global = remap_event(self.shard, self.n_shards, ev);
                                let _ = self.events.send(global);
                            }
                        }
                    }
                    self.counters.appends.fetch_add(items.len() as u64, Ordering::Relaxed);
                    if events > 0 {
                        self.counters.events.fetch_add(events, Ordering::Relaxed);
                    }
                    let ns = submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    self.counters.note_batch(ns);
                }
                ShardMsg::Query(req, reply) => {
                    let _ = reply.send((self.shard, self.answer(req)));
                }
                ShardMsg::Shutdown => break,
            }
        }
    }
}
