//! The per-shard worker: drains batches into the [`UnifiedMonitor`]s of
//! the stream *groups* it currently owns, remaps local stream ids back
//! to global ones, and answers scatter-gather queries in queue order.
//! The worker also executes its half of the live-migration protocol
//! (sealing groups out, adopting groups in) and hosts the
//! fault-injection hooks and the crash-reporting [`Board`] the
//! supervisor watches.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use stardust_core::query::aggregate::AlarmStats;
use stardust_core::query::correlation::CorrelationStats;
use stardust_core::query::trend::TrendStats;
use stardust_core::sketch::{BlockSketch, SketchDelta};
use stardust_core::stream::{StreamId, Time};
use stardust_core::unified::{Event, UnifiedMonitor};

use crate::fault::{FaultKind, FaultPlan, MigrationStep};
use crate::queue::BoundedQueue;
use crate::routing::Routing;
use crate::snapshot::ShardRecovery;
use crate::stats::ShardCounters;
use crate::telemetry::RuntimeTelemetry;

/// State of one stream group: owned by exactly one worker at any
/// instant, moved across workers by the migration protocol and rebuilt
/// from its journal after a crash.
pub(crate) struct GroupState {
    /// Local streams in this group.
    pub n_locals: usize,
    /// The group's monitor (`None` when the spec builds none).
    pub monitor: Option<UnifiedMonitor>,
    /// The group's crash-recovery journal; `None` disables journaling.
    pub recovery: Option<Arc<ShardRecovery>>,
    /// Lifetime appends applied to this group (including rejected
    /// non-finite samples — they are journaled and tick the clock).
    pub appends: u64,
    /// Lifetime events emitted for this group.
    pub emitted: u64,
    /// Sealed-block frontier at the last sketch publication.
    /// Deliberately reset to `0` on restore/adopt: the re-publication
    /// it causes is absorbed idempotently by the board.
    pub last_shipped: u64,
}

/// Messages a shard's bounded queue carries. Queries and migration
/// control ride the same queue as batches, so each observes every batch
/// submitted before it (per-shard sequential consistency) — the FIFO is
/// what makes the freeze/handoff protocol exact.
pub(crate) enum ShardMsg {
    /// One group's local-id value batch plus its submission instant.
    Batch(usize, Vec<(StreamId, f64)>, Instant),
    /// A query against one group and the channel to answer on (tagged
    /// with the group id).
    Query(usize, QueryRequest, Sender<(usize, QueryReply)>),
    /// Migration marker: seal the group out of this worker. Everything
    /// for the group already admitted is ahead of this message; nothing
    /// for it will be admitted behind (the route froze first).
    MigrateOut(usize),
    /// Migration payload: install the group's rebuilt state. Queued on
    /// the destination *before* the route promotes, so it precedes any
    /// post-cutover batch.
    Adopt(usize, Box<GroupState>),
    /// Drain nothing further; reply channelless, exit the loop.
    Shutdown,
}

/// A scatter-gather query, expressed in shard-local stream ids (the
/// runtime translates global ids before sending).
#[derive(Debug, Clone)]
pub(crate) enum QueryRequest {
    /// Current composed interval of one monitored aggregate window.
    AggregateInterval {
        /// Local stream id.
        stream: StreamId,
        /// Monitored window size.
        window: usize,
    },
    /// Cumulative per-class counters.
    ClassStats,
    /// Phase 1 of the cross-shard correlation query: every local
    /// stream's correlation clock, so the collector can pick the global
    /// verification instant `t* = min` over all streams.
    CorrClock,
    /// Phase 3: ground-truth same-shard pairs at the global instant `t`,
    /// plus the raw windows ending at `t` for the listed local streams
    /// (the collector verifies cross-shard candidates with them).
    CorrVerify {
        /// Global verification instant.
        t: Time,
        /// Local ids whose raw windows the collector needs.
        windows_for: Vec<StreamId>,
    },
}

/// A shard's answer to a [`QueryRequest`]. Stream ids are already
/// remapped to global ids.
#[derive(Debug, Clone)]
pub(crate) enum QueryReply {
    /// `AggregateInterval` answer.
    AggregateInterval(Option<(f64, f64)>),
    /// `ClassStats` answer.
    ClassStats(ClassStats),
    /// `CorrClock` answer: one clock per local stream (empty when this
    /// shard runs no correlation monitor).
    CorrClock(Vec<Option<Time>>),
    /// `CorrVerify` answer.
    CorrVerify {
        /// Same-shard pairs at `t` (global ids, unsorted).
        pairs: Vec<(StreamId, StreamId, f64)>,
        /// Requested raw windows (global ids; `None` when the window
        /// ending at `t` is no longer in the stream's history).
        windows: Vec<(StreamId, Option<Vec<f64>>)>,
    },
    /// The worker does not own the queried group (it migrated after the
    /// query was routed). The gatherer re-resolves and re-sends.
    Declined,
}

/// Collector-side mirror of every stream's sliding-window sketch, keyed
/// by **global** stream id. Workers publish deltas on a cadence;
/// absorption is idempotent (deltas carry absolute block indices), so a
/// recovered worker re-shipping already-seen blocks never double-counts
/// — the exactly-once argument for the exchange is the delta frontier,
/// not delivery counting.
pub(crate) struct SketchBoard {
    slots: Mutex<Vec<Option<BlockSketch>>>,
    /// Sketch publications absorbed (one per stream per cadence firing).
    pub exchanges: std::sync::atomic::AtomicU64,
    /// Cross-shard pairs that survived the sketch prune and went to
    /// exact verification.
    pub candidates: std::sync::atomic::AtomicU64,
    /// Cross-shard pairs dismissed by the sketch lower bound.
    pub pruned: std::sync::atomic::AtomicU64,
    /// Cross-shard candidates confirmed by exact verification.
    pub confirmed: std::sync::atomic::AtomicU64,
}

impl SketchBoard {
    pub(crate) fn new(n_streams: usize) -> Self {
        SketchBoard {
            slots: Mutex::new((0..n_streams).map(|_| None).collect()),
            exchanges: std::sync::atomic::AtomicU64::new(0),
            candidates: std::sync::atomic::AtomicU64::new(0),
            pruned: std::sync::atomic::AtomicU64::new(0),
            confirmed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Absorbs one stream's delta into its mirror (created on first
    /// publication with the shipped geometry).
    pub(crate) fn publish(
        &self,
        stream: StreamId,
        window: usize,
        block: usize,
        delta: &SketchDelta,
    ) {
        let mut slots = self.slots.lock().expect("sketch board poisoned");
        slots[stream as usize].get_or_insert_with(|| BlockSketch::new(window, block)).absorb(delta);
        self.exchanges.fetch_add(1, Ordering::Relaxed);
    }

    /// A clone of every mirror, for the collector's prune pass.
    pub(crate) fn mirrors(&self) -> Vec<Option<BlockSketch>> {
        self.slots.lock().expect("sketch board poisoned").clone()
    }
}

/// Cumulative counters of all three query classes, mergeable across
/// shards by field-wise addition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Aggregate (burst/volatility) counters.
    pub aggregate: AlarmStats,
    /// Trend counters.
    pub trend: TrendStats,
    /// Correlation counters.
    pub correlation: CorrelationStats,
}

impl ClassStats {
    /// Field-wise accumulation.
    pub fn merge(&mut self, other: &ClassStats) {
        self.aggregate.checks += other.aggregate.checks;
        self.aggregate.candidates += other.aggregate.candidates;
        self.aggregate.true_alarms += other.aggregate.true_alarms;
        self.trend.candidates += other.trend.candidates;
        self.trend.matches += other.trend.matches;
        self.correlation.reported += other.correlation.reported;
        self.correlation.true_pairs += other.correlation.true_pairs;
    }
}

/// Local stream id → global stream id for group `shard` of `n_shards`
/// groups (the parameter names predate elastic routing: partitioning is
/// by *group*, and `stream % G` / `stream / G` are its two halves).
fn global_id(shard: usize, n_shards: usize, local: StreamId) -> StreamId {
    local * n_shards as StreamId + shard as StreamId
}

/// Frontier-driven sketch publication, shared by the live worker loop
/// and the recovery replay: once the slowest local stream has sealed
/// `cadence` new blocks past `last_shipped`, every local sketch ships
/// to the collector board (absorbed idempotently — re-publication after
/// a crash restore is a no-op on the mirrors). The recovery replay must
/// drive this too: batches a dead worker drained but never applied are
/// replayed from the journal rather than re-popped, and any cadence
/// boundary they cross has to fire exactly as it would have on the live
/// path.
pub(crate) fn publish_sketches_if_due(
    monitor: Option<&UnifiedMonitor>,
    shard: usize,
    n_shards: usize,
    sketches: &SketchBoard,
    cadence: u64,
    last_shipped: &mut u64,
    telemetry: &RuntimeTelemetry,
) {
    if cadence == 0 {
        return;
    }
    let Some(corr) = monitor.and_then(|m| m.correlation_monitor()) else {
        return;
    };
    let frontier = (0..corr.n_streams() as StreamId)
        .map(|s| {
            let sk = corr.sketch(s);
            sk.end_time().map_or(0, |t| (t + 1) / sk.block() as u64)
        })
        .min()
        .unwrap_or(0);
    if frontier < last_shipped.saturating_add(cadence) {
        return;
    }
    let start = Instant::now();
    for local in 0..corr.n_streams() as StreamId {
        let sk = corr.sketch(local);
        sketches.publish(global_id(shard, n_shards, local), sk.window(), sk.block(), &sk.delta());
    }
    *last_shipped = frontier;
    let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    telemetry.sketch_exchange.observe(ns);
    telemetry.sketch_exchanges.inc();
}

/// Rewrites an event's shard-local stream ids back to global ids.
pub(crate) fn remap_event(shard: usize, n_shards: usize, ev: Event) -> Event {
    match ev {
        Event::Aggregate { stream, alarm } => {
            Event::Aggregate { stream: global_id(shard, n_shards, stream), alarm }
        }
        Event::Trend(mut m) => {
            m.stream = global_id(shard, n_shards, m.stream);
            Event::Trend(m)
        }
        Event::Correlation(mut p) => {
            p.a = global_id(shard, n_shards, p.a);
            p.b = global_id(shard, n_shards, p.b);
            Event::Correlation(p)
        }
    }
}

/// What the board records for each shard.
struct BoardState {
    /// Shards whose workers died and await restoration, in death order.
    dead: Vec<usize>,
    /// `clean[s]`: shard `s`'s worker exited its loop normally.
    clean: Vec<bool>,
    /// `failed[s]`: shard `s` died with no supervisor to restore it (its
    /// queue is closed, producers see `Disconnected`).
    failed: Vec<bool>,
    /// Set once the runtime wants the supervisor gone.
    shutdown: bool,
}

/// Shared bulletin board between workers (reporting their own fate via
/// [`DeathNotice`]), the supervisor (waiting for dead shards), and the
/// runtime's shutdown path (waiting for every shard to settle).
pub(crate) struct Board {
    state: Mutex<BoardState>,
    cv: Condvar,
}

impl Board {
    pub(crate) fn new(n_shards: usize) -> Self {
        Board {
            state: Mutex::new(BoardState {
                dead: Vec::new(),
                clean: vec![false; n_shards],
                failed: vec![false; n_shards],
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn report_clean(&self, shard: usize) {
        self.state.lock().expect("board poisoned").clean[shard] = true;
        self.cv.notify_all();
    }

    fn report_dead(&self, shard: usize, terminal: bool) {
        let mut st = self.state.lock().expect("board poisoned");
        if terminal {
            st.failed[shard] = true;
        } else {
            st.dead.push(shard);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Marks a shard unrecoverable (the supervisor could not respawn a
    /// worker for it).
    pub(crate) fn mark_failed(&self, shard: usize) {
        self.state.lock().expect("board poisoned").failed[shard] = true;
        self.cv.notify_all();
    }

    /// Supervisor side: blocks until a shard dies (returning its id) or
    /// shutdown begins with no deaths pending (returning `None`).
    /// Pending deaths win over the shutdown flag so no shard is
    /// abandoned mid-restore.
    pub(crate) fn next_dead(&self) -> Option<usize> {
        let mut st = self.state.lock().expect("board poisoned");
        loop {
            if let Some(shard) = st.dead.pop() {
                return Some(shard);
            }
            if st.shutdown {
                return None;
            }
            st = self.cv.wait(st).expect("board poisoned");
        }
    }

    /// Shutdown path: blocks until every shard either exited cleanly or
    /// failed terminally. While this waits the supervisor is still
    /// restoring crashed shards, so a shard that dies with `Shutdown`
    /// still queued gets one more worker to drain it.
    pub(crate) fn wait_all_settled(&self) {
        let mut st = self.state.lock().expect("board poisoned");
        while !st.clean.iter().zip(&st.failed).all(|(c, f)| *c || *f) {
            st = self.cv.wait(st).expect("board poisoned");
        }
    }

    /// Tells [`Self::next_dead`] to return once its backlog is empty.
    pub(crate) fn begin_shutdown(&self) {
        self.state.lock().expect("board poisoned").shutdown = true;
        self.cv.notify_all();
    }
}

/// Reports a worker's fate to the [`Board`] from `Drop`, so a panic
/// anywhere in the worker loop is reported on unwind. The loop flips
/// `clean` to `true` on its orderly exits; any other unwinding is a
/// death.
pub(crate) struct DeathNotice {
    pub shard: usize,
    pub board: Arc<Board>,
    pub clean: bool,
    /// With recovery disabled there is no supervisor to restore the
    /// shard, so death must close the queue (unparking producers into
    /// `Disconnected`) and is terminal.
    pub close_on_death: Option<Arc<BoundedQueue<ShardMsg>>>,
}

impl Drop for DeathNotice {
    fn drop(&mut self) {
        if self.clean {
            self.board.report_clean(self.shard);
        } else {
            let terminal = self.close_on_death.is_some();
            if let Some(queue) = &self.close_on_death {
                queue.close();
            }
            self.board.report_dead(self.shard, terminal);
        }
    }
}

/// Most batches one drain may move into a commit group. Bounds the
/// coalesced WAL write (and the grouped event send) regardless of queue
/// capacity; a longer backlog simply commits as consecutive groups.
const MAX_GROUP_BATCHES: usize = 256;

/// Everything one worker thread owns: the slot identity plus the state
/// of every stream group currently routed to it.
pub(crate) struct Worker {
    /// Worker slot index (stable across restarts; *not* a group id).
    pub slot: usize,
    /// Total stream groups in the runtime (the routing modulus).
    pub n_groups: usize,
    /// Groups this worker currently owns, keyed by group id.
    pub groups: BTreeMap<usize, GroupState>,
    pub inbox: Arc<BoundedQueue<ShardMsg>>,
    pub events: Sender<Vec<Event>>,
    pub counters: Arc<ShardCounters>,
    /// Injected faults; `None` costs nothing on the append path.
    pub faults: Option<Arc<FaultPlan>>,
    /// Appends applied across every group this slot currently owns,
    /// over the slot's lifetime — the deterministic fault clock.
    /// Migration moves a group's contribution with the group.
    pub processed: u64,
    /// Snapshot cadence in appends (per group); `0` never snapshots.
    pub snapshot_every: u64,
    /// Collector-side sketch mirrors this worker publishes to.
    pub sketches: Arc<SketchBoard>,
    /// Publish sketches every this many sealed blocks of the slowest
    /// local stream; `0` disables the exchange entirely.
    pub sketch_cadence: u64,
    /// Shared routing table (this worker seals groups through it).
    pub routing: Arc<Routing>,
    /// Runtime-level metric handles; detached when telemetry is off.
    pub telemetry: RuntimeTelemetry,
}

impl Worker {
    fn answer(&self, group: usize, req: QueryRequest) -> QueryReply {
        let Some(gs) = self.groups.get(&group) else {
            // The group migrated off between routing and delivery; the
            // gatherer re-resolves and retries on the new owner.
            return QueryReply::Declined;
        };
        let global = |local: StreamId| global_id(group, self.n_groups, local);
        let Some(monitor) = &gs.monitor else {
            return match req {
                QueryRequest::AggregateInterval { .. } => QueryReply::AggregateInterval(None),
                QueryRequest::ClassStats => QueryReply::ClassStats(ClassStats::default()),
                QueryRequest::CorrClock => QueryReply::CorrClock(Vec::new()),
                QueryRequest::CorrVerify { windows_for, .. } => QueryReply::CorrVerify {
                    pairs: Vec::new(),
                    windows: windows_for.iter().map(|&s| (global(s), None)).collect(),
                },
            };
        };
        match req {
            QueryRequest::AggregateInterval { stream, window } => QueryReply::AggregateInterval(
                monitor.aggregate_monitor(stream).and_then(|m| m.window_interval(window)),
            ),
            QueryRequest::ClassStats => {
                let mut stats = ClassStats::default();
                // Aggregate stats live per stream; trend/correlation are
                // monitor-wide.
                for local in 0..gs.n_locals as StreamId {
                    let Some(m) = monitor.aggregate_monitor(local) else { break };
                    let s = m.stats();
                    stats.aggregate.checks += s.checks;
                    stats.aggregate.candidates += s.candidates;
                    stats.aggregate.true_alarms += s.true_alarms;
                }
                if let Some(t) = monitor.trend_monitor() {
                    stats.trend = t.stats();
                }
                if let Some(c) = monitor.correlation_monitor() {
                    stats.correlation = c.stats();
                }
                QueryReply::ClassStats(stats)
            }
            QueryRequest::CorrClock => {
                let clocks = monitor
                    .correlation_monitor()
                    .map(|corr| {
                        (0..corr.n_streams() as StreamId).map(|s| corr.summary(s).now()).collect()
                    })
                    .unwrap_or_default();
                QueryReply::CorrClock(clocks)
            }
            QueryRequest::CorrVerify { t, windows_for } => {
                let Some(corr) = monitor.correlation_monitor() else {
                    return QueryReply::CorrVerify {
                        pairs: Vec::new(),
                        windows: windows_for.iter().map(|&s| (global(s), None)).collect(),
                    };
                };
                let pairs = corr
                    .linear_scan_pairs(t)
                    .into_iter()
                    .map(|(a, b, c)| (global(a), global(b), c))
                    .collect();
                let n = corr.window();
                let windows = windows_for
                    .iter()
                    .map(|&local| (global(local), corr.summary(local).history().window(t, n)))
                    .collect();
                QueryReply::CorrVerify { pairs, windows }
            }
        }
    }

    /// Fires a one-shot migration fault for `group` at `step`, if the
    /// plan scheduled one. Stalls happen in place; panics unwind
    /// through [`DeathNotice`] like any injected kill.
    fn fire_migration(&self, group: usize, step: MigrationStep) {
        if let Some(plan) = &self.faults {
            match plan.fire_migration(group, step) {
                Some(FaultKind::Panic) => {
                    panic!("injected migration fault: group {group} killed at {step:?}")
                }
                Some(FaultKind::Stall(pause)) => std::thread::sleep(pause),
                _ => {}
            }
        }
    }

    /// Seals group `group` out of this worker: every batch admitted for
    /// it is already applied (the marker is FIFO-behind them and the
    /// frozen route admits no more), its events are acked, so the
    /// journal is the group's complete, quiescent state. The group
    /// leaves this slot's counters and fault clock with it.
    ///
    /// Idempotent: a supervisor re-pushed marker for an already-sealed
    /// group finds nothing to do (`routing.seal` is a no-op too).
    fn seal_group(&mut self, group: usize) {
        if !self.groups.contains_key(&group) {
            let _ = self.routing.seal(group, self.slot);
            return;
        }
        self.fire_migration(group, MigrationStep::BeforeSeal);
        let gs = self.groups.remove(&group).expect("checked present");
        self.counters.appends.fetch_sub(gs.appends, Ordering::Relaxed);
        self.counters.events.fetch_sub(gs.emitted, Ordering::Relaxed);
        self.processed -= gs.appends;
        self.routing.seal(group, self.slot);
        self.fire_migration(group, MigrationStep::AfterSeal);
    }

    /// Installs a migrated group's rebuilt state. If a crash-respawn of
    /// this slot already rebuilt the group from its journal (the route
    /// said `Handed{to: me}` or had promoted), the in-flight payload is
    /// stale — the journal-derived copy wins and the payload is
    /// dropped, counters untouched.
    fn adopt_group(&mut self, group: usize, state: GroupState) {
        if self.groups.contains_key(&group) {
            return;
        }
        self.fire_migration(group, MigrationStep::BeforeAdopt);
        self.counters.appends.fetch_add(state.appends, Ordering::Relaxed);
        self.counters.events.fetch_add(state.emitted, Ordering::Relaxed);
        self.processed += state.appends;
        self.groups.insert(group, state);
        self.fire_migration(group, MigrationStep::AfterAdopt);
    }

    /// The worker loop: drain message runs until `Shutdown` or the
    /// queue is closed and empty, whichever comes first. A contiguous
    /// run of batches commits as one group ([`Self::commit_group`]);
    /// queries, migration control, and shutdown break runs and are
    /// handled singly, at their queue position — they are never
    /// buffered in worker-local state, so a crash mid-group cannot lose
    /// a query reply or a protocol step (journaled batches are the only
    /// messages the recovery protocol can replay). `notice` reports the
    /// exit (or a panic's unwind) to the board.
    pub fn run(mut self, notice: &mut DeathNotice) {
        let mut pending_delay: Option<Duration> = None;
        // Buffers reused across commit groups: the drained run, the
        // per-batch monitor output, and the run's remapped events.
        // Steady state allocates nothing per run — the one exception
        // is the exact-sized Vec that hands a non-empty run's events
        // to the collector (ownership crosses the channel).
        let mut msgs: Vec<ShardMsg> = Vec::new();
        let mut event_buf: Vec<Event> = Vec::new();
        let mut run_events: Vec<Event> = Vec::new();
        loop {
            if let Some(pause) = pending_delay.take() {
                std::thread::sleep(pause);
            }
            msgs.clear();
            let n = self
                .inbox
                .drain_into(&mut msgs, MAX_GROUP_BATCHES, |m| matches!(m, ShardMsg::Batch(..)));
            if n == 0 {
                notice.clean = true;
                return;
            }
            if matches!(msgs[0], ShardMsg::Batch(..)) {
                self.commit_group(&msgs, &mut event_buf, &mut run_events, &mut pending_delay);
            } else {
                match msgs.pop().expect("drained run is non-empty") {
                    ShardMsg::Query(group, req, reply) => {
                        let _ = reply.send((group, self.answer(group, req)));
                    }
                    ShardMsg::MigrateOut(group) => self.seal_group(group),
                    ShardMsg::Adopt(group, state) => self.adopt_group(group, *state),
                    ShardMsg::Shutdown => {
                        notice.clean = true;
                        return;
                    }
                    ShardMsg::Batch(..) => unreachable!("batch heads commit as groups"),
                }
            }
        }
    }

    /// Commits one drained run of batches as a group commit: the
    /// queue's high-water mark was sampled at the pre-drain depth, the
    /// whole run is journaled — bucketed per stream group, each group's
    /// sub-run under one coalesced WAL write — before any batch is
    /// applied, and the run's events leave in one channel send followed
    /// by one durable ack per event-bearing group.
    ///
    /// Crash safety: a panic anywhere past the journal step loses
    /// nothing — every batch of the run is already journaled, so the
    /// recovery replay regenerates exactly the journaled prefix's
    /// events, suppressing the ones this worker already sent (none
    /// mid-run: the send is a single all-or-nothing handoff after the
    /// last batch applied).
    fn commit_group(
        &mut self,
        msgs: &[ShardMsg],
        event_buf: &mut Vec<Event>,
        run_events: &mut Vec<Event>,
        pending_delay: &mut Option<Duration>,
    ) {
        // Only batches count toward queue depth; the drain predicate
        // guarantees the run is all batches.
        self.counters.note_drained(msgs.len());
        let batch_group = |m: &ShardMsg| match m {
            ShardMsg::Batch(group, ..) => *group,
            _ => unreachable!("commit groups contain only batches"),
        };
        // Distinct groups in the run, in first-appearance order. A run
        // rarely spans more than a couple of groups, so a linear scan
        // beats any map.
        let mut touched: Vec<usize> = Vec::new();
        for msg in msgs {
            let g = batch_group(msg);
            if !touched.contains(&g) {
                touched.push(g);
            }
        }
        // Write-ahead for the whole run, before anything is applied:
        // each group's sub-run goes to that group's journal in order.
        {
            let _span = self.telemetry.journal.span();
            for &g in &touched {
                let gs = self.groups.get(&g).expect("routed batch for unowned group");
                if let Some(rec) = &gs.recovery {
                    let batches = msgs.iter().filter_map(move |m| match m {
                        ShardMsg::Batch(bg, items, _) if *bg == g => Some(items.as_slice()),
                        _ => None,
                    });
                    rec.journal_group(batches);
                }
            }
        }
        self.telemetry.group_size.observe(msgs.len() as u64);
        let mut rejected_total = 0u64;
        // Events emitted per group within this run (parallel to
        // `touched` is overkill — runs are short, scan again).
        let mut emitted_by: Vec<(usize, u64)> = Vec::new();
        for msg in msgs {
            let ShardMsg::Batch(group, items, submitted) = msg else {
                unreachable!("commit groups contain only batches")
            };
            let group = *group;
            let gs = self.groups.get_mut(&group).expect("routed batch for unowned group");
            let mut rejected = 0u64;
            if let Some(monitor) = &mut gs.monitor {
                event_buf.clear();
                for &(local, value) in items {
                    self.processed += 1;
                    if let Some(plan) = &self.faults {
                        match plan.fire(self.slot, self.processed) {
                            Some(FaultKind::Panic) => panic!(
                                "injected fault: shard {} killed at append {}",
                                self.slot, self.processed
                            ),
                            Some(FaultKind::Stall(pause)) => std::thread::sleep(pause),
                            Some(FaultKind::DelayDrain(pause)) => {
                                *pending_delay = Some(pause);
                            }
                            None => {}
                        }
                    }
                    // Non-finite samples are rejected at the append
                    // boundary (the monitor guards identically, so a
                    // journaled NaN replays as the same no-op). The
                    // fault clock above still ticks for them.
                    if !value.is_finite() {
                        rejected += 1;
                        continue;
                    }
                    monitor.append_into(local, value, event_buf);
                }
                // Collect this batch's events behind the run's; they
                // ship once the whole run has applied, in batch order.
                let n_new = event_buf.len() as u64;
                if n_new > 0 {
                    match emitted_by.iter_mut().find(|(g, _)| *g == group) {
                        Some((_, n)) => *n += n_new,
                        None => emitted_by.push((group, n_new)),
                    }
                }
                for ev in event_buf.drain(..) {
                    run_events.push(remap_event(group, self.n_groups, ev));
                }
            }
            gs.appends += items.len() as u64;
            self.counters.appends.fetch_add(items.len() as u64, Ordering::Relaxed);
            rejected_total += rejected;
            let ns = submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.counters.note_batch(ns);
            self.telemetry.batch_latency.observe(ns);
            // Cadence is frontier-driven and board absorption is
            // idempotent, so publishing inside the run keeps the
            // exchange on the same per-batch schedule as before.
            publish_sketches_if_due(
                gs.monitor.as_ref(),
                group,
                self.n_groups,
                &self.sketches,
                self.sketch_cadence,
                &mut gs.last_shipped,
                &self.telemetry,
            );
        }
        if rejected_total > 0 {
            self.counters.rejected.fetch_add(rejected_total, Ordering::Relaxed);
            self.telemetry.rejected.add(rejected_total);
        }
        let emitted = run_events.len() as u64;
        if emitted > 0 {
            // One send per event-bearing run. `split_off(0)` moves the
            // events into an exact-sized Vec for the collector while the
            // buffer keeps its capacity for the next run. A send error
            // means the runtime dropped its receiver (shutdown already
            // under way); keep draining so producers unblock.
            let _ = self.events.send(run_events.split_off(0));
            self.counters.events.fetch_add(emitted, Ordering::Relaxed);
            for &(group, n) in &emitted_by {
                let gs = self.groups.get_mut(&group).expect("group applied above");
                gs.emitted += n;
                if let Some(rec) = &gs.recovery {
                    // The events are out; ack the cumulative count to
                    // the durable WAL so a process-level recovery
                    // suppresses exactly these.
                    rec.note_emitted_n(n);
                    rec.ack_emitted();
                }
            }
        }
        // Snapshot only at run boundaries: the journal suffix holds
        // whole batches from the write-ahead step, and a snapshot must
        // not cover appends that have not been applied yet.
        if self.snapshot_every > 0 {
            for &g in &touched {
                let gs = self.groups.get(&g).expect("group applied above");
                if let Some(rec) = &gs.recovery {
                    if rec.suffix_len() as u64 >= self.snapshot_every {
                        let _span = self.telemetry.snapshot.span();
                        rec.record_snapshot(gs.monitor.as_ref().map(|m| m.snapshot()));
                    }
                }
            }
        }
    }
}
