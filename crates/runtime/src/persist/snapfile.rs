//! Atomic per-shard snapshot files (`shard-N.snap`).
//!
//! ```text
//! header   "SDSNP001"                                  (8 bytes)
//! record   len u32 | crc32(payload) u32 | payload
//! payload  gen u64 | appends u64 | emitted u64 | tag u8 | monitor bytes
//! ```
//!
//! The generation counter lives *inside* the checksummed payload, so a
//! bit flip anywhere past the magic fails verification. `tag` is `1`
//! when monitor bytes (a [`stardust_core`] monitor snapshot) follow,
//! `0` for shards whose spec builds no monitor. A snapshot is always
//! written to `shard-N.snap.tmp`, fsynced, and renamed into place, with
//! the previous generation kept as `shard-N.snap.prev` until the new
//! one is durable — so there is no moment at which a crash leaves fewer
//! than one intact generation on disk, and any partial write fails the
//! checksum and falls back.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use super::crc32::crc32;
use super::RecoveryError;

/// Magic bytes opening every snapshot file.
pub(crate) const SNAP_MAGIC: &[u8; 8] = b"SDSNP001";

/// A decoded snapshot file.
#[derive(Debug)]
pub(crate) struct SnapFile {
    /// Generation counter (equals the matching WAL segment's).
    pub gen: u64,
    /// Appends the snapshot state covers.
    pub appends: u64,
    /// Events delivered to the collector when the snapshot was taken.
    pub emitted: u64,
    /// Serialized monitor, absent for monitor-less shards.
    pub monitor: Option<Vec<u8>>,
}

/// Writes a complete snapshot file at `path` (truncating) and returns
/// the open handle so the caller can fsync it through the fault plan.
/// The caller is also responsible for the tmp-then-rename dance.
pub(crate) fn write_snapshot(
    path: &Path,
    gen: u64,
    appends: u64,
    emitted: u64,
    monitor: Option<&[u8]>,
) -> io::Result<File> {
    let body = monitor.unwrap_or(&[]);
    let mut payload = Vec::with_capacity(25 + body.len());
    payload.extend_from_slice(&gen.to_le_bytes());
    payload.extend_from_slice(&appends.to_le_bytes());
    payload.extend_from_slice(&emitted.to_le_bytes());
    payload.push(monitor.is_some() as u8);
    payload.extend_from_slice(body);

    let mut buf = Vec::with_capacity(16 + payload.len());
    buf.extend_from_slice(SNAP_MAGIC);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);

    let mut file = File::create(path)?;
    file.write_all(&buf)?;
    Ok(file)
}

/// Reads a snapshot file. `Ok(None)` when absent; any damage — short
/// file, bad magic, failed checksum, trailing garbage — is
/// [`RecoveryError::CorruptSnapshot`], which the caller answers by
/// falling back to the previous generation.
pub(crate) fn read_snapshot(path: &Path) -> Result<Option<SnapFile>, RecoveryError> {
    let mut buf = Vec::new();
    match File::open(path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(RecoveryError::io(path, e)),
        Ok(mut f) => {
            f.read_to_end(&mut buf).map_err(|e| RecoveryError::io(path, e))?;
        }
    }
    let corrupt =
        |detail: &'static str| RecoveryError::CorruptSnapshot { path: path.to_path_buf(), detail };
    if buf.len() < 16 {
        return Err(corrupt("shorter than header"));
    }
    if &buf[..8] != SNAP_MAGIC {
        return Err(corrupt("magic mismatch"));
    }
    let len = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes"));
    let Some(payload) = buf.get(16..16usize.saturating_add(len)) else {
        return Err(corrupt("record extends past end of file"));
    };
    if 16 + len != buf.len() {
        return Err(corrupt("trailing bytes after record"));
    }
    if crc32(payload) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    if payload.len() < 25 {
        return Err(corrupt("payload shorter than fixed fields"));
    }
    let gen = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let appends = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
    let emitted = u64::from_le_bytes(payload[16..24].try_into().expect("8 bytes"));
    let monitor = match payload[24] {
        0 if payload.len() == 25 => None,
        1 => Some(payload[25..].to_vec()),
        _ => return Err(corrupt("unknown monitor tag")),
    };
    Ok(Some(SnapFile { gen, appends, emitted, monitor }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_with_and_without_monitor() {
        let dir = std::env::temp_dir().join(format!("sdsnap-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-0.snap");
        write_snapshot(&path, 7, 4096, 12, Some(b"monitor-bytes")).unwrap();
        let s = read_snapshot(&path).unwrap().expect("present");
        assert_eq!((s.gen, s.appends, s.emitted), (7, 4096, 12));
        assert_eq!(s.monitor.as_deref(), Some(b"monitor-bytes".as_slice()));

        write_snapshot(&path, 8, 64, 0, None).unwrap();
        let s = read_snapshot(&path).unwrap().expect("present");
        assert_eq!((s.gen, s.monitor.is_none()), (8, true));

        assert!(read_snapshot(&dir.join("absent.snap")).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let dir = std::env::temp_dir().join(format!("sdsnap-bit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-0.snap");
        write_snapshot(&path, 3, 100, 5, Some(b"abcdef")).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
            assert!(
                matches!(read_snapshot(&path), Err(RecoveryError::CorruptSnapshot { .. })),
                "flip at byte {i} went undetected"
            );
        }
        // Truncation at every length is detected too.
        for keep in 0..clean.len() {
            std::fs::write(&path, &clean[..keep]).unwrap();
            assert!(
                matches!(read_snapshot(&path), Err(RecoveryError::CorruptSnapshot { .. })),
                "truncation to {keep} bytes went undetected"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
