//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) over byte
//! slices, table-driven and built at compile time — the WAL and
//! snapshot files checksum every record with it. Implemented in-tree:
//! the deployment environment is offline and the algorithm is ~20
//! lines, so a dependency would buy nothing.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// One 256-entry table, one byte per step.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (initial value `!0`, final xor `!0` — the common
/// "crc32" as produced by zlib, PNG, and gzip).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_every_bit() {
        let base = crc32(b"stardust");
        let mut bytes = *b"stardust";
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), base, "bit {i} flip went undetected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
        assert_eq!(crc32(&bytes), base);
    }
}
